// Market-Watch walkthrough: the paper's running example (Figs. 1, 4, 7, 8)
// at the library level — build the dependency graph by hand, run both
// combination strategies, print the generated SQL, and decode the combined
// result set back into per-iteration results.
//
//   ./build/examples/market_watch

#include <cstdio>

#include "core/combiner_cte.h"
#include "core/combiner_lateral.h"
#include "core/result_splitter.h"
#include "db/database.h"
#include "sql/template.h"

using namespace chrono;
using core::CombineInput;
using core::DependencyGraph;
using core::TemplateId;
using sql::Value;

namespace {

TemplateId Register(core::TemplateRegistry* registry,
                    std::map<TemplateId, std::vector<Value>>* latest,
                    const std::string& text) {
  auto parsed = sql::AnalyzeQuery(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    std::exit(1);
  }
  (*latest)[parsed->tmpl->id] = parsed->params;
  return registry->Register(parsed->tmpl);
}

void ShowSplit(const core::CombinedQuery& plan, const sql::ResultSet& result,
               const core::TemplateRegistry& registry) {
  auto split = core::SplitResult(plan, result, registry);
  if (!split.ok()) {
    std::fprintf(stderr, "split error: %s\n", split.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("decoded into %zu result sets:\n", split->size());
  for (const auto& entry : *split) {
    std::printf("--- key: %s\n%s", entry.key.c_str(),
                entry.result->ToString().c_str());
  }
}

}  // namespace

int main() {
  // The TPC-E Market-Watch tables from Fig. 1 / Fig. 4.
  db::Database database;
  (void)database.catalog()->CreateTable(
      "watch_item", {db::ColumnDef{"wi_wl_id", Value::Type::kInt},
                     db::ColumnDef{"wi_s_symb", Value::Type::kString}});
  (void)database.catalog()->CreateTable(
      "security", {db::ColumnDef{"s_symb", Value::Type::kString},
                   db::ColumnDef{"s_num_out", Value::Type::kInt}});
  (void)database.catalog()->CreateTable(
      "daily_market", {db::ColumnDef{"dm_s_symb", Value::Type::kString},
                       db::ColumnDef{"dm_date", Value::Type::kInt},
                       db::ColumnDef{"dm_close", Value::Type::kDouble}});
  (void)database.ExecuteText(
      "INSERT INTO watch_item VALUES (1, 'ABC'), (1, 'DEF'), (1, 'HIJ')");
  (void)database.ExecuteText(
      "INSERT INTO security VALUES ('ABC', 300), ('DEF', 500), ('HIJ', 100)");
  (void)database.ExecuteText(
      "INSERT INTO daily_market VALUES ('ABC', 20201231, 30.1), "
      "('DEF', 20201231, 50.7), ('HIJ', 20201231, 10.2)");

  core::TemplateRegistry registry;
  std::map<TemplateId, std::vector<Value>> latest;

  // ---- Part 1: the Fig. 1 / Fig. 7 CTE-join combination ----------------
  std::printf("================ CTE-join strategy (Fig. 7) ============\n");
  TemplateId q1 = Register(&registry, &latest,
                           "SELECT wi_s_symb FROM watch_item WHERE wi_wl_id "
                           "= 1");
  TemplateId q2 = Register(&registry, &latest,
                           "SELECT s_num_out FROM security WHERE s_symb = "
                           "'ABC'");
  DependencyGraph fig1;
  fig1.nodes = {q1, q2};
  fig1.param_counts[q1] = 1;
  fig1.param_counts[q2] = 1;
  fig1.edges.push_back({q1, q2, {{"wi_s_symb", 0}}});
  fig1.Normalize();

  CombineInput input{&fig1, &registry, &latest};
  auto combined = core::CteJoinCombiner::Combine(input);
  if (!combined.ok()) {
    std::fprintf(stderr, "combine error: %s\n",
                 combined.status().ToString().c_str());
    return 1;
  }
  std::printf("combined query:\n  %s\n\n", combined->sql.c_str());
  auto outcome = database.ExecuteText(combined->sql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("combined result set (with candidate keys):\n%s\n",
              outcome->result.ToString().c_str());
  ShowSplit(*combined, outcome->result, registry);

  // ---- Part 2: the Fig. 4 per-loop constant via the lateral strategy ---
  std::printf("\n============ Lateral-union strategy (Sec. 4.2) ==========\n");
  TemplateId q3 = Register(&registry, &latest,
                           "SELECT avg(dm_close) FROM daily_market WHERE "
                           "dm_s_symb = 'ABC' AND dm_date = 20201231");
  DependencyGraph fig4;
  fig4.nodes = {q1, q3};
  fig4.param_counts[q1] = 1;
  fig4.param_counts[q3] = 2;
  fig4.edges.push_back({q1, q3, {{"wi_s_symb", 0}}});
  fig4.loop_marked.insert(q3);  // dm_date is a per-loop constant (Fig. 4)
  fig4.Normalize();

  CombineInput input2{&fig4, &registry, &latest};
  auto lateral = core::CombineGraph(input2);  // picks the lateral strategy
  if (!lateral.ok()) {
    std::fprintf(stderr, "combine error: %s\n",
                 lateral.status().ToString().c_str());
    return 1;
  }
  std::printf("combined query:\n  %s\n\n", lateral->sql.c_str());
  auto outcome2 = database.ExecuteText(lateral->sql);
  if (!outcome2.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 outcome2.status().ToString().c_str());
    return 1;
  }
  ShowSplit(*lateral, outcome2->result, registry);

  std::printf(
      "\nEach decoded result set is cached under the text of the query that "
      "would have\nproduced it; the client's upcoming loop queries become "
      "edge cache hits.\n");
  return 0;
}
