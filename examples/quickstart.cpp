// Quickstart: stand up a simulated deployment — remote database, WAN link,
// one ChronoCache middleware node — issue a repeating query pattern, and
// watch ChronoCache learn it and cut response times.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/middleware.h"
#include "db/database.h"

using namespace chrono;

namespace {

/// Synchronously submits one query and returns its result + latency.
sql::ResultSet RunQuery(EventQueue* events, core::Middleware* node,
                        const std::string& sql_text, SimTime* latency_out) {
  sql::ResultSet out;
  SimTime submitted = events->now();
  SimTime finished = submitted;
  node->SubmitQuery(/*client=*/0, /*security_group=*/0, sql_text,
                    [&](SimTime now, const Result<sql::ResultSet>& result) {
                      if (result.ok()) out = *result;
                      finished = now;
                    });
  events->RunAll();
  if (latency_out != nullptr) *latency_out = finished - submitted;
  return out;
}

}  // namespace

int main() {
  // 1. The "remote" database: an in-process SQL engine playing PostgreSQL.
  EventQueue events;
  db::Database database;
  auto* watch = database.catalog()
                    ->CreateTable("watch_item",
                                  {db::ColumnDef{"wi_wl_id",
                                                 sql::Value::Type::kInt},
                                   db::ColumnDef{"wi_s_symb",
                                                 sql::Value::Type::kString}})
                    .value();
  auto* security = database.catalog()
                       ->CreateTable("security",
                                     {db::ColumnDef{"s_symb",
                                                    sql::Value::Type::kString},
                                      db::ColumnDef{"s_num_out",
                                                    sql::Value::Type::kInt}})
                       .value();
  for (int wl = 0; wl < 4; ++wl) {
    for (int i = 0; i < 8; ++i) {
      std::string sym = "SYM" + std::to_string(wl * 8 + i);
      (void)watch->Insert({sql::Value::Int(wl), sql::Value::String(sym)});
      (void)security->Insert(
          {sql::Value::String(sym), sql::Value::Int(1000 + i)});
    }
  }

  // 2. A 70 ms WAN between the edge and the database (the paper's Sec. 6.1
  //    US-East / US-West deployment).
  net::LatencyModel latency;
  core::RemoteDbServer remote(&events, &database, latency, /*workers=*/8);

  // 3. One ChronoCache middleware node at the edge.
  core::MiddlewareConfig config;
  config.mode = core::SystemMode::kChrono;
  config.Finalize();
  core::Middleware node(&events, &remote, latency, config);

  std::printf("Driving the Fig. 1 Market-Watch pattern: a watch-list query "
              "followed by one\nsecurity lookup per returned symbol.\n\n");

  for (int txn = 0; txn < 4; ++txn) {
    int wl = txn;  // a fresh watch list every transaction
    SimTime driver_latency = 0;
    sql::ResultSet symbols = RunQuery(
        &events, &node,
        "SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = " +
            std::to_string(wl),
        &driver_latency);

    SimTime loop_total = 0;
    for (size_t i = 0; i < symbols.row_count(); ++i) {
      SimTime q_latency = 0;
      (void)RunQuery(&events, &node,
                     "SELECT s_num_out FROM security WHERE s_symb = '" +
                         symbols.row(i)[0].AsString() + "'",
                     &q_latency);
      loop_total += q_latency;
    }
    std::printf(
        "transaction %d (watch list %d): driver %5.1f ms, loop of %zu "
        "queries avg %5.1f ms\n",
        txn, wl, static_cast<double>(driver_latency) / kMicrosPerMilli,
        symbols.row_count(),
        static_cast<double>(loop_total) /
            static_cast<double>(symbols.row_count()) / kMicrosPerMilli);
  }

  const auto& m = node.metrics();
  std::printf(
      "\nAfter four transactions ChronoCache has learned the pattern:\n"
      "  dependency graphs : %zu\n"
      "  combined queries  : %llu\n"
      "  results prefetched: %llu\n"
      "  cache hit rate    : %.0f%%\n"
      "\nTransactions 1-2 teach the model; from transaction 3 on, the "
      "watch-list query\nis predictively combined with all of its loop "
      "lookups in ONE round trip, and\nevery per-symbol query is an edge "
      "cache hit (~0.6 ms instead of ~71 ms).\n",
      node.TotalGraphs(),
      static_cast<unsigned long long>(m.remote_combined),
      static_cast<unsigned long long>(m.predictions_cached),
      m.CacheHitRate() * 100.0);
  return 0;
}
