# Sample trace for `chronocache_sim --trace examples/traces/orders.sql`.
# An order-details pattern: fetch an order, then its line items and the
# product row per item — a loop ChronoCache learns and prefetches.

-- SETUP
CREATE TABLE orders (o_id bigint, o_customer bigint, o_total double);
CREATE TABLE line_item (li_o_id bigint, li_product text, li_qty bigint);
CREATE TABLE product (p_sku text, p_name text, p_price double);
INSERT INTO orders VALUES (1, 10, 99.5), (2, 11, 12.0), (3, 10, 45.25);
INSERT INTO line_item VALUES (1, 'SKU1', 2), (1, 'SKU2', 1), (2, 'SKU3', 5), (3, 'SKU1', 1), (3, 'SKU3', 2);
INSERT INTO product VALUES ('SKU1', 'Widget', 9.99), ('SKU2', 'Gadget', 79.5), ('SKU3', 'Gizmo', 2.4);

-- TXN
SELECT o_customer, o_total FROM orders WHERE o_id = 1;
SELECT li_product, li_qty FROM line_item WHERE li_o_id = 1;
SELECT p_name, p_price FROM product WHERE p_sku = 'SKU1';
SELECT p_name, p_price FROM product WHERE p_sku = 'SKU2';

-- TXN
SELECT o_customer, o_total FROM orders WHERE o_id = 3;
SELECT li_product, li_qty FROM line_item WHERE li_o_id = 3;
SELECT p_name, p_price FROM product WHERE p_sku = 'SKU1';
SELECT p_name, p_price FROM product WHERE p_sku = 'SKU3';

-- TXN
SELECT o_customer, o_total FROM orders WHERE o_id = 2;
SELECT li_product, li_qty FROM line_item WHERE li_o_id = 2;
SELECT p_name, p_price FROM product WHERE p_sku = 'SKU3';
