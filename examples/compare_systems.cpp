// System shoot-out: run a short TPC-E experiment for each of the five
// systems the paper compares (Sec. 6 "Systems") and print a summary table.
//
//   ./build/examples/compare_systems [clients]

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"
#include "workloads/tpce.h"

using namespace chrono;

int main(int argc, char** argv) {
  int clients = argc > 1 ? std::atoi(argv[1]) : 8;

  auto make_workload = [] {
    workloads::TpceWorkload::Config c;
    c.customers = 200;
    c.securities = 1000;
    c.watch_lists = 400;
    c.trades = 2000;
    return std::make_unique<workloads::TpceWorkload>(c);
  };

  std::printf("TPC-E, %d clients, 70 ms WAN, 20 s warm-up + 40 s measured "
              "(virtual time)\n\n", clients);
  std::printf("%-12s %14s %12s %14s %12s\n", "system", "avg resp (ms)",
              "hit rate", "db requests", "combined");

  for (core::SystemMode mode :
       {core::SystemMode::kChrono, core::SystemMode::kScalpelCC,
        core::SystemMode::kScalpelE, core::SystemMode::kApollo,
        core::SystemMode::kLru}) {
    harness::ExperimentConfig config;
    config.clients = clients;
    config.warmup = 20 * kMicrosPerSecond;
    config.duration = 40 * kMicrosPerSecond;
    config.middleware.mode = mode;
    harness::ExperimentResult result =
        harness::RunExperiment(make_workload, config);
    std::printf("%-12s %14.2f %11.1f%% %14llu %12llu\n",
                core::SystemModeName(mode), result.avg_response_ms,
                result.cache_hit_rate * 100.0,
                static_cast<unsigned long long>(result.db_requests),
                static_cast<unsigned long long>(result.metrics.remote_combined));
  }
  std::printf(
      "\nExpected shape (paper Sec. 6.1): ChronoCache around 1/3 of "
      "LRU/Apollo and\naround 1/2 of the Scalpel variants, through loop-"
      "aware predictive combining.\n");
  return 0;
}
