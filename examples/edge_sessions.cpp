// Session semantics demo (Sec. 5.2 / 5.2.1): multiple clients sharing one
// edge cache under version-vector session guarantees and row-level-security
// groups.
//
//   ./build/examples/edge_sessions

#include <cstdio>

#include "core/middleware.h"
#include "db/database.h"

using namespace chrono;

namespace {

struct Reply {
  sql::ResultSet result;
  bool from_cache = false;
};

Reply Run(EventQueue* events, core::Middleware* node, core::ClientId client,
          int group, const std::string& text) {
  Reply reply;
  uint64_t hits_before = node->metrics().cache_hits;
  node->SubmitQuery(client, group, text,
                    [&](SimTime, const Result<sql::ResultSet>& result) {
                      if (result.ok()) reply.result = *result;
                    });
  events->RunAll();
  reply.from_cache = node->metrics().cache_hits > hits_before;
  return reply;
}

const char* Origin(const Reply& reply) {
  return reply.from_cache ? "edge cache" : "remote db ";
}

}  // namespace

int main() {
  EventQueue events;
  db::Database database;
  (void)database.catalog()->CreateTable(
      "accounts", {db::ColumnDef{"id", sql::Value::Type::kInt},
                   db::ColumnDef{"balance", sql::Value::Type::kInt}});
  (void)database.ExecuteText("INSERT INTO accounts VALUES (1, 100), (2, 900)");

  net::LatencyModel latency;
  core::RemoteDbServer remote(&events, &database, latency, 8);
  core::MiddlewareConfig config;
  config.mode = core::SystemMode::kChrono;
  config.Finalize();
  core::Middleware node(&events, &remote, latency, config);

  const std::string kRead = "SELECT balance FROM accounts WHERE id = 1";

  std::printf("== Session semantics (Sec. 5.2) ==\n");
  Reply r = Run(&events, &node, /*client=*/0, 0, kRead);
  std::printf("client 0 reads balance: %s  [%s]\n",
              r.result.row(0)[0].ToDisplayString().c_str(), Origin(r));

  r = Run(&events, &node, /*client=*/1, 0, kRead);
  std::printf("client 1 reads balance: %s  [%s]  (shared cached result)\n",
              r.result.row(0)[0].ToDisplayString().c_str(), Origin(r));

  (void)Run(&events, &node, /*client=*/1, 0,
            "UPDATE accounts SET balance = 150 WHERE id = 1");
  std::printf("client 1 updates the balance to 150\n");

  r = Run(&events, &node, /*client=*/1, 0, kRead);
  std::printf(
      "client 1 re-reads:      %s  [%s]  (its session advanced past the "
      "stale entry)\n",
      r.result.row(0)[0].ToDisplayString().c_str(), Origin(r));

  r = Run(&events, &node, /*client=*/2, 0, kRead);
  std::printf(
      "client 2 reads:         %s  [%s]  (fresh result re-cached by client "
      "1's read)\n",
      r.result.row(0)[0].ToDisplayString().c_str(), Origin(r));

  std::printf(
      "\nA client never observes database state older than what it has "
      "already seen;\nother clients may still read older consistent "
      "snapshots (Sec. 5.2).\n");

  std::printf("\n== Access-control groups (Sec. 5.2.1) ==\n");
  const std::string kRead2 = "SELECT balance FROM accounts WHERE id = 2";
  r = Run(&events, &node, /*client=*/3, /*group=*/7, kRead2);
  std::printf("client 3 (group 7) reads account 2: [%s]\n", Origin(r));
  r = Run(&events, &node, /*client=*/4, /*group=*/8, kRead2);
  std::printf(
      "client 4 (group 8) same query:      [%s]  (cached entry belongs to "
      "group 7 -> not shared)\n",
      Origin(r));
  r = Run(&events, &node, /*client=*/5, /*group=*/8, kRead2);
  std::printf("client 5 (group 8) same query:      [%s]\n", Origin(r));

  std::printf("\nfinal metrics: reads=%llu hits=%llu rejects=%llu\n",
              static_cast<unsigned long long>(node.metrics().reads),
              static_cast<unsigned long long>(node.metrics().cache_hits),
              static_cast<unsigned long long>(node.metrics().cache_rejects));
  return 0;
}
