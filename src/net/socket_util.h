#ifndef CHRONOCACHE_NET_SOCKET_UTIL_H_
#define CHRONOCACHE_NET_SOCKET_UTIL_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace chrono::net {

/// \brief Shared POSIX TCP plumbing for every socket-facing component
/// (obs::StatsServer, wire::WireServer, wire::WireClient). Centralising the
/// fcntl/setsockopt/bind boilerplate keeps error handling uniform and —
/// because ListenTcp resolves an ephemeral bind to its real port before
/// returning — removes the bind-port-0-then-re-resolve race individual
/// call sites used to carry.

/// Puts the descriptor in non-blocking mode (O_NONBLOCK).
Status SetNonBlocking(int fd);

/// Enables SO_REUSEADDR so restarted listeners do not trip on TIME_WAIT.
Status SetReuseAddr(int fd);

/// Disables Nagle (TCP_NODELAY); request/response protocols want their
/// small frames on the wire immediately. Best-effort (ignored on failure).
void SetNoDelay(int fd);

/// Bounds one socket direction with SO_RCVTIMEO / SO_SNDTIMEO. ms <= 0
/// clears the timeout (blocking forever).
Status SetRecvTimeoutMs(int fd, int ms);
Status SetSendTimeoutMs(int fd, int ms);

/// Creates a TCP listener bound to `host`:`port` (IPv4 dotted quad;
/// "127.0.0.1" for loopback-only). `port` 0 binds an ephemeral port; the
/// port actually bound is written to *bound_port (never null) before the
/// fd is returned, so callers observe a fully-resolved endpoint
/// atomically. The returned fd is blocking; callers that want a
/// non-blocking accept loop apply SetNonBlocking themselves.
Result<int> ListenTcp(const std::string& host, int port, int backlog,
                      int* bound_port);

/// Blocking TCP connect to `host`:`port` (IPv4 dotted quad). A positive
/// `timeout_ms` bounds the connect itself and initialises both I/O
/// timeouts on the returned fd.
Result<int> ConnectTcp(const std::string& host, int port, int timeout_ms);

/// Writes the whole buffer, riding out partial sends and EINTR. Uses
/// MSG_NOSIGNAL so a vanished peer yields an error, not SIGPIPE. Returns
/// false once the peer is gone (or the send timeout fires).
bool SendAll(int fd, const void* data, size_t len);

/// Reads exactly `len` bytes. Fails on EOF, timeout, or a socket error;
/// short reads are retried.
Status RecvAll(int fd, void* data, size_t len);

/// Waits up to `timeout_ms` for the fd to become readable (poll).
/// Returns 1 when readable, 0 on timeout, negative errno on failure.
/// timeout_ms < 0 waits indefinitely.
int PollReadable(int fd, int timeout_ms);

}  // namespace chrono::net

#endif  // CHRONOCACHE_NET_SOCKET_UTIL_H_
