#ifndef CHRONOCACHE_NET_LATENCY_MODEL_H_
#define CHRONOCACHE_NET_LATENCY_MODEL_H_

#include <cstdint>

#include "sim/event_queue.h"

namespace chrono::net {

/// \brief Virtual-time latency constants for the simulated deployment.
/// Defaults mirror the paper's testbed: clients, middleware and Memcached
/// co-located on the edge (sub-millisecond hops) with the database across a
/// trans-continental WAN (70 ms round trip, §6.1).
struct LatencyModel {
  /// Client <-> middleware/memcached round trip on the edge LAN.
  SimTime edge_rtt = 500;  // 0.5 ms

  /// Middleware <-> remote database round trip over the WAN.
  SimTime wan_rtt = 70 * kMicrosPerMilli;  // 70 ms

  /// Database service time: fixed per-statement cost plus per-row cost
  /// proportional to rows touched by the executor.
  SimTime db_base_service = 300;   // 0.3 ms
  SimTime db_per_row = 2;          // 2 us per row scanned

  /// Middleware service time per request (parse, lookup, bookkeeping) and
  /// per combined-query generation/split. Calibrated to the paper's
  /// middleware (ANTLR parsing + JDBC marshalling on an m4.4xlarge): a few
  /// hundred microseconds per request. These charge a middleware node's
  /// worker pool and produce the saturation behaviour behind Fig. 10c —
  /// one node saturates near ~150 clients, three nodes spread the load.
  SimTime mw_base_service = 1000;    // 1 ms
  SimTime mw_combine_service = 4000;  // 4 ms to combine + split

  /// Database service time for a statement that scanned `rows` rows.
  SimTime DbServiceTime(uint64_t rows) const {
    return db_base_service + static_cast<SimTime>(rows) * db_per_row;
  }
};

}  // namespace chrono::net

#endif  // CHRONOCACHE_NET_LATENCY_MODEL_H_
