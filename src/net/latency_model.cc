#include "net/latency_model.h"

// LatencyModel is a header-only aggregate; this translation unit exists so
// the module has a home in the library and a place for future logic.
