#ifndef CHRONOCACHE_NET_CIRCUIT_BREAKER_H_
#define CHRONOCACHE_NET_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

namespace chrono::net {

/// \brief Per-backend circuit breaker (closed → open → half-open).
///
/// Closed: everything is admitted; `failure_threshold` *consecutive*
/// transport failures open the breaker. Open: demand calls are rejected
/// fast (no WAN wait) until `open_cooldown_us` elapses, then the next
/// demand call is admitted as a probe and the breaker moves to half-open.
/// Half-open: at most `half_open_probes` calls are in flight as probes;
/// `close_threshold` probe successes close the breaker, one probe failure
/// re-opens it and restarts the cooldown.
///
/// Prefetch is best-effort and is only admitted while the breaker is fully
/// closed — a degraded backend's capacity belongs to demand traffic, and
/// prefetch must never occupy half-open probe slots.
///
/// Thread safety: one mutex, held only for the state machine (no I/O, no
/// waiting). The mutex is a leaf in the server lock order — callers hold no
/// cache-shard or session lock at backend call sites — except that the
/// transition listener runs under it, so listeners must themselves be
/// leaf-only (journal Record and relaxed counters qualify).
class CircuitBreaker {
 public:
  enum class State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
  static const char* StateName(State state);

  struct Options {
    int failure_threshold = 5;           // consecutive failures that open
    uint64_t open_cooldown_us = 500'000; // open → first half-open probe
    int half_open_probes = 1;            // concurrent probes in half-open
    int close_threshold = 2;             // probe successes that close
  };

  /// How AdmitDemand classified a call; pass it back to OnResult so probe
  /// slots are released and successes/failures are attributed correctly.
  enum class Admission { kRejected = 0, kAdmitted = 1, kProbe = 2 };

  using Clock = std::function<uint64_t()>;  // monotonic µs
  using TransitionListener = std::function<void(State from, State to)>;

  CircuitBreaker(Options options, Clock clock);

  /// Installs a transition callback (journal/metrics hook). Called under
  /// the breaker mutex; must be cheap and lock-leaf. Set before traffic.
  void SetTransitionListener(TransitionListener listener);

  /// Admission for a demand (client-blocking) call. kRejected means fail
  /// fast without touching the backend.
  Admission AdmitDemand();

  /// Admission for best-effort background work: true only when closed.
  bool AdmitPrefetch();

  /// Reports the outcome of an admitted call. `ok` covers transport health
  /// only — an application error from a healthy backend is a success here.
  /// Calls admitted as kRejected must not be reported.
  void OnResult(Admission admission, bool ok);

  State state() const {
    return state_relaxed_.load(std::memory_order_relaxed);
  }

  uint64_t demand_rejected() const {
    return demand_rejected_.load(std::memory_order_relaxed);
  }
  uint64_t prefetch_rejected() const {
    return prefetch_rejected_.load(std::memory_order_relaxed);
  }
  uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  void TransitionLocked(State to, uint64_t now_us);

  const Options options_;
  const Clock clock_;

  std::mutex mutex_;
  State state_ = State::kClosed;       // guarded by mutex_
  int consecutive_failures_ = 0;       // closed: failures in a row
  int probes_inflight_ = 0;            // half-open: outstanding probes
  int probe_successes_ = 0;            // half-open: successes so far
  uint64_t opened_at_us_ = 0;          // open: cooldown start
  TransitionListener listener_;

  /// Lock-free mirror of state_ for gauges and fast-path peeks.
  std::atomic<State> state_relaxed_{State::kClosed};
  std::atomic<uint64_t> demand_rejected_{0};
  std::atomic<uint64_t> prefetch_rejected_{0};
  std::atomic<uint64_t> transitions_{0};
};

}  // namespace chrono::net

#endif  // CHRONOCACHE_NET_CIRCUIT_BREAKER_H_
