#ifndef CHRONOCACHE_NET_RETRY_POLICY_H_
#define CHRONOCACHE_NET_RETRY_POLICY_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace chrono::net {

/// \brief Deadline budget for one remote operation, measured against an
/// injected microsecond clock so tests (and the virtual-time simulator) can
/// drive it deterministically. A zero budget means "no deadline".
class Deadline {
 public:
  using Clock = std::function<uint64_t()>;

  /// No deadline: remaining_us() == UINT64_MAX forever.
  Deadline() = default;

  /// Starts a budget of `budget_us` at clock() now. budget_us == 0 means
  /// unlimited.
  Deadline(uint64_t budget_us, Clock clock)
      : budget_us_(budget_us),
        clock_(std::move(clock)),
        start_us_(budget_us_ > 0 && clock_ ? clock_() : 0) {}

  bool unlimited() const { return budget_us_ == 0 || !clock_; }

  /// Microseconds left in the budget (UINT64_MAX when unlimited).
  uint64_t remaining_us() const {
    if (unlimited()) return UINT64_MAX;
    uint64_t elapsed = clock_() - start_us_;
    return elapsed >= budget_us_ ? 0 : budget_us_ - elapsed;
  }

  bool expired() const { return remaining_us() == 0; }

  uint64_t budget_us() const { return budget_us_; }

 private:
  uint64_t budget_us_ = 0;
  Clock clock_;
  uint64_t start_us_ = 0;
};

/// Combines two deadline budgets where 0 means "unlimited" on both sides:
/// the result is the tighter of the two, and unlimited only when both
/// are. Used to clamp the server's configured retry budget (§11) by the
/// client's propagated wire deadline (§17) — the ladder never spends time
/// a client no longer has.
inline uint64_t ClampBudgetUs(uint64_t budget_us, uint64_t cap_us) {
  if (budget_us == 0) return cap_us;
  if (cap_us == 0) return budget_us;
  return budget_us < cap_us ? budget_us : cap_us;
}

/// Knobs for the exponential-backoff retry schedule applied to idempotent
/// demand reads. Writes never consult this policy — they are not safely
/// retryable without dedup tokens the backend does not have.
struct RetryOptions {
  int max_attempts = 3;                 // total tries, including the first
  uint64_t initial_backoff_us = 5'000;  // cap for the first backoff
  uint64_t max_backoff_us = 100'000;    // overall backoff ceiling
  double multiplier = 2.0;              // cap growth per attempt
};

/// \brief Bounded exponential backoff with full jitter: the wait before
/// attempt N+1 is uniform in [0, min(max_backoff, initial * mult^(N-1))].
/// Full jitter de-correlates clients that failed together (the thundering
/// herd after a blackout), which truncated jitter does not.
class RetryPolicy {
 public:
  RetryPolicy() = default;
  explicit RetryPolicy(RetryOptions options) : options_(options) {}

  /// True if another attempt is allowed after `attempts_made` tries.
  bool ShouldRetry(int attempts_made) const {
    return attempts_made < options_.max_attempts;
  }

  /// The backoff cap (µs) applied before attempt `attempts_made + 1`;
  /// attempts_made >= 1.
  uint64_t BackoffCapUs(int attempts_made) const;

  /// Full-jitter backoff: u01 in [0, 1) picks uniformly within the cap.
  uint64_t BackoffUs(int attempts_made, double u01) const {
    return static_cast<uint64_t>(
        static_cast<double>(BackoffCapUs(attempts_made)) * u01);
  }

  /// Only transport-level failures are retryable; SQL/application errors
  /// (parse, execution, not-found) would fail identically on every try.
  static bool IsRetryable(const Status& status) {
    return status.code() == Status::Code::kUnavailable ||
           status.code() == Status::Code::kDeadlineExceeded;
  }

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
};

}  // namespace chrono::net

#endif  // CHRONOCACHE_NET_RETRY_POLICY_H_
