#include "net/retry_policy.h"

namespace chrono::net {

uint64_t RetryPolicy::BackoffCapUs(int attempts_made) const {
  if (attempts_made < 1) attempts_made = 1;
  double cap = static_cast<double>(options_.initial_backoff_us);
  for (int i = 1; i < attempts_made; ++i) {
    cap *= options_.multiplier;
    if (cap >= static_cast<double>(options_.max_backoff_us)) {
      return options_.max_backoff_us;
    }
  }
  uint64_t out = static_cast<uint64_t>(cap);
  return out > options_.max_backoff_us ? options_.max_backoff_us : out;
}

}  // namespace chrono::net
