#include "net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace chrono::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

Status FillAddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

Status SetTimeoutMs(int fd, int ms, int option) {
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
  }
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_*TIMEO)");
  }
  return Status::OK();
}

}  // namespace

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetReuseAddr(int fd) {
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status SetRecvTimeoutMs(int fd, int ms) {
  return SetTimeoutMs(fd, ms, SO_RCVTIMEO);
}

Status SetSendTimeoutMs(int fd, int ms) {
  return SetTimeoutMs(fd, ms, SO_SNDTIMEO);
}

Result<int> ListenTcp(const std::string& host, int port, int backlog,
                      int* bound_port) {
  sockaddr_in addr{};
  CHRONO_RETURN_NOT_OK(FillAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  Status status = SetReuseAddr(fd);
  if (status.ok() &&
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    status = Status::Internal("bind " + host + ":" + std::to_string(port) +
                              ": " + std::strerror(errno));
  }
  if (status.ok() && ::listen(fd, backlog) < 0) status = Errno("listen");
  if (status.ok()) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      status = Errno("getsockname");
    } else {
      *bound_port = ntohs(addr.sin_port);
    }
  }
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, int port, int timeout_ms) {
  sockaddr_in addr{};
  CHRONO_RETURN_NOT_OK(FillAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  if (timeout_ms > 0) {
    // Non-blocking connect + poll: SO_SNDTIMEO does not reliably bound
    // connect() itself — against a blackholed host the SYN retries run to
    // the kernel default (minutes) regardless — so the handshake is timed
    // explicitly with poll(POLLOUT) and SO_ERROR.
    Status status = SetNonBlocking(fd);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (errno != EINPROGRESS) {
        std::string err = std::strerror(errno);
        ::close(fd);
        return Status::Unavailable("connect " + host + ":" +
                                   std::to_string(port) + ": " + err);
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int n;
      do {
        n = ::poll(&pfd, 1, timeout_ms);
      } while (n < 0 && errno == EINTR);
      if (n == 0) {
        ::close(fd);
        return Status::DeadlineExceeded(
            "connect " + host + ":" + std::to_string(port) +
            " timed out after " + std::to_string(timeout_ms) + "ms");
      }
      if (n < 0) {
        Status poll_error = Errno("poll(connect)");
        ::close(fd);
        return poll_error;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        std::string err = std::strerror(so_error != 0 ? so_error : errno);
        ::close(fd);
        return Status::Unavailable("connect " + host + ":" +
                                   std::to_string(port) + ": " + err);
      }
    }
    // Connected: back to blocking mode, with the timeout installed for
    // subsequent I/O on the connection.
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0) {
      Status fcntl_error = Errno("fcntl(clear O_NONBLOCK)");
      ::close(fd);
      return fcntl_error;
    }
    Status status_io = SetSendTimeoutMs(fd, timeout_ms);
    if (status_io.ok()) status_io = SetRecvTimeoutMs(fd, timeout_ms);
    if (!status_io.ok()) {
      ::close(fd);
      return status_io;
    }
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " + err);
  }
  SetNoDelay(fd);
  return fd;
}

bool SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer gone, timeout, or hard error
  }
  return true;
}

Status RecvAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::recv(fd, p + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::Unavailable("connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("socket read timed out");
    }
    return Errno("recv");
  }
  return Status::OK();
}

int PollReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int n;
  do {
    n = ::poll(&pfd, 1, timeout_ms);
  } while (n < 0 && errno == EINTR);
  return n < 0 ? -errno : n;
}

}  // namespace chrono::net
