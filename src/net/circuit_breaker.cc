#include "net/circuit_breaker.h"

#include <utility>

namespace chrono::net {

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(Options options, Clock clock)
    : options_(options), clock_(std::move(clock)) {}

void CircuitBreaker::SetTransitionListener(TransitionListener listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  listener_ = std::move(listener);
}

void CircuitBreaker::TransitionLocked(State to, uint64_t now_us) {
  State from = state_;
  if (from == to) return;
  state_ = to;
  state_relaxed_.store(to, std::memory_order_relaxed);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  switch (to) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kOpen:
      opened_at_us_ = now_us;
      break;
    case State::kHalfOpen:
      probes_inflight_ = 0;
      probe_successes_ = 0;
      break;
  }
  if (listener_) listener_(from, to);
}

CircuitBreaker::Admission CircuitBreaker::AdmitDemand() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return Admission::kAdmitted;
    case State::kOpen: {
      uint64_t now = clock_();
      if (now - opened_at_us_ < options_.open_cooldown_us) {
        demand_rejected_.fetch_add(1, std::memory_order_relaxed);
        return Admission::kRejected;
      }
      TransitionLocked(State::kHalfOpen, now);
      ++probes_inflight_;
      return Admission::kProbe;
    }
    case State::kHalfOpen:
      if (probes_inflight_ < options_.half_open_probes) {
        ++probes_inflight_;
        return Admission::kProbe;
      }
      demand_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Admission::kRejected;
  }
  return Admission::kAdmitted;  // unreachable
}

bool CircuitBreaker::AdmitPrefetch() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kClosed) return true;
  }
  prefetch_rejected_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void CircuitBreaker::OnResult(Admission admission, bool ok) {
  if (admission == Admission::kRejected) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (admission == Admission::kProbe) {
    if (probes_inflight_ > 0) --probes_inflight_;
    // A probe result only matters while still half-open; a concurrent
    // probe may already have re-opened or closed the breaker.
    if (state_ != State::kHalfOpen) return;
    if (ok) {
      if (++probe_successes_ >= options_.close_threshold) {
        TransitionLocked(State::kClosed, clock_());
      }
    } else {
      TransitionLocked(State::kOpen, clock_());
    }
    return;
  }
  // Regular admission: only meaningful while closed. A call that was
  // admitted closed but finished after the breaker opened carries no new
  // information — the breaker already reacted.
  if (state_ != State::kClosed) return;
  if (ok) {
    consecutive_failures_ = 0;
  } else if (++consecutive_failures_ >= options_.failure_threshold) {
    TransitionLocked(State::kOpen, clock_());
  }
}

}  // namespace chrono::net
