#ifndef CHRONOCACHE_NET_FAULT_INJECTOR_H_
#define CHRONOCACHE_NET_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

namespace chrono::net {

/// Scripted fault schedule for the remote-DB link. All probabilities are
/// percentages in [0, 100]; everything off by default.
struct FaultOptions {
  /// Chance a backend call fails with Unavailable (dropped/refused).
  double error_pct = 0.0;
  /// Latency-spike multiplier applied to spiked calls (1 = off). The
  /// effective multiplier is jittered in [mult/2, mult] per call.
  double spike_multiplier = 1.0;
  /// Share of calls that take the spiked latency.
  double spike_pct = 10.0;
  /// Blackout window: every call with `now` inside
  /// [blackout_start_us, blackout_start_us + blackout_us) hangs and fails
  /// (the caller's deadline cuts it off). 0 duration disables.
  uint64_t blackout_start_us = 3'000'000;
  uint64_t blackout_us = 0;
  /// If non-zero, the blackout repeats with this period.
  uint64_t blackout_period_us = 0;
  uint64_t seed = 42;
};

/// What the injector decided for one backend call.
struct FaultDecision {
  bool fail = false;      // call fails with Unavailable
  bool blackout = false;  // failing because of a blackout window (hangs)
  double latency_multiplier = 1.0;
};

/// \brief Deterministic, seedable fault injector shared by the wall-clock
/// server and the virtual-time simulator. Each call draws its fate from
/// SplitMix64(seed ^ ordinal) where the ordinal is a process-wide atomic
/// counter — thread-safe with no locks, and the decision *sequence* is
/// reproducible for a fixed seed (the thread interleaving only permutes
/// which request gets which ordinal). `now_us` is whatever timeline the
/// caller lives on (wall µs since server start, or virtual sim time);
/// blackout windows are evaluated against it directly.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultOptions options);

  /// True if any fault (error, spike, or blackout) is configured.
  bool enabled() const { return enabled_; }

  FaultDecision Decide(uint64_t now_us);

  bool InBlackout(uint64_t now_us) const;

  uint64_t decisions() const {
    return ordinal_.load(std::memory_order_relaxed);
  }
  uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }
  uint64_t blackout_faults() const {
    return blackout_faults_.load(std::memory_order_relaxed);
  }
  uint64_t spikes() const { return spikes_.load(std::memory_order_relaxed); }

  const FaultOptions& options() const { return options_; }

 private:
  FaultOptions options_;
  bool enabled_ = false;
  std::atomic<uint64_t> ordinal_{0};
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> blackout_faults_{0};
  std::atomic<uint64_t> spikes_{0};
};

}  // namespace chrono::net

#endif  // CHRONOCACHE_NET_FAULT_INJECTOR_H_
