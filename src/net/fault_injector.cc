#include "net/fault_injector.h"

#include "common/rng.h"

namespace chrono::net {

FaultInjector::FaultInjector(FaultOptions options) : options_(options) {
  enabled_ = options_.error_pct > 0.0 ||
             (options_.spike_multiplier > 1.0 && options_.spike_pct > 0.0) ||
             options_.blackout_us > 0;
}

bool FaultInjector::InBlackout(uint64_t now_us) const {
  if (options_.blackout_us == 0) return false;
  if (now_us < options_.blackout_start_us) return false;
  uint64_t offset = now_us - options_.blackout_start_us;
  if (options_.blackout_period_us > 0) {
    offset %= options_.blackout_period_us;
  }
  return offset < options_.blackout_us;
}

FaultDecision FaultInjector::Decide(uint64_t now_us) {
  FaultDecision decision;
  if (!enabled_) return decision;
  uint64_t ordinal = ordinal_.fetch_add(1, std::memory_order_relaxed);
  if (InBlackout(now_us)) {
    decision.fail = true;
    decision.blackout = true;
    faults_.fetch_add(1, std::memory_order_relaxed);
    blackout_faults_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  // Three independent uniforms from one hashed ordinal stream.
  uint64_t base = SplitMix64(options_.seed ^ (ordinal * 0x9e3779b97f4a7c15ULL));
  double u_error = HashToUnit(base);
  double u_spike = HashToUnit(SplitMix64(base));
  double u_jitter = HashToUnit(SplitMix64(base + 1));
  if (u_error * 100.0 < options_.error_pct) {
    decision.fail = true;
    faults_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  if (options_.spike_multiplier > 1.0 &&
      u_spike * 100.0 < options_.spike_pct) {
    // Jitter the spike in [mult/2, mult] so spiked calls do not stack into
    // lockstep convoys.
    decision.latency_multiplier =
        options_.spike_multiplier * (0.5 + 0.5 * u_jitter);
    if (decision.latency_multiplier < 1.0) decision.latency_multiplier = 1.0;
    spikes_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

}  // namespace chrono::net
