#ifndef CHRONOCACHE_COMMON_STRING_UTIL_H_
#define CHRONOCACHE_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace chrono {

/// FNV-1a 64-bit hash; used for query-template fingerprints and cache keys.
uint64_t Fnv1aHash(std::string_view s);

/// Joins pieces with the given separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// True if both strings are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict numeric parsers for command-line flags: the whole string must be
/// one well-formed number (no trailing junk, no empty input, no overflow).
/// Returns false without touching *out on malformed input — unlike atoi,
/// which silently yields 0 for garbage.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseDouble(std::string_view s, double* out);

}  // namespace chrono

#endif  // CHRONOCACHE_COMMON_STRING_UTIL_H_
