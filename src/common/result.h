#ifndef CHRONOCACHE_COMMON_RESULT_H_
#define CHRONOCACHE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace chrono {

/// \brief A value-or-Status holder (StatusOr idiom). Either holds a T
/// (status is OK) or a non-OK Status describing the failure.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  /*implicit*/ Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define CHRONO_ASSIGN_OR_RETURN(lhs, expr)          \
  auto CHRONO_CONCAT_(res_, __LINE__) = (expr);     \
  if (!CHRONO_CONCAT_(res_, __LINE__).ok())         \
    return CHRONO_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(CHRONO_CONCAT_(res_, __LINE__)).value()

#define CHRONO_CONCAT_INNER_(a, b) a##b
#define CHRONO_CONCAT_(a, b) CHRONO_CONCAT_INNER_(a, b)

}  // namespace chrono

#endif  // CHRONOCACHE_COMMON_RESULT_H_
