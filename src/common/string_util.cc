#include "common/string_util.h"

#include <cctype>

namespace chrono {

uint64_t Fnv1aHash(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace chrono
