#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace chrono {

uint64_t Fnv1aHash(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

namespace {

/// strtoll/strtod accept leading whitespace and stop at the first bad
/// character; flag parsing wants neither, so pre-check the shape and demand
/// full consumption of a NUL-terminated copy.
bool PrepareNumeric(std::string_view s, std::string* buf) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s.front()))) {
    return false;
  }
  buf->assign(s);
  return true;
}

}  // namespace

bool ParseInt64(std::string_view s, int64_t* out) {
  std::string buf;
  if (!PrepareNumeric(s, &buf)) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  std::string buf;
  if (!PrepareNumeric(s, &buf) || buf.front() == '-') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  std::string buf;
  if (!PrepareNumeric(s, &buf)) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace chrono
