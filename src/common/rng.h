#ifndef CHRONOCACHE_COMMON_RNG_H_
#define CHRONOCACHE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chrono {

/// SplitMix64 finaliser: hashes a counter into an independent uniform
/// 64-bit value. Stateless, so concurrent callers can derive deterministic
/// per-event randomness from an atomic ordinal (net::FaultInjector, retry
/// jitter) without sharing generator state.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Maps a 64-bit hash to a uniform double in [0, 1).
inline double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
/// Every simulated client and workload generator owns a seeded Rng so
/// experiments are bit-reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1).
  double NextDouble();

  /// Returns true with the given probability in [0, 1].
  bool NextBool(double probability);

  /// Picks an index according to non-negative weights (sum must be > 0).
  size_t NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
};

/// \brief Zipf(rho) distribution over [0, n). Used for the Wikipedia
/// workload's page popularity (paper uses Zipf with rho = 1).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double rho);

  /// Draws a rank in [0, n); rank 0 is the most popular item.
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double rho_;
  std::vector<double> cdf_;  // cumulative probabilities, size n (capped)
};

}  // namespace chrono

#endif  // CHRONOCACHE_COMMON_RNG_H_
