#include "common/json.h"

#include <cctype>
#include <string>

namespace chrono {

namespace {

/// Recursive-descent validator over a byte cursor. Depth is bounded so a
/// hostile input cannot blow the stack.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  Status Validate() {
    CHRONO_RETURN_NOT_OK(Value(0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing bytes after JSON value");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) {
    return Status::ParseError("json: " + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return ConsumeLiteral("true") ? Status::OK() : Fail("bad literal");
      case 'f':
        return ConsumeLiteral("false") ? Status::OK() : Fail("bad literal");
      case 'n':
        return ConsumeLiteral("null") ? Status::OK() : Fail("bad literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return Number();
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  Status Object(int depth) {
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      CHRONO_RETURN_NOT_OK(String());
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      CHRONO_RETURN_NOT_OK(Value(depth + 1));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status Array(int depth) {
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      CHRONO_RETURN_NOT_OK(Value(depth + 1));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']' in array");
    }
  }

  Status String() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        char e = text_[pos_];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++pos_;
          continue;
        }
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
          continue;
        }
        return Fail("bad escape character");
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status Number() {
    Consume('-');
    if (pos_ >= text_.size()) return Fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros: "01" is invalid
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      return Fail("expected digit");
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected digit after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected digit in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) {
  return JsonValidator(text).Validate();
}

}  // namespace chrono
