#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace chrono {

namespace {

// Two-sided 95% Student-t critical values for n-1 degrees of freedom,
// index = dof (0 unused). Beyond 30 dof we use the normal approximation.
constexpr double kT95[] = {0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447,
                           2.365, 2.306,  2.262, 2.228, 2.201, 2.179, 2.160,
                           2.145, 2.131,  2.120, 2.110, 2.101, 2.093, 2.086,
                           2.080, 2.074,  2.069, 2.064, 2.060, 2.056, 2.052,
                           2.048, 2.045,  2.042};

}  // namespace

double SampleStats::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SampleStats::Stddev() const {
  if (samples_.size() < 2) return 0;
  double mean = Mean();
  double ss = 0;
  for (double x : samples_) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double SampleStats::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Percentile(double q) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

double SampleStats::ConfidenceInterval95() const {
  size_t n = samples_.size();
  if (n < 2) return 0;
  size_t dof = n - 1;
  double t = dof <= 30 ? kT95[dof] : 1.96;
  return t * Stddev() / std::sqrt(static_cast<double>(n));
}

}  // namespace chrono
