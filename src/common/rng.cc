#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace chrono {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Bias is negligible for the bounds used by the workloads.
  return Next() % bound;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double probability) { return NextDouble() < probability; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double target = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double rho) : n_(n), rho_(rho) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), rho_);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  double u = rng->NextDouble();
  // Binary search the CDF.
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace chrono
