#ifndef CHRONOCACHE_COMMON_STATUS_H_
#define CHRONOCACHE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace chrono {

/// \brief Lightweight status object used for error propagation across module
/// boundaries (RocksDB idiom). Functions that can fail return a Status (or a
/// Result<T>, see result.h) instead of throwing exceptions.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kParseError,
    kExecutionError,
    kUnsupported,
    kInternal,
    kUnavailable,       // backend unreachable / injected fault / breaker open
    kDeadlineExceeded,  // remote call abandoned at its deadline budget
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(Code::kExecutionError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define CHRONO_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::chrono::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace chrono

#endif  // CHRONOCACHE_COMMON_STATUS_H_
