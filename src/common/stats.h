#ifndef CHRONOCACHE_COMMON_STATS_H_
#define CHRONOCACHE_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chrono {

/// \brief Hit/miss accounting shared by the query-path caches (statement
/// cache, template cache, result cache). Kept in common/ so every layer
/// reports through the same shape.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;

  uint64_t lookups() const { return hits + misses; }
  double HitRate() const {
    return lookups() == 0
               ? 0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
  void Reset() { hits = misses = 0; }
};

/// \brief Streaming accumulator for latency samples: mean, min/max,
/// percentiles and 95% confidence intervals across repeated runs.
class SampleStats {
 public:
  void Add(double x) { samples_.push_back(x); }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Stddev() const;  // sample standard deviation (n-1)
  double Min() const;
  double Max() const;

  /// q in [0, 1]; e.g. 0.5 for the median, 0.99 for p99.
  double Percentile(double q) const;

  /// Half-width of the 95% confidence interval for the mean, using
  /// Student's t critical values for small n (the paper reports 95% CIs
  /// over five runs).
  double ConfidenceInterval95() const;

 private:
  std::vector<double> samples_;
};

}  // namespace chrono

#endif  // CHRONOCACHE_COMMON_STATS_H_
