#ifndef CHRONOCACHE_COMMON_STATS_H_
#define CHRONOCACHE_COMMON_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace chrono {

/// \brief Hit/miss accounting shared by the query-path caches (statement
/// cache, template cache, result cache). Kept in common/ so every layer
/// reports through the same shape.
///
/// Thread safety: the counters are relaxed atomics, so concurrent
/// RecordHit/RecordMiss calls from the runtime's worker threads never
/// race. Relaxed ordering is sufficient — the counters are monotonic
/// telemetry, never used for synchronisation. Single-threaded call sites
/// (the simulator's caches) read the fields directly as before; reads
/// that race with writers may observe hits and misses from slightly
/// different instants, which is fine for statistics.
struct CacheCounters {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};

  CacheCounters() = default;
  CacheCounters(const CacheCounters& o)
      : hits(o.hits.load(std::memory_order_relaxed)),
        misses(o.misses.load(std::memory_order_relaxed)) {}
  CacheCounters& operator=(const CacheCounters& o) {
    hits.store(o.hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    misses.store(o.misses.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void RecordHit() { hits.fetch_add(1, std::memory_order_relaxed); }
  void RecordMiss() { misses.fetch_add(1, std::memory_order_relaxed); }

  uint64_t lookups() const {
    return hits.load(std::memory_order_relaxed) +
           misses.load(std::memory_order_relaxed);
  }
  double HitRate() const {
    uint64_t total = lookups();
    return total == 0 ? 0
                      : static_cast<double>(
                            hits.load(std::memory_order_relaxed)) /
                            static_cast<double>(total);
  }
  void Reset() {
    hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
  }
};

/// \brief Streaming accumulator for latency samples: mean, min/max,
/// percentiles and 95% confidence intervals across repeated runs.
///
/// Thread safety: NOT thread-safe — external locking contract. A
/// SampleStats instance may only be mutated from one thread at a time,
/// and readers must not overlap writers. The intended multi-threaded
/// pattern (used by tools/serve_bench.cc) is one private instance per
/// worker thread, merged with Merge() after the workers have been
/// joined; no locking is then needed at all. If concurrent access to a
/// shared instance is unavoidable, every call must be wrapped in a
/// caller-owned mutex.
class SampleStats {
 public:
  void Add(double x) {
    // Keep the lazily-sorted flag honest without paying a per-Add branch
    // miss in the common append-in-order case.
    if (sorted_ && !samples_.empty() && x < samples_.back()) sorted_ = false;
    samples_.push_back(x);
  }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Appends all of `other`'s samples (the post-join aggregation step of
  /// the external-locking contract above).
  void Merge(const SampleStats& other) {
    if (!other.samples_.empty()) sorted_ = samples_.empty() && other.sorted_;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  double Mean() const;
  double Stddev() const;  // sample standard deviation (n-1)
  double Min() const;
  double Max() const;

  /// q in [0, 1]; e.g. 0.5 for the median, 0.99 for p99. The first call
  /// after an Add/Merge sorts the samples in place and caches that order,
  /// so reporting several percentiles back-to-back (p50/p95/p99, as
  /// serve_bench does) costs one sort instead of one copy+sort per call.
  /// Sample order is observable through nothing else, so the in-place
  /// sort is safe under the external-locking contract above.
  double Percentile(double q) const;

  /// Half-width of the 95% confidence interval for the mean, using
  /// Student's t critical values for small n (the paper reports 95% CIs
  /// over five runs).
  double ConfidenceInterval95() const;

 private:
  // mutable: Percentile() is logically const but lazily sorts in place.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;  // vacuously true while empty
};

}  // namespace chrono

#endif  // CHRONOCACHE_COMMON_STATS_H_
