#ifndef CHRONOCACHE_COMMON_JSON_H_
#define CHRONOCACHE_COMMON_JSON_H_

#include <string_view>

#include "common/status.h"

namespace chrono {

/// \brief Strict RFC 8259 well-formedness check: one complete JSON value,
/// no trailing bytes, objects/arrays/strings/numbers fully validated
/// (escape sequences, number grammar, UTF-8 left to the producer). Returns
/// kParseError with a byte offset on the first violation.
///
/// This is a validator, not a parser — the repo's exporters *emit* JSON
/// and the tests/CLI only need to prove the emission is well-formed (the
/// "strict parser round trip" of DESIGN.md §15) without growing a DOM.
Status ValidateJson(std::string_view text);

}  // namespace chrono

#endif  // CHRONOCACHE_COMMON_JSON_H_
