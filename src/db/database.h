#ifndef CHRONOCACHE_DB_DATABASE_H_
#define CHRONOCACHE_DB_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>

#include "cache/lru_map.h"
#include "common/result.h"
#include "common/stats.h"
#include "db/catalog.h"
#include "db/executor.h"
#include "obs/metrics.h"
#include "sql/ast.h"

namespace chrono::db {

/// \brief The "remote database server" role from the paper's architecture:
/// an ANSI-SQL-subset engine that parses and executes query text. In the
/// simulation it stands in for PostgreSQL; ChronoCache normally interacts
/// with it through SQL strings, exactly as it would over JDBC, but a
/// pre-parsed Statement can also be handed off directly (the zero-reparse
/// path for predictively combined queries).
class Database {
 public:
  /// `statement_cache_entries` bounds the LRU parse cache (0 disables it).
  explicit Database(size_t statement_cache_entries = kDefaultStatementCache)
      : executor_(&catalog_), statement_cache_(statement_cache_entries) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }

  /// Parses and executes one SQL statement. Repeated texts skip the
  /// lex+parse entirely via the statement cache (parse trees are immutable
  /// and independent of table contents, so DML never invalidates them).
  Result<ExecOutcome> ExecuteText(std::string_view sql);

  /// Returns the cached parse tree for `sql`, parsing and caching on miss.
  /// This is the statement-cache hot path ExecuteText runs on.
  Result<std::shared_ptr<const sql::Statement>> ParseCached(
      std::string_view sql);

  /// Executes a pre-parsed, fully bound statement.
  ///
  /// Thread safety: read-only statements may run concurrently from many
  /// threads *provided* (a) no write runs at the same time (the runtime
  /// guards the database with a reader/writer lock) and (b) WarmIndexes()
  /// has been called since the last DDL, so point lookups never trigger a
  /// lazy index build mid-read. ExecuteText/ParseCached mutate the
  /// statement cache and therefore always require exclusive access.
  Result<ExecOutcome> Execute(const sql::Statement& stmt);

  /// Eagerly builds every table's per-column hash indexes. Table::Probe
  /// builds indexes lazily on first use, which is a mutation; calling this
  /// under exclusive access makes subsequent read-only Execute() calls
  /// side-effect-free so they can share the database under a reader lock.
  void WarmIndexes();

  /// Total statements executed (for load accounting in experiments).
  uint64_t statements_executed() const {
    return statements_executed_.load(std::memory_order_relaxed);
  }

  /// Statement-cache hit/miss counters (common/stats shape).
  const CacheCounters& statement_cache_counters() const {
    return statement_cache_.counters();
  }
  size_t statement_cache_size() const { return statement_cache_.size(); }
  uint64_t statement_cache_evictions() const {
    return statement_cache_.evictions();
  }

  /// Registers per-statement-kind execution-latency histograms
  /// (`chrono_db_statement_latency_ns{kind=...}`, wall-clock nanoseconds)
  /// with `registry` and starts timing Execute(). The registry must
  /// outlive this database. Idempotent; call before serving traffic —
  /// the histogram pointers are written without synchronisation.
  void AttachMetrics(obs::MetricsRegistry* registry);

  static constexpr size_t kDefaultStatementCache = 1024;

 private:
  static constexpr int kStatementKinds = 5;  // Statement::Kind values

  Catalog catalog_;
  Executor executor_;
  std::atomic<uint64_t> statements_executed_{0};
  cache::LruMap<std::string, std::shared_ptr<const sql::Statement>>
      statement_cache_;
  // Per-kind latency histograms; null until AttachMetrics. Indexed by
  // static_cast<int>(Statement::Kind). Read with relaxed atomics so a
  // reader-locked Execute racing registration stays TSan-clean.
  std::atomic<obs::Histogram*> exec_latency_[kStatementKinds] = {};
};

}  // namespace chrono::db

#endif  // CHRONOCACHE_DB_DATABASE_H_
