#ifndef CHRONOCACHE_DB_DATABASE_H_
#define CHRONOCACHE_DB_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "db/catalog.h"
#include "db/executor.h"

namespace chrono::db {

/// \brief The "remote database server" role from the paper's architecture:
/// an ANSI-SQL-subset engine that parses and executes query text. In the
/// simulation it stands in for PostgreSQL; ChronoCache only ever interacts
/// with it through SQL strings, exactly as it would over JDBC.
class Database {
 public:
  Database() : executor_(&catalog_) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }

  /// Parses and executes one SQL statement.
  Result<ExecOutcome> ExecuteText(std::string_view sql);

  /// Executes a pre-parsed, fully bound statement.
  Result<ExecOutcome> Execute(const sql::Statement& stmt) {
    return executor_.Execute(stmt);
  }

  /// Total statements executed (for load accounting in experiments).
  uint64_t statements_executed() const { return statements_executed_; }

 private:
  Catalog catalog_;
  Executor executor_;
  uint64_t statements_executed_ = 0;
};

}  // namespace chrono::db

#endif  // CHRONOCACHE_DB_DATABASE_H_
