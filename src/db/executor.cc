#include "db/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <unordered_set>

#include "sql/writer.h"

namespace chrono::db {

using sql::BinOp;
using sql::Expr;
using sql::ExprPtr;
using sql::VisitExpr;
using sql::JoinClause;
using sql::Row;
using sql::SelectStmt;
using sql::TableRef;
using sql::UnOp;
using sql::Value;

/// Intermediate materialised relation: qualified columns + rows.
struct Executor::Relation {
  struct Col {
    std::string qualifier;  // FROM alias this column came from ("" = output)
    std::string name;
  };
  std::vector<Col> cols;
  std::vector<Row> rows;

  int Find(const std::string& qualifier, const std::string& name) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (!qualifier.empty() && cols[i].qualifier != qualifier) continue;
      if (cols[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Chained name-resolution scope: the current relation/row plus an optional
/// outer scope for LATERAL subqueries and correlated expressions.
struct Executor::Scope {
  const Relation* rel = nullptr;
  const Row* row = nullptr;
  const Scope* outer = nullptr;
};

struct Executor::Context {
  // CTE name -> materialised relation, visible to the statement.
  std::unordered_map<std::string, Relation> ctes;
  // CTE name -> definition; materialised lazily on first generic
  // reference. Join sites may instead push join keys down into eligible
  // definitions (index nested loop), which is what a production optimiser
  // does with the combiner's stripped-filter CTEs.
  std::unordered_map<std::string, const SelectStmt*> cte_defs;
  ExecStats stats;
  std::set<std::string> tables_read;
};

namespace {

/// Output column name for a select item (PostgreSQL-like rules).
std::string OutputName(const sql::SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr) {
    switch (item.expr->kind) {
      case Expr::Kind::kColumnRef:
        return item.expr->column;
      case Expr::Kind::kFuncCall:
        return item.expr->func_name;
      case Expr::Kind::kRowNumber:
        return "row_number";
      default:
        break;
    }
  }
  return "col" + std::to_string(index + 1);
}

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

bool ContainsAggregate(const Expr* expr) {
  if (expr == nullptr) return false;
  if (expr->kind == Expr::Kind::kFuncCall && IsAggregateName(expr->func_name)) {
    return true;
  }
  for (const auto& c : expr->children) {
    if (ContainsAggregate(c.get())) return true;
  }
  return false;
}

bool IsTruthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == Value::Type::kString) return !v.AsString().empty();
  return v.AsDouble() != 0;
}

/// True if the expression references no columns (safe to evaluate without a
/// row; used for filter pushdown into index probes).
bool IsRowFree(const Expr* expr) {
  if (expr == nullptr) return true;
  if (expr->kind == Expr::Kind::kColumnRef || expr->kind == Expr::Kind::kStar ||
      expr->kind == Expr::Kind::kRowNumber) {
    return false;
  }
  for (const auto& c : expr->children) {
    if (!IsRowFree(c.get())) return false;
  }
  return true;
}

}  // namespace

Result<ExecOutcome> Executor::ExecuteSelect(const SelectStmt& stmt) {
  Context ctx;
  CHRONO_ASSIGN_OR_RETURN(Relation rel, EvalSelect(stmt, &ctx, nullptr));
  ExecOutcome out;
  for (const auto& col : rel.cols) out.result.mutable_columns()->push_back(col.name);
  for (auto& row : rel.rows) out.result.AddRow(std::move(row));
  out.stats = ctx.stats;
  out.tables_read.assign(ctx.tables_read.begin(), ctx.tables_read.end());
  return out;
}

Result<ExecOutcome> Executor::Execute(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      return ExecuteSelect(*stmt.select);
    case sql::Statement::Kind::kInsert: {
      const auto& ins = *stmt.insert;
      Table* table = catalog_->FindTable(ins.table);
      if (table == nullptr) return Status::NotFound("no table " + ins.table);
      Context ctx;
      Scope empty;
      ExecOutcome out;
      for (const auto& row_exprs : ins.rows) {
        Row row(table->columns().size(), Value::Null());
        if (ins.columns.empty()) {
          if (row_exprs.size() != table->columns().size()) {
            return Status::InvalidArgument("INSERT arity mismatch for " +
                                           ins.table);
          }
          for (size_t i = 0; i < row_exprs.size(); ++i) {
            CHRONO_ASSIGN_OR_RETURN(row[i], Eval(*row_exprs[i], empty, &ctx));
          }
        } else {
          if (row_exprs.size() != ins.columns.size()) {
            return Status::InvalidArgument("INSERT arity mismatch for " +
                                           ins.table);
          }
          for (size_t i = 0; i < ins.columns.size(); ++i) {
            int col = table->ColumnIndex(ins.columns[i]);
            if (col < 0) {
              return Status::NotFound("no column " + ins.columns[i] + " in " +
                                      ins.table);
            }
            CHRONO_ASSIGN_OR_RETURN(row[static_cast<size_t>(col)],
                                    Eval(*row_exprs[i], empty, &ctx));
          }
        }
        auto inserted = table->Insert(std::move(row));
        if (!inserted.ok()) return inserted.status();
        ++out.affected_rows;
      }
      out.stats = ctx.stats;
      out.stats.rows_scanned += ins.rows.size();
      out.tables_written.push_back(ins.table);
      return out;
    }
    case sql::Statement::Kind::kUpdate: {
      const auto& upd = *stmt.update;
      Table* table = catalog_->FindTable(upd.table);
      if (table == nullptr) return Status::NotFound("no table " + upd.table);
      Context ctx;
      ExecOutcome out;

      // Resolve assignment targets once.
      std::vector<std::pair<int, const Expr*>> sets;
      for (const auto& [col_name, expr] : upd.assignments) {
        int col = table->ColumnIndex(col_name);
        if (col < 0) {
          return Status::NotFound("no column " + col_name + " in " + upd.table);
        }
        sets.emplace_back(col, expr.get());
      }

      // Candidate slots: index probe if the WHERE has a col = const conjunct.
      std::vector<size_t> candidates;
      bool probed = false;
      Scope empty;
      if (upd.where) {
        for (const Expr* conj : sql::CollectConjuncts(upd.where.get())) {
          if (conj->kind != Expr::Kind::kBinary || conj->bin_op != BinOp::kEq) {
            continue;
          }
          const Expr* lhs = conj->children[0].get();
          const Expr* rhs = conj->children[1].get();
          if (lhs->kind != Expr::Kind::kColumnRef) std::swap(lhs, rhs);
          if (lhs->kind != Expr::Kind::kColumnRef || !IsRowFree(rhs)) continue;
          int col = table->ColumnIndex(lhs->column);
          if (col < 0) continue;
          CHRONO_ASSIGN_OR_RETURN(Value key, Eval(*rhs, empty, &ctx));
          candidates = table->Probe(col, key);
          probed = true;
          break;
        }
      }
      if (!probed) {
        candidates.resize(table->slots().size());
        for (size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
      }

      // Build a one-row relation view for WHERE evaluation.
      Relation view;
      view.cols.push_back({upd.table, "__rowid"});
      for (const auto& c : table->columns()) view.cols.push_back({upd.table, c.name});

      std::vector<size_t> to_update;
      for (size_t slot_index : candidates) {
        const auto& slot = table->slots()[slot_index];
        if (!slot.live) continue;
        ctx.stats.rows_scanned++;
        bool match = true;
        if (upd.where) {
          Row row;
          row.push_back(Value::Int(slot.rowid));
          row.insert(row.end(), slot.values.begin(), slot.values.end());
          Scope scope{&view, &row, nullptr};
          CHRONO_ASSIGN_OR_RETURN(Value cond, Eval(*upd.where, scope, &ctx));
          match = IsTruthy(cond);
        }
        if (match) to_update.push_back(slot_index);
      }
      for (size_t slot_index : to_update) {
        const auto& slot = table->slots()[slot_index];
        Row row;
        row.push_back(Value::Int(slot.rowid));
        row.insert(row.end(), slot.values.begin(), slot.values.end());
        Scope scope{&view, &row, nullptr};
        std::vector<std::pair<int, Value>> changes;
        for (const auto& [col, expr] : sets) {
          CHRONO_ASSIGN_OR_RETURN(Value v, Eval(*expr, scope, &ctx));
          changes.emplace_back(col, std::move(v));
        }
        table->UpdateSlot(slot_index, changes);
        ++out.affected_rows;
      }
      out.stats = ctx.stats;
      if (out.affected_rows > 0) out.tables_written.push_back(upd.table);
      out.tables_read.push_back(upd.table);
      return out;
    }
    case sql::Statement::Kind::kCreateTable: {
      const auto& create = *stmt.create;
      std::vector<ColumnDef> columns;
      columns.reserve(create.columns.size());
      for (const auto& col : create.columns) {
        columns.push_back(ColumnDef{col.name, col.type});
      }
      auto created = catalog_->CreateTable(create.table, std::move(columns));
      if (!created.ok()) return created.status();
      ExecOutcome out;
      out.tables_written.push_back(create.table);
      return out;
    }
    case sql::Statement::Kind::kDelete: {
      const auto& del = *stmt.del;
      Table* table = catalog_->FindTable(del.table);
      if (table == nullptr) return Status::NotFound("no table " + del.table);
      Context ctx;
      ExecOutcome out;
      Relation view;
      view.cols.push_back({del.table, "__rowid"});
      for (const auto& c : table->columns()) view.cols.push_back({del.table, c.name});
      std::vector<size_t> to_delete;
      for (size_t i = 0; i < table->slots().size(); ++i) {
        const auto& slot = table->slots()[i];
        if (!slot.live) continue;
        ctx.stats.rows_scanned++;
        bool match = true;
        if (del.where) {
          Row row;
          row.push_back(Value::Int(slot.rowid));
          row.insert(row.end(), slot.values.begin(), slot.values.end());
          Scope scope{&view, &row, nullptr};
          CHRONO_ASSIGN_OR_RETURN(Value cond, Eval(*del.where, scope, &ctx));
          match = IsTruthy(cond);
        }
        if (match) to_delete.push_back(i);
      }
      for (size_t slot_index : to_delete) {
        table->DeleteSlot(slot_index);
        ++out.affected_rows;
      }
      out.stats = ctx.stats;
      if (out.affected_rows > 0) out.tables_written.push_back(del.table);
      out.tables_read.push_back(del.table);
      return out;
    }
  }
  return Status::Internal("unknown statement kind");
}

Result<Executor::Relation> Executor::EvalTableRef(
    const TableRef& ref, Context* ctx, const Scope* outer,
    const std::vector<const Expr*>& filters) {
  Relation rel;
  switch (ref.kind) {
    case TableRef::Kind::kNone:
      return Status::Internal("EvalTableRef on empty ref");
    case TableRef::Kind::kTable: {
      const std::string& qualifier = ref.EffectiveName();
      // CTEs shadow catalog tables. Materialise lazily on first use.
      auto cte_it = ctx->ctes.find(ref.table_name);
      if (cte_it == ctx->ctes.end()) {
        auto def_it = ctx->cte_defs.find(ref.table_name);
        if (def_it != ctx->cte_defs.end()) {
          CHRONO_ASSIGN_OR_RETURN(Relation cte_rel,
                                  EvalSelect(*def_it->second, ctx, nullptr));
          for (auto& col : cte_rel.cols) col.qualifier = ref.table_name;
          cte_it =
              ctx->ctes.emplace(ref.table_name, std::move(cte_rel)).first;
        }
      }
      if (cte_it != ctx->ctes.end()) {
        rel.cols.reserve(cte_it->second.cols.size());
        for (const auto& col : cte_it->second.cols) {
          rel.cols.push_back({qualifier, col.name});
        }
        rel.rows = cte_it->second.rows;
        ctx->stats.rows_scanned += rel.rows.size();
        return rel;
      }
      Table* table = catalog_->FindTable(ref.table_name);
      if (table == nullptr) {
        return Status::NotFound("no table or CTE named " + ref.table_name);
      }
      ctx->tables_read.insert(ref.table_name);
      rel.cols.push_back({qualifier, "__rowid"});
      for (const auto& c : table->columns()) rel.cols.push_back({qualifier, c.name});

      // Filter pushdown: use a hash index if some conjunct pins a column of
      // this table to an expression evaluable without this table's row —
      // either literal-only, or (inside a correlated LATERAL body)
      // resolvable in the outer scope. When several conjuncts are pushable
      // (e.g. a per-loop constant AND a correlated join key, Fig. 4), pick
      // the most selective index bucket — hash probes are O(1), so probing
      // every candidate first is cheap.
      Scope probe_scope{nullptr, nullptr, outer};
      const std::vector<size_t>* best = nullptr;
      for (const Expr* conj : filters) {
        if (conj->kind != Expr::Kind::kBinary || conj->bin_op != BinOp::kEq) {
          continue;
        }
        const Expr* lhs = conj->children[0].get();
        const Expr* rhs = conj->children[1].get();
        if (lhs->kind != Expr::Kind::kColumnRef) std::swap(lhs, rhs);
        if (lhs->kind != Expr::Kind::kColumnRef) continue;
        if (!lhs->table.empty() && lhs->table != qualifier) continue;
        int col = table->ColumnIndex(lhs->column);
        if (col < 0) continue;
        Value key;
        if (IsRowFree(rhs)) {
          Scope empty;
          CHRONO_ASSIGN_OR_RETURN(key, Eval(*rhs, empty, ctx));
        } else {
          // Reject expressions that might resolve against this table:
          // every column reference must carry a foreign qualifier.
          bool foreign_only = true;
          VisitExpr(const_cast<Expr*>(rhs), [&](Expr* e) {
            if (e->kind == Expr::Kind::kColumnRef &&
                (e->table.empty() || e->table == qualifier)) {
              foreign_only = false;
            }
          });
          if (!foreign_only || outer == nullptr) continue;
          auto outer_key = Eval(*rhs, probe_scope, ctx);
          if (!outer_key.ok()) continue;  // not outer-resolvable: no push
          key = std::move(*outer_key);
        }
        const std::vector<size_t>& probe = table->Probe(col, key);
        if (best == nullptr || probe.size() < best->size()) best = &probe;
        if (best->empty()) break;
      }
      if (best != nullptr) {
        for (size_t slot_index : *best) {
          const auto& slot = table->slots()[slot_index];
          if (!slot.live) continue;
          Row row;
          row.reserve(slot.values.size() + 1);
          row.push_back(Value::Int(slot.rowid));
          row.insert(row.end(), slot.values.begin(), slot.values.end());
          rel.rows.push_back(std::move(row));
        }
        ctx->stats.rows_scanned += rel.rows.size() + 1;
        return rel;
      }

      // Full scan.
      for (const auto& slot : table->slots()) {
        if (!slot.live) continue;
        Row row;
        row.reserve(slot.values.size() + 1);
        row.push_back(Value::Int(slot.rowid));
        row.insert(row.end(), slot.values.begin(), slot.values.end());
        rel.rows.push_back(std::move(row));
      }
      ctx->stats.rows_scanned += rel.rows.size();
      return rel;
    }
    case TableRef::Kind::kSubquery:
    case TableRef::Kind::kLateralSubquery: {
      const Scope* visible =
          ref.kind == TableRef::Kind::kLateralSubquery ? outer : nullptr;
      CHRONO_ASSIGN_OR_RETURN(Relation sub,
                              EvalSelect(*ref.subquery, ctx, visible));
      for (auto& col : sub.cols) col.qualifier = ref.EffectiveName();
      return sub;
    }
  }
  return Status::Internal("unreachable");
}

Result<Executor::Relation> Executor::EvalFromChain(const SelectStmt& stmt,
                                                   Context* ctx,
                                                   const Scope* outer) {
  std::vector<const Expr*> where_conjuncts =
      sql::CollectConjuncts(stmt.where.get());

  CHRONO_ASSIGN_OR_RETURN(
      Relation current, EvalTableRef(stmt.from, ctx, outer, where_conjuncts));

  // Rewrites `LEFT JOIN <unmaterialised CTE> ON cte.out = prior.col` into a
  // correlated LATERAL with the key pushed into the CTE body's WHERE — the
  // index-nested-loop plan a production optimiser picks for the query
  // combiner's stripped-filter CTEs (§4.1). Returns true on success.
  auto try_pushdown = [&](const JoinClause& join,
                          JoinClause* rewritten) -> bool {
    if (join.ref.kind != TableRef::Kind::kTable || !join.on) return false;
    if (join.type == JoinClause::Type::kCross) return false;
    const std::string& name = join.ref.table_name;
    if (ctx->ctes.count(name) > 0) return false;  // already materialised
    auto def_it = ctx->cte_defs.find(name);
    if (def_it == ctx->cte_defs.end()) return false;
    const SelectStmt& body = *def_it->second;
    // Eligibility: single-base-table SPJ body with plain projection.
    if (!body.ctes.empty() || body.distinct || !body.group_by.empty() ||
        body.having || !body.order_by.empty() || body.limit.has_value() ||
        !body.joins.empty() || body.from.kind != TableRef::Kind::kTable) {
      return false;
    }
    if (ctx->cte_defs.count(body.from.table_name) > 0 ||
        ctx->ctes.count(body.from.table_name) > 0) {
      return false;  // body reads another CTE: materialise instead
    }
    for (const auto& item : body.items) {
      if (item.is_star) return false;
      if (ContainsAggregate(item.expr.get()) ||
          item.expr->kind == Expr::Kind::kRowNumber) {
        return false;
      }
    }
    const std::string& alias = join.ref.EffectiveName();
    // Find a pushable equality: cte_output = foreign expression.
    std::vector<ExprPtr> pushed;
    for (const Expr* conj : sql::CollectConjuncts(join.on.get())) {
      if (conj->kind != Expr::Kind::kBinary || conj->bin_op != BinOp::kEq) {
        continue;
      }
      const Expr* lhs = conj->children[0].get();
      const Expr* rhs = conj->children[1].get();
      if (lhs->kind != Expr::Kind::kColumnRef || lhs->table != alias) {
        std::swap(lhs, rhs);
      }
      if (lhs->kind != Expr::Kind::kColumnRef || lhs->table != alias) continue;
      bool foreign_only = true;
      VisitExpr(const_cast<Expr*>(rhs), [&](Expr* e) {
        if (e->kind == Expr::Kind::kColumnRef &&
            (e->table.empty() || e->table == alias)) {
          foreign_only = false;
        }
      });
      if (!foreign_only) continue;
      // Map the CTE output column back to its defining expression.
      const Expr* def_expr = nullptr;
      for (size_t i = 0; i < body.items.size(); ++i) {
        std::string out_name = OutputName(body.items[i], i);
        if (out_name == lhs->column) {
          def_expr = body.items[i].expr.get();
          break;
        }
      }
      if (def_expr == nullptr || def_expr->kind != Expr::Kind::kColumnRef) {
        continue;
      }
      pushed.push_back(Expr::MakeBinary(BinOp::kEq, def_expr->Clone(),
                                        rhs->Clone()));
    }
    if (pushed.empty()) return false;

    rewritten->type = join.type;
    rewritten->on = join.on->Clone();
    rewritten->ref.kind = TableRef::Kind::kLateralSubquery;
    rewritten->ref.alias = alias;
    rewritten->ref.subquery = body.Clone();
    std::vector<ExprPtr> conjuncts;
    if (rewritten->ref.subquery->where) {
      conjuncts.push_back(std::move(rewritten->ref.subquery->where));
    }
    for (auto& p : pushed) conjuncts.push_back(std::move(p));
    rewritten->ref.subquery->where =
        sql::CombineConjuncts(std::move(conjuncts));
    return true;
  };

  for (const auto& join_orig : stmt.joins) {
    JoinClause rewritten;
    const JoinClause& join =
        try_pushdown(join_orig, &rewritten) ? rewritten : join_orig;
    const bool lateral = join.ref.kind == TableRef::Kind::kLateralSubquery;
    Relation next;

    if (lateral) {
      // Per-row correlated execution: the subquery sees the current row.
      Relation combined;
      bool combined_init = false;
      for (const auto& row : current.rows) {
        Scope row_scope{&current, &row, outer};
        CHRONO_ASSIGN_OR_RETURN(Relation sub,
                                EvalTableRef(join.ref, ctx, &row_scope, {}));
        if (!combined_init) {
          combined.cols = current.cols;
          for (const auto& col : sub.cols) combined.cols.push_back(col);
          combined_init = true;
        }
        bool matched = false;
        for (const auto& srow : sub.rows) {
          Row out = row;
          out.insert(out.end(), srow.begin(), srow.end());
          // Evaluate residual ON condition if present.
          if (join.on) {
            Scope pair_scope{&combined, &out, outer};
            CHRONO_ASSIGN_OR_RETURN(Value cond, Eval(*join.on, pair_scope, ctx));
            if (!IsTruthy(cond)) continue;
          }
          combined.rows.push_back(std::move(out));
          matched = true;
          ctx->stats.rows_scanned++;
        }
        if (!matched && join.type == JoinClause::Type::kLeft) {
          Row out = row;
          size_t sub_width = combined.cols.size() - current.cols.size();
          for (size_t i = 0; i < sub_width; ++i) out.push_back(Value::Null());
          combined.rows.push_back(std::move(out));
        }
      }
      if (!combined_init) {
        // No input rows: derive the output shape from the subquery's
        // select list (correlated bodies cannot execute without a row).
        combined.cols = current.cols;
        const SelectStmt& body = *join.ref.subquery;
        bool star = false;
        for (const auto& item : body.items) {
          if (item.is_star) star = true;
        }
        if (star) {
          Scope empty_scope{&current, nullptr, outer};
          CHRONO_ASSIGN_OR_RETURN(
              Relation sub, EvalTableRef(join.ref, ctx, &empty_scope, {}));
          for (const auto& col : sub.cols) combined.cols.push_back(col);
        } else {
          for (size_t i = 0; i < body.items.size(); ++i) {
            combined.cols.push_back(
                {join.ref.EffectiveName(), OutputName(body.items[i], i)});
          }
        }
      }
      current = std::move(combined);
      continue;
    }

    CHRONO_ASSIGN_OR_RETURN(next, EvalTableRef(join.ref, ctx, outer, {}));

    Relation combined;
    combined.cols = current.cols;
    for (const auto& col : next.cols) combined.cols.push_back(col);

    if (join.type == JoinClause::Type::kCross) {
      combined.rows.reserve(current.rows.size() * next.rows.size());
      for (const auto& lrow : current.rows) {
        for (const auto& rrow : next.rows) {
          Row out;
          out.reserve(lrow.size() + rrow.size());
          out.insert(out.end(), lrow.begin(), lrow.end());
          out.insert(out.end(), rrow.begin(), rrow.end());
          combined.rows.push_back(std::move(out));
          ctx->stats.rows_scanned++;
        }
      }
      current = std::move(combined);
      continue;
    }

    // Find a hash-joinable equality conjunct in the ON clause: one side
    // resolving in `current`, the other in `next`.
    std::vector<const Expr*> on_conjuncts = sql::CollectConjuncts(join.on.get());
    const Expr* left_key = nullptr;
    const Expr* right_key = nullptr;
    const Expr* hash_conjunct = nullptr;
    for (const Expr* conj : on_conjuncts) {
      if (conj->kind != Expr::Kind::kBinary || conj->bin_op != BinOp::kEq) {
        continue;
      }
      const Expr* a = conj->children[0].get();
      const Expr* b = conj->children[1].get();
      if (a->kind != Expr::Kind::kColumnRef || b->kind != Expr::Kind::kColumnRef) {
        continue;
      }
      bool a_left = current.Find(a->table, a->column) >= 0;
      bool a_right = next.Find(a->table, a->column) >= 0;
      bool b_left = current.Find(b->table, b->column) >= 0;
      bool b_right = next.Find(b->table, b->column) >= 0;
      if (a_left && !a_right && b_right && !b_left) {
        left_key = a;
        right_key = b;
        hash_conjunct = conj;
        break;
      }
      if (b_left && !b_right && a_right && !a_left) {
        left_key = b;
        right_key = a;
        hash_conjunct = conj;
        break;
      }
    }

    auto eval_residual = [&](const Row& out) -> Result<bool> {
      Scope pair_scope{&combined, &out, outer};
      for (const Expr* conj : on_conjuncts) {
        if (conj == hash_conjunct) continue;
        CHRONO_ASSIGN_OR_RETURN(Value cond, Eval(*conj, pair_scope, ctx));
        if (!IsTruthy(cond)) return false;
      }
      return true;
    };

    if (left_key != nullptr) {
      // Hash join: build on the right side, probe with the left. Keys are
      // Values hashed directly (no literal rendering); ValueKeyEq matches
      // EqualsSql, so int and double join keys unify just as `=` would.
      int rk = next.Find(right_key->table, right_key->column);
      std::unordered_map<Value, std::vector<size_t>, sql::ValueHash,
                         sql::ValueKeyEq>
          build;
      build.reserve(next.rows.size());
      for (size_t i = 0; i < next.rows.size(); ++i) {
        const Value& v = next.rows[i][static_cast<size_t>(rk)];
        if (v.is_null()) continue;  // NULL never equi-joins
        build[v].push_back(i);
        ctx->stats.rows_scanned++;
      }
      int lk = current.Find(left_key->table, left_key->column);
      for (const auto& lrow : current.rows) {
        const Value& key = lrow[static_cast<size_t>(lk)];
        bool matched = false;
        if (!key.is_null()) {
          auto it = build.find(key);
          if (it != build.end()) {
            for (size_t ri : it->second) {
              Row out;
              out.reserve(lrow.size() + next.rows[ri].size());
              out.insert(out.end(), lrow.begin(), lrow.end());
              out.insert(out.end(), next.rows[ri].begin(), next.rows[ri].end());
              ctx->stats.rows_scanned++;
              CHRONO_ASSIGN_OR_RETURN(bool pass, eval_residual(out));
              if (!pass) continue;
              combined.rows.push_back(std::move(out));
              matched = true;
            }
          }
        }
        if (!matched && join.type == JoinClause::Type::kLeft) {
          Row out = lrow;
          for (size_t i = 0; i < next.cols.size(); ++i) out.push_back(Value::Null());
          combined.rows.push_back(std::move(out));
        }
      }
      current = std::move(combined);
      continue;
    }

    // Fallback: nested loop.
    for (const auto& lrow : current.rows) {
      bool matched = false;
      for (const auto& rrow : next.rows) {
        Row out = lrow;
        out.insert(out.end(), rrow.begin(), rrow.end());
        ctx->stats.rows_scanned++;
        Scope pair_scope{&combined, &out, outer};
        bool pass = true;
        if (join.on) {
          CHRONO_ASSIGN_OR_RETURN(Value cond, Eval(*join.on, pair_scope, ctx));
          pass = IsTruthy(cond);
        }
        if (!pass) continue;
        combined.rows.push_back(std::move(out));
        matched = true;
      }
      if (!matched && join.type == JoinClause::Type::kLeft) {
        Row out = lrow;
        for (size_t i = 0; i < next.cols.size(); ++i) out.push_back(Value::Null());
        combined.rows.push_back(std::move(out));
      }
    }
    current = std::move(combined);
  }
  return current;
}

Result<Executor::Relation> Executor::EvalSelect(const SelectStmt& stmt,
                                                Context* ctx,
                                                const Scope* outer) {
  // Register CTE definitions; they materialise lazily on first reference
  // (join sites may avoid materialisation entirely via key pushdown).
  // Visibility is statement-scoped, so save/restore shadowed names.
  std::vector<std::pair<std::string, Relation>> shadowed;
  std::vector<std::pair<std::string, const SelectStmt*>> shadowed_defs;
  std::vector<std::string> added;
  std::vector<std::string> added_defs;
  for (const auto& cte : stmt.ctes) {
    auto it = ctx->ctes.find(cte.name);
    if (it != ctx->ctes.end()) {
      shadowed.emplace_back(cte.name, std::move(it->second));
      ctx->ctes.erase(it);
      added.push_back(cte.name);  // ensure cleanup of any lazy result
    }
    auto def_it = ctx->cte_defs.find(cte.name);
    if (def_it != ctx->cte_defs.end()) {
      shadowed_defs.emplace_back(cte.name, def_it->second);
      def_it->second = cte.query.get();
    } else {
      ctx->cte_defs.emplace(cte.name, cte.query.get());
      added_defs.push_back(cte.name);
    }
  }
  auto restore = [&]() {
    for (const auto& name : added) ctx->ctes.erase(name);
    for (const auto& cte : stmt.ctes) ctx->ctes.erase(cte.name);
    for (auto& [name, rel] : shadowed) ctx->ctes[name] = std::move(rel);
    for (const auto& name : added_defs) ctx->cte_defs.erase(name);
    for (auto& [name, def] : shadowed_defs) ctx->cte_defs[name] = def;
  };

  Relation source;
  if (stmt.from.kind == TableRef::Kind::kNone) {
    // SELECT without FROM: a single empty source row.
    source.rows.push_back({});
  } else {
    auto from_result = EvalFromChain(stmt, ctx, outer);
    if (!from_result.ok()) {
      restore();
      return from_result.status();
    }
    source = std::move(from_result).value();
  }

  // WHERE.
  std::vector<size_t> selected;
  for (size_t i = 0; i < source.rows.size(); ++i) {
    if (stmt.where) {
      Scope scope{&source, &source.rows[i], outer};
      auto cond = Eval(*stmt.where, scope, ctx);
      if (!cond.ok()) {
        restore();
        return cond.status();
      }
      if (!IsTruthy(*cond)) continue;
    }
    selected.push_back(i);
  }

  bool has_aggregates = false;
  for (const auto& item : stmt.items) {
    if (item.expr && ContainsAggregate(item.expr.get())) has_aggregates = true;
  }
  if (ContainsAggregate(stmt.having.get())) has_aggregates = true;
  const bool grouped = has_aggregates || !stmt.group_by.empty();

  Relation output;
  // Maps output row -> representative source row (for ORDER BY fallback).
  std::vector<size_t> output_source;

  auto project_name = [&](size_t idx) {
    return OutputName(stmt.items[idx], idx);
  };

  if (grouped) {
    // Partition `selected` into groups.
    std::vector<std::vector<size_t>> groups;
    if (stmt.group_by.empty()) {
      groups.push_back(selected);  // single (possibly empty) group
    } else {
      // Rows hash by their evaluated key tuple directly — no per-row
      // literal rendering or string concatenation.
      std::unordered_map<Row, size_t, sql::RowHash, sql::RowEq> group_index;
      Row key_row;
      for (size_t idx : selected) {
        Scope scope{&source, &source.rows[idx], outer};
        key_row.clear();
        key_row.reserve(stmt.group_by.size());
        for (const auto& g : stmt.group_by) {
          auto v = Eval(*g, scope, ctx);
          if (!v.ok()) {
            restore();
            return v.status();
          }
          key_row.push_back(std::move(*v));
        }
        auto [it, inserted] = group_index.emplace(key_row, groups.size());
        if (inserted) groups.emplace_back();
        groups[it->second].push_back(idx);
      }
    }

    // Output columns.
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (stmt.items[i].is_star) {
        restore();
        return Status::Unsupported("SELECT * with aggregates/GROUP BY");
      }
      output.cols.push_back({"", project_name(i)});
    }

    for (const auto& group : groups) {
      if (group.empty() && !stmt.group_by.empty()) continue;
      if (stmt.having) {
        auto hv = EvalAggregate(*stmt.having, source, group, outer, ctx);
        if (!hv.ok()) {
          restore();
          return hv.status();
        }
        if (!IsTruthy(*hv)) continue;
      }
      Row out_row;
      for (const auto& item : stmt.items) {
        // ROW_NUMBER() over an aggregated result numbers output groups
        // (the lateral-union combiner's induced candidate key, §4.2).
        if (item.expr->kind == Expr::Kind::kRowNumber) {
          out_row.push_back(
              Value::Int(static_cast<int64_t>(output.rows.size()) + 1));
          continue;
        }
        auto v = EvalAggregate(*item.expr, source, group, outer, ctx);
        if (!v.ok()) {
          restore();
          return v.status();
        }
        out_row.push_back(std::move(*v));
      }
      output.rows.push_back(std::move(out_row));
      output_source.push_back(group.empty() ? SIZE_MAX : group.front());
    }
  } else {
    // Plain projection. Expand stars against the source relation.
    struct OutCol {
      bool from_source;
      size_t source_index;        // when from_source
      const sql::SelectItem* item;  // when !from_source
      std::string name;
    };
    std::vector<OutCol> plan;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const auto& item = stmt.items[i];
      if (item.is_star) {
        for (size_t c = 0; c < source.cols.size(); ++c) {
          if (!item.star_qualifier.empty() &&
              source.cols[c].qualifier != item.star_qualifier) {
            continue;
          }
          if (source.cols[c].name == "__rowid") continue;  // hidden
          plan.push_back({true, c, nullptr, source.cols[c].name});
        }
      } else {
        plan.push_back({false, 0, &item, project_name(i)});
      }
    }
    for (const auto& p : plan) output.cols.push_back({"", p.name});

    output.rows.reserve(selected.size());
    output_source.reserve(selected.size());
    int64_t row_number = 0;
    for (size_t idx : selected) {
      Scope scope{&source, &source.rows[idx], outer};
      ++row_number;
      Row out_row;
      out_row.reserve(plan.size());
      bool failed = false;
      for (const auto& p : plan) {
        if (p.from_source) {
          out_row.push_back(source.rows[idx][p.source_index]);
          continue;
        }
        if (p.item->expr->kind == Expr::Kind::kRowNumber) {
          out_row.push_back(Value::Int(row_number));
          continue;
        }
        auto v = Eval(*p.item->expr, scope, ctx);
        if (!v.ok()) {
          restore();
          return v.status();
        }
        out_row.push_back(std::move(*v));
        (void)failed;
      }
      output.rows.push_back(std::move(out_row));
      output_source.push_back(idx);
    }
  }

  // DISTINCT: dedup on the row values themselves (first occurrence wins,
  // preserving output order).
  if (stmt.distinct) {
    std::unordered_set<Row, sql::RowHash, sql::RowEq> seen;
    seen.reserve(output.rows.size());
    Relation dedup;
    dedup.cols = output.cols;
    dedup.rows.reserve(output.rows.size());
    std::vector<size_t> dedup_source;
    for (size_t i = 0; i < output.rows.size(); ++i) {
      if (seen.insert(output.rows[i]).second) {
        dedup.rows.push_back(std::move(output.rows[i]));
        dedup_source.push_back(output_source[i]);
      }
    }
    output = std::move(dedup);
    output_source = std::move(dedup_source);
  }

  // ORDER BY: resolve against output columns first, then (for non-grouped
  // queries) fall back to the source row.
  if (!stmt.order_by.empty() && !output.rows.empty()) {
    std::vector<size_t> order(output.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;

    // Precompute sort keys.
    std::vector<Row> keys(output.rows.size());
    for (size_t i = 0; i < output.rows.size(); ++i) {
      keys[i].reserve(stmt.order_by.size());
      for (const auto& ob : stmt.order_by) {
        Scope out_scope{&output, &output.rows[i], nullptr};
        auto v = Eval(*ob.expr, out_scope, ctx);
        if (!v.ok() && !grouped && output_source[i] != SIZE_MAX) {
          Scope src_scope{&source, &source.rows[output_source[i]], outer};
          v = Eval(*ob.expr, src_scope, ctx);
        }
        if (!v.ok()) {
          restore();
          return v.status();
        }
        keys[i].push_back(std::move(*v));
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < stmt.order_by.size(); ++k) {
        int c = keys[a][k].Compare(keys[b][k]);
        if (c != 0) return stmt.order_by[k].desc ? c > 0 : c < 0;
      }
      return false;
    });
    Relation sorted;
    sorted.cols = output.cols;
    sorted.rows.reserve(order.size());
    for (size_t i : order) sorted.rows.push_back(std::move(output.rows[i]));
    output = std::move(sorted);
  }

  // LIMIT.
  if (stmt.limit.has_value() &&
      output.rows.size() > static_cast<size_t>(*stmt.limit)) {
    output.rows.resize(static_cast<size_t>(*stmt.limit));
  }

  restore();
  return output;
}

Result<Value> Executor::EvalAggregate(const Expr& expr, const Relation& rel,
                                      const std::vector<size_t>& group_rows,
                                      const Scope* outer, Context* ctx) {
  switch (expr.kind) {
    case Expr::Kind::kFuncCall: {
      if (IsAggregateName(expr.func_name)) {
        const std::string& fn = expr.func_name;
        if (fn == "count") {
          if (!expr.children.empty() &&
              expr.children[0]->kind != Expr::Kind::kStar) {
            int64_t n = 0;
            for (size_t idx : group_rows) {
              Scope scope{&rel, &rel.rows[idx], outer};
              CHRONO_ASSIGN_OR_RETURN(Value v,
                                      Eval(*expr.children[0], scope, ctx));
              if (!v.is_null()) ++n;
            }
            return Value::Int(n);
          }
          return Value::Int(static_cast<int64_t>(group_rows.size()));
        }
        // sum/avg/min/max over child expression.
        if (expr.children.empty()) {
          return Status::InvalidArgument(fn + " requires an argument");
        }
        bool any = false;
        double sum = 0;
        Value min_v;
        Value max_v;
        int64_t n = 0;
        bool all_int = true;
        for (size_t idx : group_rows) {
          Scope scope{&rel, &rel.rows[idx], outer};
          CHRONO_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], scope, ctx));
          if (v.is_null()) continue;
          if (!any) {
            min_v = v;
            max_v = v;
          } else {
            if (v.Compare(min_v) < 0) min_v = v;
            if (v.Compare(max_v) > 0) max_v = v;
          }
          if (v.type() != Value::Type::kString) {
            sum += v.AsDouble();
            if (v.type() != Value::Type::kInt) all_int = false;
          }
          ++n;
          any = true;
        }
        if (fn == "min") return any ? min_v : Value::Null();
        if (fn == "max") return any ? max_v : Value::Null();
        if (!any) return Value::Null();
        if (fn == "sum") {
          if (all_int) return Value::Int(static_cast<int64_t>(sum));
          return Value::Double(sum);
        }
        // avg
        return Value::Double(sum / static_cast<double>(n));
      }
      // Scalar function over aggregated children.
      std::vector<Value> args;
      for (const auto& c : expr.children) {
        CHRONO_ASSIGN_OR_RETURN(Value v,
                                EvalAggregate(*c, rel, group_rows, outer, ctx));
        args.push_back(std::move(v));
      }
      // Re-dispatch through Eval's scalar function logic via a literal tree.
      Expr call;
      call.kind = Expr::Kind::kFuncCall;
      call.func_name = expr.func_name;
      for (auto& a : args) call.children.push_back(Expr::MakeLiteral(std::move(a)));
      Scope empty;
      return Eval(call, empty, ctx);
    }
    case Expr::Kind::kBinary: {
      if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
        CHRONO_ASSIGN_OR_RETURN(
            Value lhs, EvalAggregate(*expr.children[0], rel, group_rows, outer, ctx));
        CHRONO_ASSIGN_OR_RETURN(
            Value rhs, EvalAggregate(*expr.children[1], rel, group_rows, outer, ctx));
        bool l = IsTruthy(lhs);
        bool r = IsTruthy(rhs);
        return Value::Int((expr.bin_op == BinOp::kAnd) ? (l && r) : (l || r));
      }
      CHRONO_ASSIGN_OR_RETURN(
          Value lhs, EvalAggregate(*expr.children[0], rel, group_rows, outer, ctx));
      CHRONO_ASSIGN_OR_RETURN(
          Value rhs, EvalAggregate(*expr.children[1], rel, group_rows, outer, ctx));
      Expr op;
      op.kind = Expr::Kind::kBinary;
      op.bin_op = expr.bin_op;
      op.children.push_back(Expr::MakeLiteral(std::move(lhs)));
      op.children.push_back(Expr::MakeLiteral(std::move(rhs)));
      Scope empty;
      return Eval(op, empty, ctx);
    }
    case Expr::Kind::kUnary: {
      CHRONO_ASSIGN_OR_RETURN(
          Value v, EvalAggregate(*expr.children[0], rel, group_rows, outer, ctx));
      Expr op;
      op.kind = Expr::Kind::kUnary;
      op.un_op = expr.un_op;
      op.children.push_back(Expr::MakeLiteral(std::move(v)));
      Scope empty;
      return Eval(op, empty, ctx);
    }
    default: {
      // Non-aggregate leaf: evaluate against the group's first row (it must
      // be functionally dependent on the group key, as in standard SQL).
      if (group_rows.empty()) {
        Scope empty;
        auto v = Eval(expr, empty, ctx);
        if (v.ok()) return v;
        return Value::Null();
      }
      Scope scope{&rel, &rel.rows[group_rows.front()], outer};
      return Eval(expr, scope, ctx);
    }
  }
}

Result<Value> Executor::Eval(const Expr& expr, const Scope& scope,
                             Context* ctx) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kParam:
      return Status::InvalidArgument(
          "unbound parameter ? in executable statement");
    case Expr::Kind::kColumnRef: {
      for (const Scope* s = &scope; s != nullptr; s = s->outer) {
        if (s->rel == nullptr || s->row == nullptr) continue;
        int idx = s->rel->Find(expr.table, expr.column);
        if (idx >= 0) return (*s->row)[static_cast<size_t>(idx)];
      }
      return Status::NotFound("column not found: " +
                              (expr.table.empty() ? expr.column
                                                  : expr.table + "." + expr.column));
    }
    case Expr::Kind::kUnary: {
      CHRONO_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], scope, ctx));
      if (expr.un_op == UnOp::kNot) return Value::Int(IsTruthy(v) ? 0 : 1);
      if (v.is_null()) return Value::Null();
      if (v.type() == Value::Type::kInt) return Value::Int(-v.AsInt());
      return Value::Double(-v.AsDouble());
    }
    case Expr::Kind::kBinary: {
      if (expr.bin_op == BinOp::kAnd) {
        CHRONO_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.children[0], scope, ctx));
        if (!IsTruthy(lhs)) return Value::Int(0);
        CHRONO_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.children[1], scope, ctx));
        return Value::Int(IsTruthy(rhs) ? 1 : 0);
      }
      if (expr.bin_op == BinOp::kOr) {
        CHRONO_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.children[0], scope, ctx));
        if (IsTruthy(lhs)) return Value::Int(1);
        CHRONO_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.children[1], scope, ctx));
        return Value::Int(IsTruthy(rhs) ? 1 : 0);
      }
      CHRONO_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.children[0], scope, ctx));
      CHRONO_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.children[1], scope, ctx));
      switch (expr.bin_op) {
        case BinOp::kEq:
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          return Value::Int(lhs.EqualsSql(rhs) ? 1 : 0);
        case BinOp::kNe:
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          return Value::Int(lhs.EqualsSql(rhs) ? 0 : 1);
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          int c = lhs.Compare(rhs);
          bool r = false;
          if (expr.bin_op == BinOp::kLt) r = c < 0;
          if (expr.bin_op == BinOp::kLe) r = c <= 0;
          if (expr.bin_op == BinOp::kGt) r = c > 0;
          if (expr.bin_op == BinOp::kGe) r = c >= 0;
          return Value::Int(r ? 1 : 0);
        }
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv: {
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          if (lhs.type() == Value::Type::kString ||
              rhs.type() == Value::Type::kString) {
            return Status::ExecutionError("arithmetic on string value");
          }
          bool ints = lhs.type() == Value::Type::kInt &&
                      rhs.type() == Value::Type::kInt;
          double a = lhs.AsDouble();
          double b = rhs.AsDouble();
          switch (expr.bin_op) {
            case BinOp::kAdd:
              return ints ? Value::Int(lhs.AsInt() + rhs.AsInt())
                          : Value::Double(a + b);
            case BinOp::kSub:
              return ints ? Value::Int(lhs.AsInt() - rhs.AsInt())
                          : Value::Double(a - b);
            case BinOp::kMul:
              return ints ? Value::Int(lhs.AsInt() * rhs.AsInt())
                          : Value::Double(a * b);
            case BinOp::kDiv:
              if (b == 0) return Status::ExecutionError("division by zero");
              if (ints) return Value::Int(lhs.AsInt() / rhs.AsInt());
              return Value::Double(a / b);
            default:
              break;
          }
          return Status::Internal("unreachable arithmetic");
        }
        default:
          return Status::Internal("unreachable binop");
      }
    }
    case Expr::Kind::kFuncCall: {
      if (IsAggregateName(expr.func_name)) {
        return Status::ExecutionError("aggregate " + expr.func_name +
                                      " in row-wise context");
      }
      std::vector<Value> args;
      for (const auto& c : expr.children) {
        CHRONO_ASSIGN_OR_RETURN(Value v, Eval(*c, scope, ctx));
        args.push_back(std::move(v));
      }
      const std::string& fn = expr.func_name;
      if (fn == "concat") {
        std::string out;
        for (const auto& a : args) {
          if (!a.is_null()) out += a.ToDisplayString();
        }
        return Value::String(std::move(out));
      }
      if (fn == "abs" && args.size() == 1) {
        if (args[0].is_null()) return Value::Null();
        if (args[0].type() == Value::Type::kInt) {
          return Value::Int(std::abs(args[0].AsInt()));
        }
        return Value::Double(std::fabs(args[0].AsDouble()));
      }
      if (fn == "coalesce") {
        for (auto& a : args) {
          if (!a.is_null()) return std::move(a);
        }
        return Value::Null();
      }
      if (fn == "length" && args.size() == 1) {
        if (args[0].is_null()) return Value::Null();
        return Value::Int(static_cast<int64_t>(args[0].ToDisplayString().size()));
      }
      if ((fn == "upper" || fn == "lower") && args.size() == 1) {
        if (args[0].is_null()) return Value::Null();
        std::string s = args[0].ToDisplayString();
        for (char& c : s) {
          c = fn == "upper"
                  ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                  : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        return Value::String(std::move(s));
      }
      if (fn == "substr" && (args.size() == 2 || args.size() == 3)) {
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        const std::string s = args[0].ToDisplayString();
        // SQL substr is 1-based; clamp to the string bounds.
        int64_t start = args[1].AsInt();
        if (start < 1) start = 1;
        if (start > static_cast<int64_t>(s.size())) return Value::String("");
        size_t from = static_cast<size_t>(start - 1);
        size_t count = std::string::npos;
        if (args.size() == 3) {
          if (args[2].is_null()) return Value::Null();
          int64_t n = args[2].AsInt();
          count = n <= 0 ? 0 : static_cast<size_t>(n);
        }
        return Value::String(s.substr(from, count));
      }
      if (fn == "mod" && args.size() == 2) {
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        int64_t d = args[1].AsInt();
        if (d == 0) return Status::ExecutionError("mod by zero");
        return Value::Int(args[0].AsInt() % d);
      }
      if ((fn == "round" || fn == "floor" || fn == "ceil") &&
          args.size() == 1) {
        if (args[0].is_null()) return Value::Null();
        if (args[0].type() == Value::Type::kString) {
          return Status::ExecutionError(fn + " on string value");
        }
        double d = args[0].AsDouble();
        if (fn == "round") return Value::Int(static_cast<int64_t>(std::llround(d)));
        if (fn == "floor") return Value::Int(static_cast<int64_t>(std::floor(d)));
        return Value::Int(static_cast<int64_t>(std::ceil(d)));
      }
      return Status::Unsupported("unknown function " + fn);
    }
    case Expr::Kind::kStar:
      return Status::ExecutionError("* outside COUNT()");
    case Expr::Kind::kIsNull: {
      CHRONO_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], scope, ctx));
      bool null = v.is_null();
      return Value::Int((expr.is_not ? !null : null) ? 1 : 0);
    }
    case Expr::Kind::kInList: {
      CHRONO_ASSIGN_OR_RETURN(Value needle, Eval(*expr.children[0], scope, ctx));
      if (needle.is_null()) return Value::Null();
      bool found = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        CHRONO_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[i], scope, ctx));
        if (needle.EqualsSql(v)) {
          found = true;
          break;
        }
      }
      return Value::Int((expr.is_not ? !found : found) ? 1 : 0);
    }
    case Expr::Kind::kRowNumber:
      return Status::ExecutionError(
          "ROW_NUMBER() outside a projection context");
    case Expr::Kind::kCase: {
      size_t pairs =
          (expr.is_not ? expr.children.size() - 1 : expr.children.size()) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        CHRONO_ASSIGN_OR_RETURN(Value cond,
                                Eval(*expr.children[2 * i], scope, ctx));
        if (IsTruthy(cond)) return Eval(*expr.children[2 * i + 1], scope, ctx);
      }
      if (expr.is_not) return Eval(*expr.children.back(), scope, ctx);
      return Value::Null();
    }
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace chrono::db
