#ifndef CHRONOCACHE_DB_TABLE_H_
#define CHRONOCACHE_DB_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sql/result_set.h"
#include "sql/value.h"

namespace chrono::db {

/// \brief Column definition. The engine is dynamically typed at execution
/// time; declared types document intent and validate inserts.
struct ColumnDef {
  std::string name;
  sql::Value::Type type = sql::Value::Type::kInt;
};

/// \brief An in-memory heap table with stable row slots, monotonically
/// assigned rowids (exposed to SQL as the hidden `__rowid` column — the
/// CTE-join combiner uses them as candidate keys, §4.1), and incrementally
/// maintained per-column hash indexes for point lookups.
class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int ColumnIndex(const std::string& name) const;

  /// Appends a row; returns its rowid. Row arity must match the schema.
  Result<int64_t> Insert(sql::Row values);

  /// Number of live rows.
  size_t row_count() const { return live_count_; }

  /// Monotone version, bumped on every mutation; used by scans/tests.
  uint64_t version() const { return version_; }

  struct Slot {
    int64_t rowid;
    bool live;
    sql::Row values;
  };
  /// All slots (including dead ones — check `live`). Iteration order is
  /// insertion order, which keeps query results deterministic.
  const std::vector<Slot>& slots() const { return slots_; }

  /// Updates column values of the slot at `slot_index` (must be live).
  void UpdateSlot(size_t slot_index,
                  const std::vector<std::pair<int, sql::Value>>& changes);

  /// Tombstones the slot at `slot_index`.
  void DeleteSlot(size_t slot_index);

  /// Returns slot indexes whose `column` equals `key` (exact SQL equality).
  /// Builds the index on first use; maintained incrementally afterwards.
  const std::vector<size_t>& Probe(int column, const sql::Value& key);

  /// True if an index exists for the column (test/introspection hook).
  bool HasIndex(int column) const { return indexes_.count(column) > 0; }

  /// Builds the hash index for every column now. Probe() otherwise builds
  /// indexes lazily — a mutation — so concurrent read-only execution (the
  /// runtime's reader-locked path) warms all indexes up front and keeps
  /// reads genuinely side-effect-free.
  void WarmIndexes();

 private:
  // Value-keyed hash index: no per-probe key materialisation. ValueHash /
  // ValueKeyEq unify int/double keys (matching Value::EqualsSql) and hash
  // exact bit patterns, so near-equal doubles that the old
  // std::to_string-based key truncated to one bucket stay distinct.
  using Index = std::unordered_map<sql::Value, std::vector<size_t>,
                                   sql::ValueHash, sql::ValueKeyEq>;

  void EnsureIndex(int column);
  void IndexErase(Index* index, const sql::Value& key, size_t slot_index);

  std::string name_;
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, int> column_index_;
  std::vector<Slot> slots_;
  size_t live_count_ = 0;
  int64_t next_rowid_ = 1;
  uint64_t version_ = 0;
  std::unordered_map<int, Index> indexes_;
  std::vector<size_t> empty_;
};

}  // namespace chrono::db

#endif  // CHRONOCACHE_DB_TABLE_H_
