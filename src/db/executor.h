#ifndef CHRONOCACHE_DB_EXECUTOR_H_
#define CHRONOCACHE_DB_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/catalog.h"
#include "sql/ast.h"
#include "sql/result_set.h"

namespace chrono::db {

/// \brief Execution statistics used by the simulated latency model: the
/// database's service time for a query is a function of rows touched.
struct ExecStats {
  uint64_t rows_scanned = 0;

  void Add(const ExecStats& other) { rows_scanned += other.rows_scanned; }
};

/// \brief Outcome of executing one statement.
struct ExecOutcome {
  sql::ResultSet result;                  // SELECT result (empty for DML)
  int64_t affected_rows = 0;              // DML row count
  ExecStats stats;
  std::vector<std::string> tables_read;    // base relations read
  std::vector<std::string> tables_written; // base relations mutated
};

/// \brief Evaluates parsed SQL statements against a Catalog. Supports the
/// SQL subset in sql/parser.h: SPJ queries with inner/left/cross joins,
/// LATERAL derived tables, CTEs, aggregates + GROUP BY/HAVING, DISTINCT,
/// ORDER BY, LIMIT, ROW_NUMBER() OVER (), and DML. Base-table point lookups
/// and equi-joins use hash indexes / hash joins automatically.
class Executor {
 public:
  explicit Executor(Catalog* catalog) : catalog_(catalog) {}

  /// Executes a fully bound statement (kParam nodes are an error).
  Result<ExecOutcome> Execute(const sql::Statement& stmt);

  /// Convenience: SELECT-only entry point.
  Result<ExecOutcome> ExecuteSelect(const sql::SelectStmt& stmt);

 private:
  struct Relation;
  struct Scope;
  struct Context;

  Result<Relation> EvalSelect(const sql::SelectStmt& stmt, Context* ctx,
                              const Scope* outer);
  Result<Relation> EvalFromChain(const sql::SelectStmt& stmt, Context* ctx,
                                 const Scope* outer);
  Result<Relation> EvalTableRef(const sql::TableRef& ref, Context* ctx,
                                const Scope* outer,
                                const std::vector<const sql::Expr*>& filters);
  Result<sql::Value> Eval(const sql::Expr& expr, const Scope& scope,
                          Context* ctx);
  Result<sql::Value> EvalAggregate(const sql::Expr& expr,
                                   const Relation& rel,
                                   const std::vector<size_t>& group_rows,
                                   const Scope* outer, Context* ctx);

  Catalog* catalog_;
};

}  // namespace chrono::db

#endif  // CHRONOCACHE_DB_EXECUTOR_H_
