#include "db/database.h"

#include "sql/parser.h"

namespace chrono::db {

Result<ExecOutcome> Database::ExecuteText(std::string_view sql) {
  CHRONO_ASSIGN_OR_RETURN(std::unique_ptr<sql::Statement> stmt,
                          sql::Parse(sql));
  ++statements_executed_;
  return executor_.Execute(*stmt);
}

}  // namespace chrono::db
