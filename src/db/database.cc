#include "db/database.h"

#include <chrono>

#include "sql/parser.h"

namespace chrono::db {

namespace {

const char* StatementKindName(sql::Statement::Kind kind) {
  switch (kind) {
    case sql::Statement::Kind::kSelect:
      return "select";
    case sql::Statement::Kind::kInsert:
      return "insert";
    case sql::Statement::Kind::kUpdate:
      return "update";
    case sql::Statement::Kind::kDelete:
      return "delete";
    case sql::Statement::Kind::kCreateTable:
      return "create_table";
  }
  return "unknown";
}

}  // namespace

Result<ExecOutcome> Database::Execute(const sql::Statement& stmt) {
  statements_executed_.fetch_add(1, std::memory_order_relaxed);
  obs::Histogram* hist =
      exec_latency_[static_cast<int>(stmt.kind)].load(
          std::memory_order_relaxed);
  if (hist == nullptr) return executor_.Execute(stmt);
  auto t0 = std::chrono::steady_clock::now();
  Result<ExecOutcome> outcome = executor_.Execute(stmt);
  auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - t0);
  hist->Record(dt.count() < 0 ? 0 : static_cast<uint64_t>(dt.count()));
  return outcome;
}

void Database::AttachMetrics(obs::MetricsRegistry* registry) {
  for (int k = 0; k < kStatementKinds; ++k) {
    exec_latency_[k].store(
        registry->GetHistogram(
            "chrono_db_statement_latency_ns",
            "Database statement execution latency by statement kind "
            "(wall-clock nanoseconds, executor time only)",
            {{"kind", StatementKindName(static_cast<sql::Statement::Kind>(k))}}),
        std::memory_order_relaxed);
  }
}

Result<std::shared_ptr<const sql::Statement>> Database::ParseCached(
    std::string_view sql) {
  // Transparent string_view lookup would save the key materialisation on
  // hits, but std::unordered_map heterogeneous lookup needs is_transparent
  // hashers; one std::string construction per query is cheap next to the
  // parse it avoids.
  std::string key(sql);
  if (const auto* cached = statement_cache_.Get(key)) return *cached;
  CHRONO_ASSIGN_OR_RETURN(std::unique_ptr<sql::Statement> stmt,
                          sql::Parse(sql));
  std::shared_ptr<const sql::Statement> shared = std::move(stmt);
  return *statement_cache_.Put(std::move(key), std::move(shared));
}

Result<ExecOutcome> Database::ExecuteText(std::string_view sql) {
  CHRONO_ASSIGN_OR_RETURN(std::shared_ptr<const sql::Statement> stmt,
                          ParseCached(sql));
  statements_executed_.fetch_add(1, std::memory_order_relaxed);
  return executor_.Execute(*stmt);
}

void Database::WarmIndexes() {
  for (const std::string& name : catalog_.table_names()) {
    if (Table* table = catalog_.FindTable(name)) table->WarmIndexes();
  }
}

}  // namespace chrono::db
