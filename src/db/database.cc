#include "db/database.h"

#include "sql/parser.h"

namespace chrono::db {

Result<std::shared_ptr<const sql::Statement>> Database::ParseCached(
    std::string_view sql) {
  // Transparent string_view lookup would save the key materialisation on
  // hits, but std::unordered_map heterogeneous lookup needs is_transparent
  // hashers; one std::string construction per query is cheap next to the
  // parse it avoids.
  std::string key(sql);
  if (const auto* cached = statement_cache_.Get(key)) return *cached;
  CHRONO_ASSIGN_OR_RETURN(std::unique_ptr<sql::Statement> stmt,
                          sql::Parse(sql));
  std::shared_ptr<const sql::Statement> shared = std::move(stmt);
  return *statement_cache_.Put(std::move(key), std::move(shared));
}

Result<ExecOutcome> Database::ExecuteText(std::string_view sql) {
  CHRONO_ASSIGN_OR_RETURN(std::shared_ptr<const sql::Statement> stmt,
                          ParseCached(sql));
  statements_executed_.fetch_add(1, std::memory_order_relaxed);
  return executor_.Execute(*stmt);
}

void Database::WarmIndexes() {
  for (const std::string& name : catalog_.table_names()) {
    if (Table* table = catalog_.FindTable(name)) table->WarmIndexes();
  }
}

}  // namespace chrono::db
