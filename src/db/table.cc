#include "db/table.h"

#include <algorithm>
#include <cassert>

namespace chrono::db {

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    column_index_[columns_[i].name] = static_cast<int>(i);
  }
}

int Table::ColumnIndex(const std::string& name) const {
  auto it = column_index_.find(name);
  return it == column_index_.end() ? -1 : it->second;
}

Result<int64_t> Table::Insert(sql::Row values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "insert into " + name_ + ": expected " +
        std::to_string(columns_.size()) + " values, got " +
        std::to_string(values.size()));
  }
  int64_t rowid = next_rowid_++;
  size_t slot_index = slots_.size();
  slots_.push_back(Slot{rowid, true, std::move(values)});
  ++live_count_;
  ++version_;
  for (auto& [col, index] : indexes_) {
    index[IndexKey(slots_[slot_index].values[static_cast<size_t>(col)])]
        .push_back(slot_index);
  }
  return rowid;
}

void Table::UpdateSlot(size_t slot_index,
                       const std::vector<std::pair<int, sql::Value>>& changes) {
  assert(slot_index < slots_.size() && slots_[slot_index].live);
  Slot& slot = slots_[slot_index];
  for (const auto& [col, value] : changes) {
    auto idx_it = indexes_.find(col);
    if (idx_it != indexes_.end()) {
      IndexErase(&idx_it->second, IndexKey(slot.values[static_cast<size_t>(col)]),
                 slot_index);
      idx_it->second[IndexKey(value)].push_back(slot_index);
    }
    slot.values[static_cast<size_t>(col)] = value;
  }
  ++version_;
}

void Table::DeleteSlot(size_t slot_index) {
  assert(slot_index < slots_.size() && slots_[slot_index].live);
  Slot& slot = slots_[slot_index];
  for (auto& [col, index] : indexes_) {
    IndexErase(&index, IndexKey(slot.values[static_cast<size_t>(col)]),
               slot_index);
  }
  slot.live = false;
  --live_count_;
  ++version_;
}

const std::vector<size_t>& Table::Probe(int column, const sql::Value& key) {
  EnsureIndex(column);
  const Index& index = indexes_[column];
  auto it = index.find(IndexKey(key));
  if (it == index.end()) return empty_;
  return it->second;
}

std::string Table::IndexKey(const sql::Value& v) {
  // Normalise numerically equal ints/doubles to one key so that index
  // probes agree with Value::EqualsSql.
  if (v.type() == sql::Value::Type::kDouble) {
    double d = v.AsDouble();
    int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) == d) return "i:" + std::to_string(i);
    return "d:" + std::to_string(d);
  }
  if (v.type() == sql::Value::Type::kInt) {
    return "i:" + std::to_string(v.AsInt());
  }
  if (v.type() == sql::Value::Type::kString) return "s:" + v.AsString();
  return "null";
}

void Table::EnsureIndex(int column) {
  if (indexes_.count(column) > 0) return;
  Index index;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) continue;
    index[IndexKey(slots_[i].values[static_cast<size_t>(column)])].push_back(i);
  }
  indexes_.emplace(column, std::move(index));
}

void Table::IndexErase(Index* index, const std::string& key,
                       size_t slot_index) {
  auto it = index->find(key);
  if (it == index->end()) return;
  auto& vec = it->second;
  vec.erase(std::remove(vec.begin(), vec.end(), slot_index), vec.end());
  if (vec.empty()) index->erase(it);
}

}  // namespace chrono::db
