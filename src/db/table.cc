#include "db/table.h"

#include <algorithm>
#include <cassert>

namespace chrono::db {

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    column_index_[columns_[i].name] = static_cast<int>(i);
  }
}

int Table::ColumnIndex(const std::string& name) const {
  auto it = column_index_.find(name);
  return it == column_index_.end() ? -1 : it->second;
}

Result<int64_t> Table::Insert(sql::Row values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "insert into " + name_ + ": expected " +
        std::to_string(columns_.size()) + " values, got " +
        std::to_string(values.size()));
  }
  int64_t rowid = next_rowid_++;
  size_t slot_index = slots_.size();
  slots_.push_back(Slot{rowid, true, std::move(values)});
  ++live_count_;
  ++version_;
  for (auto& [col, index] : indexes_) {
    index[slots_[slot_index].values[static_cast<size_t>(col)]].push_back(
        slot_index);
  }
  return rowid;
}

void Table::UpdateSlot(size_t slot_index,
                       const std::vector<std::pair<int, sql::Value>>& changes) {
  assert(slot_index < slots_.size() && slots_[slot_index].live);
  Slot& slot = slots_[slot_index];
  for (const auto& [col, value] : changes) {
    auto idx_it = indexes_.find(col);
    if (idx_it != indexes_.end()) {
      IndexErase(&idx_it->second, slot.values[static_cast<size_t>(col)],
                 slot_index);
      idx_it->second[value].push_back(slot_index);
    }
    slot.values[static_cast<size_t>(col)] = value;
  }
  ++version_;
}

void Table::DeleteSlot(size_t slot_index) {
  assert(slot_index < slots_.size() && slots_[slot_index].live);
  Slot& slot = slots_[slot_index];
  for (auto& [col, index] : indexes_) {
    IndexErase(&index, slot.values[static_cast<size_t>(col)], slot_index);
  }
  slot.live = false;
  --live_count_;
  ++version_;
}

const std::vector<size_t>& Table::Probe(int column, const sql::Value& key) {
  EnsureIndex(column);
  const Index& index = indexes_.find(column)->second;
  auto it = index.find(key);
  if (it == index.end()) return empty_;
  return it->second;
}

void Table::WarmIndexes() {
  for (size_t c = 0; c < columns_.size(); ++c) {
    EnsureIndex(static_cast<int>(c));
  }
}

void Table::EnsureIndex(int column) {
  if (indexes_.count(column) > 0) return;
  Index index;
  index.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) continue;
    index[slots_[i].values[static_cast<size_t>(column)]].push_back(i);
  }
  indexes_.emplace(column, std::move(index));
}

void Table::IndexErase(Index* index, const sql::Value& key,
                       size_t slot_index) {
  auto it = index->find(key);
  if (it == index->end()) return;
  auto& vec = it->second;
  vec.erase(std::remove(vec.begin(), vec.end(), slot_index), vec.end());
  if (vec.empty()) index->erase(it);
}

}  // namespace chrono::db
