#ifndef CHRONOCACHE_DB_CATALOG_H_
#define CHRONOCACHE_DB_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/table.h"

namespace chrono::db {

/// \brief Owns the database's tables and assigns each relation a dense
/// integer id. Relation ids index the version vectors that ChronoCache's
/// session-semantics layer maintains (§5.2 gives Vd dimension = number of
/// relations in the schema).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; fails if the name is taken.
  Result<Table*> CreateTable(const std::string& name,
                             std::vector<ColumnDef> columns);

  /// Returns the table or nullptr.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// Dense id of a relation, or -1 if unknown.
  int RelationId(const std::string& name) const;

  size_t table_count() const { return tables_.size(); }
  const std::vector<std::string>& table_names() const { return names_; }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, int> relation_ids_;
  std::vector<std::string> names_;
};

}  // namespace chrono::db

#endif  // CHRONOCACHE_DB_CATALOG_H_
