#include "db/catalog.h"

namespace chrono::db {

Result<Table*> Catalog::CreateTable(const std::string& name,
                                    std::vector<ColumnDef> columns) {
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(columns));
  Table* ptr = table.get();
  relation_ids_[name] = static_cast<int>(names_.size());
  names_.push_back(name);
  tables_.emplace(name, std::move(table));
  return ptr;
}

Table* Catalog::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

int Catalog::RelationId(const std::string& name) const {
  auto it = relation_ids_.find(name);
  return it == relation_ids_.end() ? -1 : it->second;
}

}  // namespace chrono::db
