#include "workloads/workload.h"

#include <cassert>

namespace chrono::workloads {

std::string Lit(const sql::Value& v) { return v.ToSqlLiteral(); }
std::string Lit(int64_t v) { return std::to_string(v); }
std::string Lit(const std::string& v) {
  return sql::Value::String(v).ToSqlLiteral();
}

std::string Subst(const std::string& pattern,
                  const std::vector<std::string>& args) {
  std::string out;
  out.reserve(pattern.size() + 16);
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == '$' && i + 1 < pattern.size() &&
        pattern[i + 1] >= '0' && pattern[i + 1] <= '9') {
      size_t idx = static_cast<size_t>(pattern[i + 1] - '0');
      assert(idx < args.size());
      out += args[idx];
      ++i;
      continue;
    }
    out += pattern[i];
  }
  return out;
}

LoopTransaction::LoopTransaction(const char* name, std::string driver_sql,
                                 std::vector<PerRowQuery> per_row,
                                 std::vector<std::string> loop_constants,
                                 std::vector<std::string> trailing)
    : name_(name),
      driver_sql_(std::move(driver_sql)),
      per_row_(std::move(per_row)),
      loop_constants_(std::move(loop_constants)),
      trailing_(std::move(trailing)) {}

std::optional<std::string> LoopTransaction::Next(const sql::ResultSet* prev) {
  switch (phase_) {
    case Phase::kDriver:
      phase_ = Phase::kLoop;
      return driver_sql_;
    case Phase::kLoop: {
      if (row_ == 0 && query_in_row_ == 0) {
        // `prev` is the driver's result set.
        if (prev != nullptr) driver_result_ = *prev;
      }
      while (row_ < driver_result_.row_count()) {
        if (query_in_row_ >= per_row_.size()) {
          query_in_row_ = 0;
          ++row_;
          continue;
        }
        const PerRowQuery& q = per_row_[query_in_row_];
        ++query_in_row_;
        std::vector<std::string> args;
        bool ok = true;
        for (const auto& col : q.driver_columns) {
          int idx = driver_result_.ColumnIndex(col);
          if (idx < 0) {
            ok = false;
            break;
          }
          args.push_back(
              Lit(driver_result_.row(row_)[static_cast<size_t>(idx)]));
        }
        if (!ok) continue;
        for (const auto& c : loop_constants_) args.push_back(c);
        return Subst(q.pattern, args);
      }
      phase_ = Phase::kTrailing;
      [[fallthrough]];
    }
    case Phase::kTrailing:
      if (trailing_index_ < trailing_.size()) {
        return trailing_[trailing_index_++];
      }
      phase_ = Phase::kDone;
      return std::nullopt;
    case Phase::kDone:
      return std::nullopt;
  }
  return std::nullopt;
}

NestedLoopTransaction::NestedLoopTransaction(
    const char* name, std::string driver_sql,
    LoopTransaction::PerRowQuery level1,
    std::vector<LoopTransaction::PerRowQuery> level2,
    std::vector<std::string> loop_constants)
    : name_(name),
      driver_sql_(std::move(driver_sql)),
      level1_(std::move(level1)),
      level2_(std::move(level2)),
      loop_constants_(std::move(loop_constants)) {}

std::optional<std::string> NestedLoopTransaction::IssueLevel1() {
  while (driver_row_ < driver_result_.row_count()) {
    std::vector<std::string> args;
    bool ok = true;
    for (const auto& col : level1_.driver_columns) {
      int idx = driver_result_.ColumnIndex(col);
      if (idx < 0) {
        ok = false;
        break;
      }
      args.push_back(
          Lit(driver_result_.row(driver_row_)[static_cast<size_t>(idx)]));
    }
    if (!ok) {
      ++driver_row_;
      continue;
    }
    for (const auto& c : loop_constants_) args.push_back(c);
    phase_ = Phase::kLevel2;
    level1_row_ = 0;
    level2_query_ = 0;
    return Subst(level1_.pattern, args);
  }
  phase_ = Phase::kDone;
  return std::nullopt;
}

std::optional<std::string> NestedLoopTransaction::AdvanceLevel2() {
  while (level1_row_ < level1_result_.row_count()) {
    if (level2_query_ >= level2_.size()) {
      level2_query_ = 0;
      ++level1_row_;
      continue;
    }
    const auto& q = level2_[level2_query_];
    ++level2_query_;
    std::vector<std::string> args;
    bool ok = true;
    for (const auto& col : q.driver_columns) {
      int idx = level1_result_.ColumnIndex(col);
      if (idx < 0) {
        ok = false;
        break;
      }
      args.push_back(
          Lit(level1_result_.row(level1_row_)[static_cast<size_t>(idx)]));
    }
    if (!ok) continue;
    for (const auto& c : loop_constants_) args.push_back(c);
    return Subst(q.pattern, args);
  }
  // This level-1 row's inner loop is exhausted; move to the next.
  ++driver_row_;
  phase_ = Phase::kLevel1;
  return IssueLevel1();
}

std::optional<std::string> NestedLoopTransaction::Next(
    const sql::ResultSet* prev) {
  switch (phase_) {
    case Phase::kDriver:
      phase_ = Phase::kLevel1;
      driver_row_ = 0;
      return driver_sql_;
    case Phase::kLevel1:
      if (!driver_captured_ && prev != nullptr) {
        driver_result_ = *prev;
        driver_captured_ = true;
      }
      return IssueLevel1();
    case Phase::kLevel2:
      if (level1_row_ == 0 && level2_query_ == 0 && prev != nullptr) {
        level1_result_ = *prev;
      }
      return AdvanceLevel2();
    case Phase::kDone:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace chrono::workloads
