#include "workloads/trace_replay.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace chrono::workloads {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

/// Replays a fixed statement list.
class ReplayTransaction : public TransactionProgram {
 public:
  explicit ReplayTransaction(const std::vector<std::string>* statements)
      : statements_(statements) {}

  std::optional<std::string> Next(const sql::ResultSet* /*prev*/) override {
    if (index_ >= statements_->size()) return std::nullopt;
    return (*statements_)[index_++];
  }
  const char* name() const override { return "TraceReplay"; }

 private:
  const std::vector<std::string>* statements_;
  size_t index_ = 0;
};

}  // namespace

Result<std::unique_ptr<TraceReplayWorkload>> TraceReplayWorkload::FromString(
    const std::string& trace_text) {
  auto workload =
      std::unique_ptr<TraceReplayWorkload>(new TraceReplayWorkload());

  enum class Section { kNone, kSetup, kTxn };
  Section section = Section::kNone;
  std::istringstream in(trace_text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed.rfind("--", 0) == 0) {
      std::string directive = Trim(trimmed.substr(2));
      if (directive == "SETUP") {
        section = Section::kSetup;
      } else if (directive == "TXN") {
        section = Section::kTxn;
        workload->transactions_.emplace_back();
      } else {
        // Plain SQL comment: ignore.
      }
      continue;
    }
    // Strip a trailing semicolon; the lexer also tolerates it.
    if (!trimmed.empty() && trimmed.back() == ';') {
      trimmed = Trim(trimmed.substr(0, trimmed.size() - 1));
      if (trimmed.empty()) continue;
    }
    switch (section) {
      case Section::kNone:
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": statement before any -- SETUP / -- TXN directive");
      case Section::kSetup:
        workload->setup_.push_back(trimmed);
        break;
      case Section::kTxn:
        workload->transactions_.back().push_back(trimmed);
        break;
    }
  }
  // Drop empty transaction blocks.
  auto& txns = workload->transactions_;
  txns.erase(std::remove_if(txns.begin(), txns.end(),
                            [](const auto& t) { return t.empty(); }),
             txns.end());
  if (txns.empty()) {
    return Status::InvalidArgument("trace contains no -- TXN blocks");
  }
  return workload;
}

Result<std::unique_ptr<TraceReplayWorkload>> TraceReplayWorkload::FromFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return FromString(contents.str());
}

void TraceReplayWorkload::Populate(db::Database* db) {
  for (const auto& stmt : setup_) {
    auto outcome = db->ExecuteText(stmt);
    if (!outcome.ok()) {
      // Setup failures are programming errors in the trace; surface loudly.
      std::fprintf(stderr, "trace setup failed: %s\n  %s\n",
                   outcome.status().ToString().c_str(), stmt.c_str());
    }
  }
}

std::unique_ptr<TransactionProgram> TraceReplayWorkload::NextTransaction(
    Rng* rng) {
  size_t pick = static_cast<size_t>(rng->NextBounded(transactions_.size()));
  return std::make_unique<ReplayTransaction>(&transactions_[pick]);
}

}  // namespace chrono::workloads
