#include "workloads/wikipedia.h"

#include <cassert>

namespace chrono::workloads {

using sql::Value;

WikipediaWorkload::WikipediaWorkload(Config config)
    : config_(config),
      zipf_(static_cast<uint64_t>(config.pages), config.zipf_rho) {}

void WikipediaWorkload::Populate(db::Database* db) {
  auto* catalog = db->catalog();
  auto must = [](auto&& result) {
    assert(result.ok());
    return std::forward<decltype(result)>(result).value();
  };
  using db::ColumnDef;
  using VT = Value::Type;

  auto* page = must(catalog->CreateTable(
      "page", {ColumnDef{"page_id", VT::kInt},
               ColumnDef{"page_namespace", VT::kInt},
               ColumnDef{"page_title", VT::kString},
               ColumnDef{"page_latest", VT::kInt}}));
  auto* page_restrictions = must(catalog->CreateTable(
      "page_restrictions",
      {ColumnDef{"pr_page", VT::kInt}, ColumnDef{"pr_type", VT::kString}}));
  auto* revision = must(catalog->CreateTable(
      "revision", {ColumnDef{"rev_id", VT::kInt},
                   ColumnDef{"rev_page", VT::kInt},
                   ColumnDef{"rev_text_id", VT::kInt},
                   ColumnDef{"rev_user", VT::kInt}}));
  auto* text = must(catalog->CreateTable(
      "text", {ColumnDef{"old_id", VT::kInt},
               ColumnDef{"old_text", VT::kString}}));
  auto* useracct = must(catalog->CreateTable(
      "useracct", {ColumnDef{"user_id", VT::kInt},
                   ColumnDef{"user_name", VT::kString},
                   ColumnDef{"user_touched", VT::kInt}}));
  auto* watchlist = must(catalog->CreateTable(
      "watchlist",
      {ColumnDef{"wl_user", VT::kInt}, ColumnDef{"wl_title", VT::kString}}));

  Rng rng(config_.seed);
  for (int64_t p = 0; p < config_.pages; ++p) {
    int64_t rev_id = p * 10 + 1;
    int64_t text_id = rev_id;
    (void)page->Insert({Value::Int(p), Value::Int(0),
                        Value::String("Page_" + std::to_string(p)),
                        Value::Int(rev_id)});
    (void)revision->Insert({Value::Int(rev_id), Value::Int(p),
                            Value::Int(text_id), Value::Int(rng.NextInt(
                                0, config_.users - 1))});
    (void)text->Insert({Value::Int(text_id),
                        Value::String("Lorem ipsum content of page " +
                                      std::to_string(p))});
    if (rng.NextBool(0.1)) {
      (void)page_restrictions->Insert(
          {Value::Int(p), Value::String("edit=sysop")});
    }
  }
  for (int64_t u = 0; u < config_.users; ++u) {
    (void)useracct->Insert({Value::Int(u),
                            Value::String("User_" + std::to_string(u)),
                            Value::Int(rng.NextInt(0, 1000000))});
    if (u % 5 == 0) {
      (void)watchlist->Insert(
          {Value::Int(u),
           Value::String("Page_" + std::to_string(
                             rng.NextInt(0, config_.pages - 1)))});
    }
  }
}

std::unique_ptr<TransactionProgram> WikipediaWorkload::NextTransaction(
    Rng* rng) {
  // 92% read-only (GetPageAnonymous dominates, with a slice of
  // authenticated page views), 8% UpdatePage (§6.3 / [18]).
  double pick = rng->NextDouble();
  bool update = pick < 0.08;
  bool authenticated = pick >= 0.08 && pick < 0.20;
  int64_t p = static_cast<int64_t>(zipf_.Next(rng));
  std::string title = Lit("Page_" + std::to_string(p));

  if (authenticated) {
    // GetPageAuthenticated: the page chain plus the logged-in user's row
    // and watchlist check — an extra dependency root per transaction.
    int64_t u = rng->NextInt(0, config_.users - 1);
    return std::make_unique<LoopTransaction>(
        "GetPageAuthenticated",
        Subst("SELECT page_id, page_latest FROM page WHERE page_namespace = "
              "0 AND page_title = $0",
              {title}),
        std::vector<LoopTransaction::PerRowQuery>{
            {"SELECT rev_id, rev_text_id, rev_user FROM revision WHERE "
             "rev_page = $0 AND rev_id = $1",
             {"page_id", "page_latest"}},
            {"SELECT old_text FROM text WHERE old_id = $1",
             {"page_id", "page_latest"}},
        },
        std::vector<std::string>{},
        std::vector<std::string>{
            Subst("SELECT user_name, user_touched FROM useracct WHERE "
                  "user_id = $0",
                  {Lit(u)}),
            Subst("SELECT wl_title FROM watchlist WHERE wl_user = $0",
                  {Lit(u)})});
  }
  if (!update) {
    // GetPageAnonymous: page lookup, restrictions, then the dependent
    // revision + text chain (a three-level dependency hierarchy).
    return std::make_unique<LoopTransaction>(
        "GetPageAnonymous",
        Subst("SELECT page_id, page_latest FROM page WHERE page_namespace = "
              "0 AND page_title = $0",
              {title}),
        std::vector<LoopTransaction::PerRowQuery>{
            {"SELECT pr_type FROM page_restrictions WHERE pr_page = $0",
             {"page_id"}},
            {"SELECT rev_id, rev_text_id, rev_user FROM revision WHERE "
             "rev_page = $0 AND rev_id = $1",
             {"page_id", "page_latest"}},
            {"SELECT old_text FROM text WHERE old_id = $1",
             {"page_id", "page_latest"}},
        });
  }

  // UpdatePage: bump page_latest and insert the new revision + text.
  int64_t new_rev = 10000000 + rng->NextInt(0, 1000000000);
  int64_t user = rng->NextInt(0, config_.users - 1);
  return std::make_unique<LoopTransaction>(
      "UpdatePage",
      Subst("SELECT page_id, page_latest FROM page WHERE page_namespace = 0 "
            "AND page_title = $0",
            {title}),
      std::vector<LoopTransaction::PerRowQuery>{},
      std::vector<std::string>{},
      std::vector<std::string>{
          Subst("INSERT INTO text (old_id, old_text) VALUES ($0, 'edit')",
                {Lit(new_rev)}),
          Subst("INSERT INTO revision (rev_id, rev_page, rev_text_id, "
                "rev_user) VALUES ($0, $1, $0, $2)",
                {Lit(new_rev), Lit(p), Lit(user)}),
          Subst("UPDATE page SET page_latest = $0 WHERE page_id = $1",
                {Lit(new_rev), Lit(p)})});
}

}  // namespace chrono::workloads
