#ifndef CHRONOCACHE_WORKLOADS_TRACE_REPLAY_H_
#define CHRONOCACHE_WORKLOADS_TRACE_REPLAY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "workloads/workload.h"

namespace chrono::workloads {

/// \brief Bring-your-own-workload: replays SQL transaction traces through
/// the middleware. Trace format (one statement per line, `;` optional):
///
///     # comment
///     -- SETUP            (DDL + initial data, executed once by Populate)
///     CREATE TABLE t (id bigint, name text);
///     INSERT INTO t VALUES (1, 'a');
///     -- TXN              (each block is one transaction type)
///     SELECT name FROM t WHERE id = 1;
///     SELECT id FROM t WHERE name = 'a';
///     -- TXN
///     UPDATE t SET name = 'b' WHERE id = 1;
///
/// NextTransaction draws transaction blocks uniformly at random. Statements
/// replay verbatim (no result-driven parameters), which is exactly what a
/// captured production trace provides; ChronoCache's learning still
/// discovers the data dependencies between the recorded statements.
class TraceReplayWorkload : public Workload {
 public:
  /// Parses trace text. Fails if no `-- TXN` block is present.
  static Result<std::unique_ptr<TraceReplayWorkload>> FromString(
      const std::string& trace_text);

  /// Reads and parses a trace file.
  static Result<std::unique_ptr<TraceReplayWorkload>> FromFile(
      const std::string& path);

  std::string name() const override { return "trace_replay"; }
  void Populate(db::Database* db) override;
  std::unique_ptr<TransactionProgram> NextTransaction(Rng* rng) override;

  size_t transaction_type_count() const { return transactions_.size(); }
  size_t setup_statement_count() const { return setup_.size(); }

 private:
  TraceReplayWorkload() = default;

  std::vector<std::string> setup_;
  std::vector<std::vector<std::string>> transactions_;
};

}  // namespace chrono::workloads

#endif  // CHRONOCACHE_WORKLOADS_TRACE_REPLAY_H_
