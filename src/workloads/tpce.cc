#include "workloads/tpce.h"

#include <cassert>

namespace chrono::workloads {

using sql::Value;

TpceWorkload::TpceWorkload(Config config) : config_(config) {}

void TpceWorkload::Populate(db::Database* db) {
  auto* catalog = db->catalog();
  auto must = [](auto&& result) {
    assert(result.ok());
    return std::forward<decltype(result)>(result).value();
  };
  using db::ColumnDef;
  using VT = Value::Type;

  auto* security = must(catalog->CreateTable(
      "security", {ColumnDef{"s_symb", VT::kString},
                   ColumnDef{"s_name", VT::kString},
                   ColumnDef{"s_num_out", VT::kInt},
                   ColumnDef{"s_ex_id", VT::kInt}}));
  auto* watch_list = must(catalog->CreateTable(
      "watch_list",
      {ColumnDef{"wl_id", VT::kInt}, ColumnDef{"wl_c_id", VT::kInt}}));
  auto* watch_item = must(catalog->CreateTable(
      "watch_item",
      {ColumnDef{"wi_wl_id", VT::kInt}, ColumnDef{"wi_s_symb", VT::kString}}));
  auto* last_trade = must(catalog->CreateTable(
      "last_trade", {ColumnDef{"lt_s_symb", VT::kString},
                     ColumnDef{"lt_price", VT::kDouble},
                     ColumnDef{"lt_vol", VT::kInt}}));
  auto* daily_market = must(catalog->CreateTable(
      "daily_market", {ColumnDef{"dm_s_symb", VT::kString},
                       ColumnDef{"dm_date", VT::kInt},
                       ColumnDef{"dm_close", VT::kDouble}}));
  auto* customer = must(catalog->CreateTable(
      "customer", {ColumnDef{"c_id", VT::kInt}, ColumnDef{"c_name", VT::kString},
                   ColumnDef{"c_tier", VT::kInt}}));
  auto* customer_account = must(catalog->CreateTable(
      "customer_account",
      {ColumnDef{"ca_id", VT::kInt}, ColumnDef{"ca_c_id", VT::kInt},
       ColumnDef{"ca_bal", VT::kDouble}}));
  auto* holding_summary = must(catalog->CreateTable(
      "holding_summary",
      {ColumnDef{"hs_ca_id", VT::kInt}, ColumnDef{"hs_s_symb", VT::kString},
       ColumnDef{"hs_qty", VT::kInt}}));
  auto* broker = must(catalog->CreateTable(
      "broker", {ColumnDef{"b_id", VT::kInt}, ColumnDef{"b_name", VT::kString},
                 ColumnDef{"b_num_trades", VT::kInt},
                 ColumnDef{"b_comm", VT::kDouble}}));
  auto* trade = must(catalog->CreateTable(
      "trade", {ColumnDef{"t_id", VT::kInt}, ColumnDef{"t_ca_id", VT::kInt},
                ColumnDef{"t_s_symb", VT::kString},
                ColumnDef{"t_qty", VT::kInt}, ColumnDef{"t_price", VT::kDouble},
                ColumnDef{"t_status", VT::kString}}));

  Rng rng(config_.seed);
  auto symb = [](int64_t i) { return "SYM" + std::to_string(i); };

  for (int64_t i = 0; i < config_.securities; ++i) {
    (void)security->Insert({Value::String(symb(i)),
                            Value::String("Security " + std::to_string(i)),
                            Value::Int(1000 + rng.NextInt(0, 100000)),
                            Value::Int(rng.NextInt(1, 4))});
    (void)last_trade->Insert({Value::String(symb(i)),
                              Value::Double(10 + rng.NextDouble() * 90),
                              Value::Int(rng.NextInt(100, 100000))});
    for (int64_t d = 0; d < config_.market_days; ++d) {
      (void)daily_market->Insert({Value::String(symb(i)), Value::Int(d),
                                  Value::Double(10 + rng.NextDouble() * 90)});
    }
  }
  for (int64_t c = 0; c < config_.customers; ++c) {
    (void)customer->Insert({Value::Int(c),
                            Value::String("Customer " + std::to_string(c)),
                            Value::Int(rng.NextInt(1, 3))});
    for (int64_t a = 0; a < config_.accounts_per_customer; ++a) {
      int64_t ca_id = c * config_.accounts_per_customer + a;
      (void)customer_account->Insert(
          {Value::Int(ca_id), Value::Int(c),
           Value::Double(1000 + rng.NextDouble() * 100000)});
      for (int64_t h = 0; h < config_.holdings_per_account; ++h) {
        (void)holding_summary->Insert(
            {Value::Int(ca_id),
             Value::String(symb(rng.NextInt(0, config_.securities - 1))),
             Value::Int(rng.NextInt(1, 500))});
      }
    }
  }
  for (int64_t w = 0; w < config_.watch_lists; ++w) {
    (void)watch_list->Insert(
        {Value::Int(w), Value::Int(rng.NextInt(0, config_.customers - 1))});
    for (int64_t i = 0; i < config_.watch_items_per_list; ++i) {
      (void)watch_item->Insert(
          {Value::Int(w),
           Value::String(symb(rng.NextInt(0, config_.securities - 1)))});
    }
  }
  for (int64_t b = 0; b < config_.brokers; ++b) {
    (void)broker->Insert({Value::Int(b),
                          Value::String("Broker " + std::to_string(b)),
                          Value::Int(rng.NextInt(10, 1000)),
                          Value::Double(rng.NextDouble() * 100000)});
  }
  for (int64_t t = 0; t < config_.trades; ++t) {
    (void)trade->Insert(
        {Value::Int(t),
         Value::Int(rng.NextInt(
             0, config_.customers * config_.accounts_per_customer - 1)),
         Value::String(symb(rng.NextInt(0, config_.securities - 1))),
         Value::Int(rng.NextInt(1, 500)),
         Value::Double(10 + rng.NextDouble() * 90),
         Value::String("CMPT")});
  }
}

std::unique_ptr<TransactionProgram> TpceWorkload::NextTransaction(Rng* rng) {
  // Approximate TPC-E mix: ~75% read-only (§6 "Workloads").
  static const std::vector<double> kWeights = {
      18,  // MarketWatch
      15,  // CustomerPosition
      20,  // TradeStatus
      12,  // BrokerVolume
      10,  // SecurityDetail
      10,  // TradeOrder (write)
      8,   // MarketFeed (write)
      7,   // TradeUpdate (write)
  };
  size_t pick = rng->NextWeighted(kWeights);
  auto symb = [this, rng]() {
    return Lit("SYM" + std::to_string(rng->NextInt(0, config_.securities - 1)));
  };

  switch (pick) {
    case 0: {
      // Market-Watch (Figs. 1 and 4): watch-list loop with the per-loop
      // constant dm_date predicate.
      int64_t wl = rng->NextInt(0, config_.watch_lists - 1);
      int64_t date = rng->NextInt(0, config_.market_days - 1);
      return std::make_unique<LoopTransaction>(
          "MarketWatch",
          Subst("SELECT wi_s_symb FROM watch_item WHERE wi_wl_id = $0",
                {Lit(wl)}),
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT s_num_out FROM security WHERE s_symb = $0",
               {"wi_s_symb"}},
              {"SELECT dm_close FROM daily_market WHERE dm_s_symb = $0 AND "
               "dm_date = $1",
               {"wi_s_symb"}},
          },
          std::vector<std::string>{Lit(date)});
    }
    case 1: {
      // Customer-Position: accounts -> holdings -> last-trade price, a
      // two-level loop hierarchy (§2.1's hierarchical dependency graphs).
      int64_t c = rng->NextInt(0, config_.customers - 1);
      return std::make_unique<NestedLoopTransaction>(
          "CustomerPosition",
          Subst("SELECT ca_id, ca_bal FROM customer_account WHERE ca_c_id = "
                "$0",
                {Lit(c)}),
          LoopTransaction::PerRowQuery{
              "SELECT hs_s_symb, hs_qty FROM holding_summary WHERE hs_ca_id "
              "= $0",
              {"ca_id"}},
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT lt_price FROM last_trade WHERE lt_s_symb = $0",
               {"hs_s_symb"}},
          });
    }
    case 2: {
      // Trade-Status: ORDER BY/LIMIT driver — only combinable via the
      // lateral-union strategy (§4.2).
      int64_t ca = rng->NextInt(
          0, config_.customers * config_.accounts_per_customer - 1);
      return std::make_unique<LoopTransaction>(
          "TradeStatus",
          Subst("SELECT t_id, t_s_symb, t_qty, t_status FROM trade WHERE "
                "t_ca_id = $0 ORDER BY t_id DESC LIMIT 5",
                {Lit(ca)}),
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT s_name FROM security WHERE s_symb = $0", {"t_s_symb"}},
          });
    }
    case 3: {
      int64_t b = rng->NextInt(0, config_.brokers - 1);
      return std::make_unique<LoopTransaction>(
          "BrokerVolume",
          Subst("SELECT b_name, b_num_trades, b_comm FROM broker WHERE b_id "
                "= $0",
                {Lit(b)}),
          std::vector<LoopTransaction::PerRowQuery>{});
    }
    case 4: {
      // Security-Detail: point lookups plus a bounded history scan.
      std::string s = symb();
      return std::make_unique<LoopTransaction>(
          "SecurityDetail",
          Subst("SELECT s_name, s_num_out, s_ex_id FROM security WHERE "
                "s_symb = $0",
                {s}),
          std::vector<LoopTransaction::PerRowQuery>{},
          std::vector<std::string>{},
          std::vector<std::string>{
              Subst("SELECT dm_date, dm_close FROM daily_market WHERE "
                    "dm_s_symb = $0 AND dm_date >= 0 ORDER BY dm_date LIMIT 5",
                    {s}),
              Subst("SELECT lt_price, lt_vol FROM last_trade WHERE lt_s_symb "
                    "= $0",
                    {s})});
    }
    case 5: {
      // Trade-Order (write): reads then an insert + balance update.
      int64_t ca = rng->NextInt(
          0, config_.customers * config_.accounts_per_customer - 1);
      std::string s = symb();
      int64_t tid = 1000000 + rng->NextInt(0, 1000000000);
      return std::make_unique<LoopTransaction>(
          "TradeOrder",
          Subst("SELECT ca_bal FROM customer_account WHERE ca_id = $0",
                {Lit(ca)}),
          std::vector<LoopTransaction::PerRowQuery>{},
          std::vector<std::string>{},
          std::vector<std::string>{
              Subst("SELECT lt_price FROM last_trade WHERE lt_s_symb = $0",
                    {s}),
              Subst("INSERT INTO trade (t_id, t_ca_id, t_s_symb, t_qty, "
                    "t_price, t_status) VALUES ($0, $1, $2, $3, $4, 'PNDG')",
                    {Lit(tid), Lit(ca), s, Lit(rng->NextInt(1, 200)),
                     Lit(Value::Double(10 + rng->NextDouble() * 90))}),
              Subst("UPDATE customer_account SET ca_bal = ca_bal - $0 WHERE "
                    "ca_id = $1",
                    {Lit(Value::Double(rng->NextDouble() * 500)), Lit(ca)})});
    }
    case 6: {
      // Market-Feed (write): ticker update.
      return std::make_unique<LoopTransaction>(
          "MarketFeed",
          Subst("UPDATE last_trade SET lt_price = $0, lt_vol = lt_vol + $1 "
                "WHERE lt_s_symb = $2",
                {Lit(Value::Double(10 + rng->NextDouble() * 90)),
                 Lit(rng->NextInt(1, 100)), symb()}),
          std::vector<LoopTransaction::PerRowQuery>{});
    }
    default: {
      // Trade-Update (write): status flip on a recent trade.
      int64_t t = rng->NextInt(0, config_.trades - 1);
      return std::make_unique<LoopTransaction>(
          "TradeUpdate",
          Subst("SELECT t_qty, t_price FROM trade WHERE t_id = $0", {Lit(t)}),
          std::vector<LoopTransaction::PerRowQuery>{},
          std::vector<std::string>{},
          std::vector<std::string>{
              Subst("UPDATE trade SET t_status = 'CMPT' WHERE t_id = $0",
                    {Lit(t)})});
    }
  }
}

}  // namespace chrono::workloads
