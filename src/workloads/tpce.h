#ifndef CHRONOCACHE_WORKLOADS_TPCE_H_
#define CHRONOCACHE_WORKLOADS_TPCE_H_

#include <memory>

#include "workloads/workload.h"

namespace chrono::workloads {

/// \brief Scaled-down TPC-E brokerage workload [15] reproducing the query
/// patterns the paper exploits: the Market-Watch transaction's loop over a
/// watch list (Fig. 1) including the per-loop-constant `dm_date` predicate
/// (Fig. 4), Customer-Position's two-level loop hierarchy, Trade-Status's
/// ORDER BY/LIMIT driver (exercising the lateral-union strategy), plus a
/// ~25% write mix (Trade-Order, Market-Feed, Trade-Update).
class TpceWorkload : public Workload {
 public:
  struct Config {
    int64_t customers = 1000;
    int64_t securities = 5000;
    int64_t watch_lists = 2000;
    int64_t watch_items_per_list = 12;  // loop length (paper: ~100)
    int64_t accounts_per_customer = 2;
    int64_t holdings_per_account = 4;
    int64_t trades = 8000;
    int64_t brokers = 50;
    int64_t market_days = 30;
    uint64_t seed = 7;
  };

  TpceWorkload() : TpceWorkload(Config{}) {}
  explicit TpceWorkload(Config config);

  std::string name() const override { return "tpce"; }
  void Populate(db::Database* db) override;
  std::unique_ptr<TransactionProgram> NextTransaction(Rng* rng) override;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace chrono::workloads

#endif  // CHRONOCACHE_WORKLOADS_TPCE_H_
