#include "workloads/auctionmark.h"

#include <cassert>

namespace chrono::workloads {

using sql::Value;

AuctionMarkWorkload::AuctionMarkWorkload(Config config) : config_(config) {}

void AuctionMarkWorkload::Populate(db::Database* db) {
  auto* catalog = db->catalog();
  auto must = [](auto&& result) {
    assert(result.ok());
    return std::forward<decltype(result)>(result).value();
  };
  using db::ColumnDef;
  using VT = Value::Type;

  auto* users = must(catalog->CreateTable(
      "users", {ColumnDef{"u_id", VT::kInt}, ColumnDef{"u_name", VT::kString},
                ColumnDef{"u_rating", VT::kInt},
                ColumnDef{"u_balance", VT::kDouble}}));
  auto* item = must(catalog->CreateTable(
      "item", {ColumnDef{"i_id", VT::kInt}, ColumnDef{"i_seller", VT::kInt},
               ColumnDef{"i_name", VT::kString},
               ColumnDef{"i_current_price", VT::kDouble},
               ColumnDef{"i_status", VT::kString},
               ColumnDef{"i_end_date", VT::kInt}}));
  auto* bid = must(catalog->CreateTable(
      "bid", {ColumnDef{"b_id", VT::kInt}, ColumnDef{"b_i_id", VT::kInt},
              ColumnDef{"b_bidder", VT::kInt},
              ColumnDef{"b_amount", VT::kDouble}}));
  auto* feedback = must(catalog->CreateTable(
      "feedback",
      {ColumnDef{"f_id", VT::kInt}, ColumnDef{"f_seller", VT::kInt},
       ColumnDef{"f_rating", VT::kInt}, ColumnDef{"f_date", VT::kInt}}));

  Rng rng(config_.seed);
  for (int64_t u = 0; u < config_.users; ++u) {
    (void)users->Insert({Value::Int(u),
                         Value::String("User " + std::to_string(u)),
                         Value::Int(rng.NextInt(0, 100)),
                         Value::Double(rng.NextDouble() * 1000)});
    for (int64_t f = 0; f < config_.feedback_per_user; ++f) {
      (void)feedback->Insert(
          {Value::Int(u * config_.feedback_per_user + f), Value::Int(u),
           Value::Int(rng.NextInt(1, 5)),
           Value::Int(rng.NextInt(0, 60))});  // day number
    }
  }
  int64_t next_bid = 0;
  for (int64_t i = 0; i < config_.items; ++i) {
    (void)item->Insert(
        {Value::Int(i), Value::Int(rng.NextInt(0, config_.users - 1)),
         Value::String("Item " + std::to_string(i)),
         Value::Double(1 + rng.NextDouble() * 100),
         Value::String(rng.NextBool(0.3) ? "CLOSING" : "OPEN"),
         Value::Int(rng.NextInt(0, config_.end_dates - 1))});
    for (int64_t b = 0; b < config_.bids_per_item; ++b) {
      (void)bid->Insert({Value::Int(next_bid++), Value::Int(i),
                         Value::Int(rng.NextInt(0, config_.users - 1)),
                         Value::Double(1 + rng.NextDouble() * 120)});
    }
  }
}

std::unique_ptr<TransactionProgram> AuctionMarkWorkload::NextTransaction(
    Rng* rng) {
  // ~85% read mix (§6.5), with queries that rarely repeat exactly.
  static const std::vector<double> kWeights = {
      35,  // GetItem
      20,  // GetUserInfo
      15,  // SearchItemsBySeller
      15,  // CloseAuctions (loop + aggregate + per-loop constant)
      10,  // NewBid (write)
      5,   // UpdateItem (write)
  };
  size_t pick = rng->NextWeighted(kWeights);

  switch (pick) {
    case 0: {
      int64_t i = rng->NextInt(0, config_.items - 1);
      return std::make_unique<LoopTransaction>(
          "GetItem",
          Subst("SELECT i_id, i_seller, i_name, i_current_price FROM item "
                "WHERE i_id = $0",
                {Lit(i)}),
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT u_name, u_rating FROM users WHERE u_id = $1",
               {"i_id", "i_seller"}},
          });
    }
    case 1: {
      int64_t u = rng->NextInt(0, config_.users - 1);
      return std::make_unique<LoopTransaction>(
          "GetUserInfo",
          Subst("SELECT u_id, u_name, u_rating, u_balance FROM users WHERE "
                "u_id = $0",
                {Lit(u)}),
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT f_rating, f_date FROM feedback WHERE f_seller = $0",
               {"u_id"}},
          });
    }
    case 2: {
      int64_t u = rng->NextInt(0, config_.users - 1);
      return std::make_unique<LoopTransaction>(
          "SearchItemsBySeller",
          Subst("SELECT i_id, i_name, i_current_price FROM item WHERE "
                "i_seller = $0",
                {Lit(u)}),
          std::vector<LoopTransaction::PerRowQuery>{});
    }
    case 3: {
      // CloseAuctions: loop over closing items; per item the winning bid
      // (aggregate) and — per the paper's extension — the seller's average
      // feedback over the last 30 days (aggregate + per-loop constant).
      int64_t today = rng->NextInt(30, 60);
      int64_t end_date = rng->NextInt(0, config_.end_dates - 1);
      return std::make_unique<LoopTransaction>(
          "CloseAuctions",
          Subst("SELECT i_id, i_seller FROM item WHERE i_status = 'CLOSING' "
                "AND i_end_date = $0",
                {Lit(end_date)}),
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT max(b_amount) FROM bid WHERE b_i_id = $0",
               {"i_id", "i_seller"}},
              {"SELECT avg(f_rating) FROM feedback WHERE f_seller = $1 AND "
               "f_date >= $2",
               {"i_id", "i_seller"}},
          },
          std::vector<std::string>{Lit(today - 30)});
    }
    case 4: {
      // NewBid (write): read current price, insert the bid, bump the item.
      int64_t i = rng->NextInt(0, config_.items - 1);
      int64_t bidder = rng->NextInt(0, config_.users - 1);
      int64_t b = 10000000 + rng->NextInt(0, 1000000000);
      std::string amount = Lit(Value::Double(1 + rng->NextDouble() * 150));
      return std::make_unique<LoopTransaction>(
          "NewBid",
          Subst("SELECT i_current_price FROM item WHERE i_id = $0", {Lit(i)}),
          std::vector<LoopTransaction::PerRowQuery>{},
          std::vector<std::string>{},
          std::vector<std::string>{
              Subst("INSERT INTO bid (b_id, b_i_id, b_bidder, b_amount) "
                    "VALUES ($0, $1, $2, $3)",
                    {Lit(b), Lit(i), Lit(bidder), amount}),
              Subst("UPDATE item SET i_current_price = $0 WHERE i_id = $1",
                    {amount, Lit(i)})});
    }
    default: {
      int64_t i = rng->NextInt(0, config_.items - 1);
      return std::make_unique<LoopTransaction>(
          "UpdateItem",
          Subst("UPDATE item SET i_status = 'CLOSING' WHERE i_id = $0",
                {Lit(i)}),
          std::vector<LoopTransaction::PerRowQuery>{});
    }
  }
}

}  // namespace chrono::workloads
