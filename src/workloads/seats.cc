#include "workloads/seats.h"

#include <algorithm>
#include <cassert>

namespace chrono::workloads {

using sql::Value;

SeatsWorkload::SeatsWorkload(Config config) : config_(config) {}

void SeatsWorkload::Populate(db::Database* db) {
  auto* catalog = db->catalog();
  auto must = [](auto&& result) {
    assert(result.ok());
    return std::forward<decltype(result)>(result).value();
  };
  using db::ColumnDef;
  using VT = Value::Type;

  auto* customer = must(catalog->CreateTable(
      "customer", {ColumnDef{"c_id", VT::kInt},
                   ColumnDef{"c_ff_number", VT::kString},
                   ColumnDef{"c_login", VT::kString},
                   ColumnDef{"c_balance", VT::kDouble}}));
  auto* airline = must(catalog->CreateTable(
      "airline",
      {ColumnDef{"al_id", VT::kInt}, ColumnDef{"al_name", VT::kString}}));
  auto* flight = must(catalog->CreateTable(
      "flight", {ColumnDef{"f_id", VT::kInt}, ColumnDef{"f_route_id", VT::kInt},
                 ColumnDef{"f_al_id", VT::kInt},
                 ColumnDef{"f_depart_ap", VT::kString},
                 ColumnDef{"f_arrive_ap", VT::kString}}));
  auto* flight_avail = must(catalog->CreateTable(
      "flight_avail",
      {ColumnDef{"fa_f_id", VT::kInt}, ColumnDef{"fa_seats_left", VT::kInt}}));
  auto* flight_price = must(catalog->CreateTable(
      "flight_price", {ColumnDef{"fp_f_id", VT::kInt},
                       ColumnDef{"fp_date", VT::kInt},
                       ColumnDef{"fp_price", VT::kDouble}}));
  auto* reservation = must(catalog->CreateTable(
      "reservation", {ColumnDef{"r_id", VT::kInt}, ColumnDef{"r_c_id", VT::kInt},
                      ColumnDef{"r_f_id", VT::kInt},
                      ColumnDef{"r_seat", VT::kInt}}));
  (void)reservation;

  Rng rng(config_.seed);
  // rows_per_key > 1 duplicates each logical key so every point lookup
  // returns that many rows; the keyspace and query mix are unchanged.
  const int64_t reps = std::max<int64_t>(1, config_.rows_per_key);
  for (int64_t a = 0; a < config_.airlines; ++a) {
    for (int64_t rep = 0; rep < reps; ++rep) {
      (void)airline->Insert(
          {Value::Int(a), Value::String("Airline " + std::to_string(a))});
    }
  }
  for (int64_t c = 0; c < config_.customers; ++c) {
    for (int64_t rep = 0; rep < reps; ++rep) {
      (void)customer->Insert(
          {Value::Int(c), Value::String("FF" + std::to_string(c)),
           Value::String("user" + std::to_string(c)),
           Value::Double(rng.NextDouble() * 1000)});
    }
  }
  for (int64_t f = 0; f < config_.flights; ++f) {
    int64_t route = f % config_.routes;
    for (int64_t rep = 0; rep < reps; ++rep) {
      (void)flight->Insert(
          {Value::Int(f), Value::Int(route),
           Value::Int(rng.NextInt(0, config_.airlines - 1)),
           Value::String("AP" + std::to_string(route * 2)),
           Value::String("AP" + std::to_string(route * 2 + 1))});
      (void)flight_avail->Insert(
          {Value::Int(f), Value::Int(rng.NextInt(10, 200))});
    }
    for (int64_t d = 0; d < config_.days; ++d) {
      (void)flight_price->Insert(
          {Value::Int(f), Value::Int(d),
           Value::Double(50 + rng.NextDouble() * 400)});
    }
  }
}

std::unique_ptr<TransactionProgram> SeatsWorkload::NextTransaction(Rng* rng) {
  static const std::vector<double> kWeights = {
      30,  // FindFlights (loop + per-loop constant date)
      20,  // CustomerLookup (conditional access paths)
      15,  // FlightStatus
      15,  // FindOpenSeats
      15,  // NewReservation (write)
      5,   // UpdateCustomer (write)
  };
  size_t pick = rng->NextWeighted(kWeights);

  switch (pick) {
    case 0: {
      // FindFlights: loop over a route's flights; availability lookup per
      // flight plus a priced lookup with the per-loop constant date.
      int64_t route = rng->NextInt(0, config_.routes - 1);
      int64_t date = rng->NextInt(0, config_.days - 1);
      return std::make_unique<LoopTransaction>(
          "FindFlights",
          Subst("SELECT f_id, f_al_id FROM flight WHERE f_route_id = $0",
                {Lit(route)}),
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT fa_seats_left FROM flight_avail WHERE fa_f_id = $0",
               {"f_id"}},
              {"SELECT fp_price FROM flight_price WHERE fp_f_id = $0 AND "
               "fp_date = $2",
               {"f_id", "f_al_id"}},
              {"SELECT al_name FROM airline WHERE al_id = $1",
               {"f_id", "f_al_id"}},
          },
          std::vector<std::string>{Lit(date)});
    }
    case 1: {
      // CustomerLookup with conditional access paths (§6.4): the same
      // logical transaction reaches the customer row three different ways.
      int64_t c = rng->NextInt(0, config_.customers - 1);
      double path = rng->NextDouble();
      std::string driver;
      if (path < 0.5) {
        driver = Subst("SELECT c_id, c_balance FROM customer WHERE c_id = $0",
                       {Lit(c)});
      } else if (path < 0.8) {
        driver = Subst(
            "SELECT c_id, c_balance FROM customer WHERE c_ff_number = $0",
            {Lit("FF" + std::to_string(c))});
      } else {
        driver =
            Subst("SELECT c_id, c_balance FROM customer WHERE c_login = $0",
                  {Lit("user" + std::to_string(c))});
      }
      return std::make_unique<LoopTransaction>(
          "CustomerLookup", std::move(driver),
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT r_f_id, r_seat FROM reservation WHERE r_c_id = $0",
               {"c_id"}},
          });
    }
    case 2: {
      int64_t f = rng->NextInt(0, config_.flights - 1);
      return std::make_unique<LoopTransaction>(
          "FlightStatus",
          Subst("SELECT f_id, f_al_id, f_depart_ap, f_arrive_ap FROM flight "
                "WHERE f_id = $0",
                {Lit(f)}),
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT fa_seats_left FROM flight_avail WHERE fa_f_id = $0",
               {"f_id"}},
              {"SELECT al_name FROM airline WHERE al_id = $1",
               {"f_id", "f_al_id"}},
          });
    }
    case 3: {
      // FindOpenSeats: list a flight's reservations to compute free seats.
      int64_t f = rng->NextInt(0, config_.flights - 1);
      return std::make_unique<LoopTransaction>(
          "FindOpenSeats",
          Subst("SELECT f_id FROM flight WHERE f_id = $0", {Lit(f)}),
          std::vector<LoopTransaction::PerRowQuery>{
              {"SELECT r_seat FROM reservation WHERE r_f_id = $0", {"f_id"}},
              {"SELECT fa_seats_left FROM flight_avail WHERE fa_f_id = $0",
               {"f_id"}},
          });
    }
    case 4: {
      // NewReservation (write): frequent updates to flight availability —
      // the effect the paper notes reduces shared-caching gains (§6.4).
      int64_t f = rng->NextInt(0, config_.flights - 1);
      int64_t c = rng->NextInt(0, config_.customers - 1);
      int64_t r = 1000000 + rng->NextInt(0, 1000000000);
      return std::make_unique<LoopTransaction>(
          "NewReservation",
          Subst("SELECT fa_seats_left FROM flight_avail WHERE fa_f_id = $0",
                {Lit(f)}),
          std::vector<LoopTransaction::PerRowQuery>{},
          std::vector<std::string>{},
          std::vector<std::string>{
              Subst("INSERT INTO reservation (r_id, r_c_id, r_f_id, r_seat) "
                    "VALUES ($0, $1, $2, $3)",
                    {Lit(r), Lit(c), Lit(f), Lit(rng->NextInt(1, 200))}),
              Subst("UPDATE flight_avail SET fa_seats_left = fa_seats_left - "
                    "1 WHERE fa_f_id = $0",
                    {Lit(f)})});
    }
    default: {
      int64_t c = rng->NextInt(0, config_.customers - 1);
      return std::make_unique<LoopTransaction>(
          "UpdateCustomer",
          Subst("UPDATE customer SET c_balance = c_balance + $0 WHERE c_id = "
                "$1",
                {Lit(Value::Double(rng->NextDouble() * 100)), Lit(c)}),
          std::vector<LoopTransaction::PerRowQuery>{});
    }
  }
}

}  // namespace chrono::workloads
