#ifndef CHRONOCACHE_WORKLOADS_AUCTIONMARK_H_
#define CHRONOCACHE_WORKLOADS_AUCTIONMARK_H_

#include <memory>

#include "workloads/workload.h"

namespace chrono::workloads {

/// \brief AuctionMark workload [18]: an online auction site with an 85%
/// read mix, infrequently repeated point queries (low LRU hit rates,
/// §6.5), frequent item/bid updates, and the CloseAuctions transaction
/// extended — as in the paper — with a per-seller average-feedback query
/// over the last 30 days: an aggregate with a per-loop constant, the
/// pattern only full ChronoCache can prefetch.
class AuctionMarkWorkload : public Workload {
 public:
  struct Config {
    int64_t users = 2000;
    int64_t items = 30000;
    int64_t bids_per_item = 3;
    int64_t feedback_per_user = 8;
    int64_t end_dates = 600;
    uint64_t seed = 17;
  };

  AuctionMarkWorkload() : AuctionMarkWorkload(Config{}) {}
  explicit AuctionMarkWorkload(Config config);

  std::string name() const override { return "auctionmark"; }
  void Populate(db::Database* db) override;
  std::unique_ptr<TransactionProgram> NextTransaction(Rng* rng) override;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace chrono::workloads

#endif  // CHRONOCACHE_WORKLOADS_AUCTIONMARK_H_
