#ifndef CHRONOCACHE_WORKLOADS_WIKIPEDIA_H_
#define CHRONOCACHE_WORKLOADS_WIKIPEDIA_H_

#include <memory>

#include "workloads/workload.h"

namespace chrono::workloads {

/// \brief Wikipedia workload [18]: dominated (92%) by the
/// GetPageAnonymous transaction — a chain of dependent point lookups
/// (page -> restrictions/revision -> text) over pages drawn from a
/// Zipf(rho=1) popularity distribution, plus an 8% page-update write mix.
class WikipediaWorkload : public Workload {
 public:
  struct Config {
    int64_t pages = 20000;  // paper: 100,000 (scaled)
    int64_t users = 10000;  // paper: 200,000 (scaled)
    double zipf_rho = 1.0;
    uint64_t seed = 11;
  };

  WikipediaWorkload() : WikipediaWorkload(Config{}) {}
  explicit WikipediaWorkload(Config config);

  std::string name() const override { return "wikipedia"; }
  void Populate(db::Database* db) override;
  std::unique_ptr<TransactionProgram> NextTransaction(Rng* rng) override;

  const Config& config() const { return config_; }

 private:
  Config config_;
  ZipfGenerator zipf_;
};

}  // namespace chrono::workloads

#endif  // CHRONOCACHE_WORKLOADS_WIKIPEDIA_H_
