#ifndef CHRONOCACHE_WORKLOADS_WORKLOAD_H_
#define CHRONOCACHE_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "sql/result_set.h"
#include "sql/value.h"

namespace chrono::workloads {

/// \brief A resumable transaction: the experiment harness calls Next() with
/// the previous statement's result set (nullptr on the first call) and
/// submits the returned SQL; nullopt ends the transaction. This models a
/// client application whose later queries are computed from earlier
/// results — the query patterns ChronoCache learns and exploits.
class TransactionProgram {
 public:
  virtual ~TransactionProgram() = default;

  virtual std::optional<std::string> Next(const sql::ResultSet* prev) = 0;

  /// Transaction type label for metrics.
  virtual const char* name() const = 0;
};

/// \brief A benchmark workload: schema + data population plus a stream of
/// transaction programs drawn according to the workload mix.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Creates tables and loads the initial data set (deterministic).
  virtual void Populate(db::Database* db) = 0;

  /// Draws the next transaction for one client.
  virtual std::unique_ptr<TransactionProgram> NextTransaction(Rng* rng) = 0;
};

// ---- SQL text helpers used by all workload generators -------------------

/// Renders a value as a SQL literal.
std::string Lit(const sql::Value& v);
std::string Lit(int64_t v);
std::string Lit(const std::string& v);

/// Substitutes "$0".."$9" in `pattern` with the given pre-rendered pieces.
std::string Subst(const std::string& pattern,
                  const std::vector<std::string>& args);

/// \brief Generic scripted transaction: an initial query, then for each row
/// of its result a fixed set of per-row queries (parameterised by row
/// column values and optional per-loop constants), then optional trailing
/// statements. Covers the loop patterns of Figs. 1 and 4; transactions
/// with bespoke control flow implement TransactionProgram directly.
class LoopTransaction : public TransactionProgram {
 public:
  struct PerRowQuery {
    /// Pattern with $0..$k substituted by the named driver columns, then
    /// per-loop constants appended to the argument list.
    std::string pattern;
    std::vector<std::string> driver_columns;
  };

  LoopTransaction(const char* name, std::string driver_sql,
                  std::vector<PerRowQuery> per_row,
                  std::vector<std::string> loop_constants = {},
                  std::vector<std::string> trailing = {});

  std::optional<std::string> Next(const sql::ResultSet* prev) override;
  const char* name() const override { return name_; }

 private:
  const char* name_;
  std::string driver_sql_;
  std::vector<PerRowQuery> per_row_;
  std::vector<std::string> loop_constants_;  // pre-rendered literals
  std::vector<std::string> trailing_;

  enum class Phase { kDriver, kLoop, kTrailing, kDone };
  Phase phase_ = Phase::kDriver;
  sql::ResultSet driver_result_;
  size_t row_ = 0;
  size_t query_in_row_ = 0;
  size_t trailing_index_ = 0;
};

/// \brief Two-level nested loop: a driver query, one level-1 query per
/// driver row, and a set of level-2 queries per row of each level-1 result
/// (TPC-E Customer-Position's accounts -> holdings -> last-trade chain).
/// Exercises ChronoCache's hierarchical dependency graphs (§2.1).
class NestedLoopTransaction : public TransactionProgram {
 public:
  NestedLoopTransaction(const char* name, std::string driver_sql,
                        LoopTransaction::PerRowQuery level1,
                        std::vector<LoopTransaction::PerRowQuery> level2,
                        std::vector<std::string> loop_constants = {});

  std::optional<std::string> Next(const sql::ResultSet* prev) override;
  const char* name() const override { return name_; }

 private:
  const char* name_;
  std::string driver_sql_;
  LoopTransaction::PerRowQuery level1_;
  std::vector<LoopTransaction::PerRowQuery> level2_;
  std::vector<std::string> loop_constants_;

  enum class Phase { kDriver, kLevel1, kLevel2, kDone };
  Phase phase_ = Phase::kDriver;
  bool driver_captured_ = false;
  sql::ResultSet driver_result_;
  sql::ResultSet level1_result_;
  size_t driver_row_ = 0;
  size_t level1_row_ = 0;
  size_t level2_query_ = 0;

  std::optional<std::string> IssueLevel1();
  std::optional<std::string> AdvanceLevel2();
};

}  // namespace chrono::workloads

#endif  // CHRONOCACHE_WORKLOADS_WORKLOAD_H_
