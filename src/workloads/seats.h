#ifndef CHRONOCACHE_WORKLOADS_SEATS_H_
#define CHRONOCACHE_WORKLOADS_SEATS_H_

#include <memory>

#include "workloads/workload.h"

namespace chrono::workloads {

/// \brief SEATS airline-ticketing workload [18]: conditional customer
/// access paths (id / frequent-flyer / login — the branching patterns of
/// §6.4), the FindFlights loop over candidate flights with a per-loop
/// constant travel date, and a 20% booking write mix that frequently
/// updates the flight-availability table.
class SeatsWorkload : public Workload {
 public:
  struct Config {
    int64_t customers = 4000;
    int64_t flights = 4000;
    int64_t routes = 400;
    int64_t airlines = 50;
    int64_t days = 30;
    /// Rows inserted per logical key (customer/flight/availability/airline).
    /// Values > 1 widen every point-lookup result without changing the query
    /// mix — serve_bench --payload-rows uses this to scale payload sizes.
    int64_t rows_per_key = 1;
    uint64_t seed = 13;
  };

  SeatsWorkload() : SeatsWorkload(Config{}) {}
  explicit SeatsWorkload(Config config);

  std::string name() const override { return "seats"; }
  void Populate(db::Database* db) override;
  std::unique_ptr<TransactionProgram> NextTransaction(Rng* rng) override;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace chrono::workloads

#endif  // CHRONOCACHE_WORKLOADS_SEATS_H_
