#include "cache/lru_cache.h"

#include <iterator>

namespace chrono::cache {

LruCache::LruCache(size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

const CachedResult* LruCache::Get(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  ++it->second->value.use_count;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->value;
}

const CachedResult* LruCache::Peek(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  return &it->second->value;
}

void LruCache::RemoveEntry(EntryList::iterator it, EvictReason reason) {
  if (on_evict_) on_evict_(it->key, it->value, it->bytes, reason);
  used_bytes_ -= it->bytes;
  map_.erase(it->key);
  lru_.erase(it);
}

void LruCache::Put(const std::string& key, CachedResult value) {
  size_t bytes = EntryBytes(key, value);
  if (bytes > capacity_bytes_) {
    // The new value can never fit; the old entry (if any) dies with it.
    auto it = map_.find(key);
    if (it != map_.end()) RemoveEntry(it->second, EvictReason::kReplaced);
    return;
  }
  auto it = map_.find(key);
  if (it != map_.end()) RemoveEntry(it->second, EvictReason::kReplaced);
  EvictToFit(bytes);
  lru_.push_front(Entry{key, std::move(value), bytes});
  map_[key] = lru_.begin();
  used_bytes_ += bytes;
}

bool LruCache::Erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  RemoveEntry(it->second, EvictReason::kErased);
  return true;
}

void LruCache::Clear() {
  if (on_evict_) {
    for (const Entry& entry : lru_) {
      on_evict_(entry.key, entry.value, entry.bytes, EvictReason::kCleared);
    }
  }
  lru_.clear();
  map_.clear();
  used_bytes_ = 0;
}

size_t LruCache::EntryBytes(const std::string& key,
                            const CachedResult& value) {
  // result_bytes was measured once when the payload was frozen; a shared
  // payload must never be re-walked here (EntryBytes runs on every Put).
  return key.size() + value.result_bytes +
         value.version.size() * sizeof(value.version[0]) + 64;
}

void LruCache::EvictToFit(size_t incoming_bytes) {
  while (!lru_.empty() && used_bytes_ + incoming_bytes > capacity_bytes_) {
    RemoveEntry(std::prev(lru_.end()), EvictReason::kCapacity);
    ++evictions_;
  }
}

}  // namespace chrono::cache
