#include "cache/lru_cache.h"

namespace chrono::cache {

LruCache::LruCache(size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

const CachedResult* LruCache::Get(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->value;
}

const CachedResult* LruCache::Peek(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  return &it->second->value;
}

void LruCache::Put(const std::string& key, CachedResult value) {
  size_t bytes = EntryBytes(key, value);
  if (bytes > capacity_bytes_) {
    Erase(key);
    return;
  }
  auto it = map_.find(key);
  if (it != map_.end()) {
    used_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    map_.erase(it);
  }
  EvictToFit(bytes);
  lru_.push_front(Entry{key, std::move(value), bytes});
  map_[key] = lru_.begin();
  used_bytes_ += bytes;
}

bool LruCache::Erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  used_bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void LruCache::Clear() {
  lru_.clear();
  map_.clear();
  used_bytes_ = 0;
}

size_t LruCache::EntryBytes(const std::string& key,
                            const CachedResult& value) const {
  return key.size() + value.result.ByteSize() +
         value.version.size() * sizeof(value.version[0]) + 64;
}

void LruCache::EvictToFit(size_t incoming_bytes) {
  while (!lru_.empty() && used_bytes_ + incoming_bytes > capacity_bytes_) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.bytes;
    map_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace chrono::cache
