#ifndef CHRONOCACHE_CACHE_LRU_MAP_H_
#define CHRONOCACHE_CACHE_LRU_MAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/stats.h"

namespace chrono::cache {

/// \brief Entry-count-bounded LRU map. Unlike LruCache (byte-accounted,
/// result-set specific), this is a generic memoization structure for the
/// query hot path: the database's statement (parse) cache and the
/// middleware's template cache are both instances. Lookups refresh recency;
/// inserts evict the least recently used entry once `capacity` is reached.
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class LruMap {
 public:
  explicit LruMap(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the cached value or nullptr, counting a hit/miss and
  /// refreshing recency on hit. The pointer is valid until the next Put.
  const V* Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      counters_.RecordMiss();
      return nullptr;
    }
    counters_.RecordHit();
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Side-effect-free lookup: no recency refresh, no counters.
  const V* Peek(const K& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second->second;
  }

  /// Inserts or replaces; evicts the LRU entry when full. Returns a pointer
  /// to the stored value (valid until the next Put).
  const V* Put(K key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return &it->second->second;
    }
    if (map_.size() >= capacity_) {
      map_.erase(entries_.back().first);
      entries_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    entries_.emplace_front(std::move(key), std::move(value));
    map_.emplace(entries_.front().first, entries_.begin());
    return &entries_.front().second;
  }

  void Clear() {
    entries_.clear();
    map_.clear();
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  const CacheCounters& counters() const { return counters_; }
  /// Relaxed-atomic read: safe for metric callbacks that race with a
  /// writer holding the map's external lock (same contract as counters()).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  using Entry = std::pair<K, V>;
  size_t capacity_;
  std::list<Entry> entries_;  // front = most recent
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash, Eq> map_;
  CacheCounters counters_;
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace chrono::cache

#endif  // CHRONOCACHE_CACHE_LRU_MAP_H_
