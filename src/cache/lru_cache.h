#ifndef CHRONOCACHE_CACHE_LRU_CACHE_H_
#define CHRONOCACHE_CACHE_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sql/result_set.h"

namespace chrono::cache {

/// \brief Sparse version vector (§5.2): (relation id, observed version)
/// pairs covering exactly the relations the cached query accessed.
using VersionVector = std::vector<std::pair<int, uint64_t>>;

/// \brief A cached query result plus the metadata the session-semantics and
/// access-control layers need: the database version vector at caching time,
/// the caching client's security group (§5.2.1), and the middleware node id
/// (multi-node deployments must not share results across nodes, §5.2).
///
/// The payload is an immutable, shared `ResultSet`: a cache hit hands the
/// same `shared_ptr` to every reader (a ref-count bump, not a deep copy),
/// so the rows must never be mutated after publication. `result_bytes` is
/// the payload's footprint measured exactly once at SetResult time — the
/// byte accounting must not re-walk a shared payload on every lookup.
struct CachedResult {
  std::shared_ptr<const sql::ResultSet> result;
  size_t result_bytes = 0;
  VersionVector version;
  int security_group = 0;
  int node_id = 0;

  /// Adopts an already-shared immutable payload, measuring it once.
  void SetResult(std::shared_ptr<const sql::ResultSet> shared) {
    result_bytes = shared ? shared->ByteSize() : 0;
    result = std::move(shared);
  }

  /// Freezes `rows` into a shared immutable payload (the only copy/move
  /// the result ever sees on its way into the cache).
  void SetResult(sql::ResultSet rows) {
    SetResult(std::make_shared<const sql::ResultSet>(std::move(rows)));
  }

  // Prefetch provenance for hit attribution (observability layer): the
  // combined-plan id that installed this entry ahead of demand and the
  // transition-graph edge source template that predicted it. Both zero
  // for demand-filled entries; prefetch_src stays zero when the entry's
  // template was a root (text-dependency) node of the plan.
  uint64_t prefetch_plan = 0;
  uint64_t prefetch_src = 0;
  // Full lifecycle attribution (prefetch-efficacy audit): the entry's
  // statement template, the owner's clock at install time, and how many
  // hits the entry served (Get() increments; Peek() does not). Together
  // with the eviction callback these let the journal distinguish
  // evicted-unused from evicted-after-use and compute time-to-first-use.
  uint64_t tmpl = 0;
  uint64_t install_us = 0;
  uint32_t use_count = 0;
};

/// Why an entry left the cache (passed to the eviction callback).
enum class EvictReason {
  kCapacity = 0,  // LRU victim of a byte-budget eviction
  kReplaced,      // overwritten by a Put on the same key
  kErased,        // explicit Erase (the server's staleness invalidation)
  kCleared,       // bulk Clear
};

/// \brief Observer for every entry removal, with the entry's full
/// attribution still intact. Invoked synchronously inside the mutating
/// call — for ShardedCache that means *under the owning shard's mutex*
/// (a leaf lock), so callbacks must be lock-free-cheap (journal Record,
/// counter bumps) and must never reenter the cache.
using EvictionCallback = std::function<void(
    const std::string& key, const CachedResult& value, size_t bytes,
    EvictReason reason)>;

/// \brief Byte-accounted LRU key-value store standing in for Memcached:
/// the paper uses Memcached purely as a get/set result cache with a fixed
/// memory budget.
class LruCache {
 public:
  /// `capacity_bytes` caps the sum of entry footprints (key + result set).
  explicit LruCache(size_t capacity_bytes);

  /// Installs the removal observer (replacing any previous one). Fires
  /// for capacity evictions, same-key overwrites, Erase and Clear; see
  /// EvictionCallback for the locking contract.
  void SetEvictionCallback(EvictionCallback callback) {
    on_evict_ = std::move(callback);
  }

  /// Returns the entry or nullptr. A hit refreshes LRU recency and
  /// increments the entry's use_count.
  const CachedResult* Get(const std::string& key);

  /// Side-effect-free lookup: no recency update, no hit/miss accounting.
  /// Used by the §5.1 redundancy check, which must not perturb the cache.
  const CachedResult* Peek(const std::string& key) const;

  bool Contains(const std::string& key) const { return map_.count(key) > 0; }

  /// Inserts or replaces; evicts LRU entries to fit. An entry larger than
  /// the whole cache is dropped immediately.
  void Put(const std::string& key, CachedResult value);

  /// Removes an entry if present; returns whether it existed.
  bool Erase(const std::string& key);

  void Clear();

  size_t entry_count() const { return map_.size(); }
  size_t used_bytes() const { return used_bytes_; }
  size_t capacity_bytes() const { return capacity_bytes_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  /// The byte footprint charged for an entry — public and static so the
  /// journal can record install sizes that match eviction-callback sizes.
  static size_t EntryBytes(const std::string& key, const CachedResult& value);

 private:
  struct Entry {
    std::string key;
    CachedResult value;
    size_t bytes;
  };
  using EntryList = std::list<Entry>;

  void EvictToFit(size_t incoming_bytes);
  /// Unlinks `it`'s entry, notifying the callback with `reason`.
  void RemoveEntry(EntryList::iterator it, EvictReason reason);

  size_t capacity_bytes_;
  size_t used_bytes_ = 0;
  EntryList lru_;  // front = most recent
  std::unordered_map<std::string, EntryList::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  EvictionCallback on_evict_;
};

}  // namespace chrono::cache

#endif  // CHRONOCACHE_CACHE_LRU_CACHE_H_
