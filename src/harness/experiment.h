#ifndef CHRONOCACHE_HARNESS_EXPERIMENT_H_
#define CHRONOCACHE_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/stats.h"
#include "core/middleware.h"
#include "net/fault_injector.h"
#include "net/latency_model.h"
#include "workloads/workload.h"

namespace chrono::harness {

/// \brief One experiment deployment: N simulated clients driving a
/// workload through M middleware nodes against one remote database, all in
/// virtual time (§6 methodology: warm-up phase, empty cache at measurement
/// start is modelled by measuring from a cold cache; response times are
/// collected per query).
struct ExperimentConfig {
  int clients = 10;
  int nodes = 1;
  core::MiddlewareConfig middleware;  // per-node template
  net::LatencyModel latency;
  int db_workers = 16;
  SimTime warmup = 20 * kMicrosPerSecond;
  SimTime duration = 60 * kMicrosPerSecond;
  SimTime think_time = 5 * kMicrosPerMilli;  // client pause between txns
  SimTime timeline_bucket = 10 * kMicrosPerSecond;  // Fig. 9b resolution
  uint64_t seed = 1;
  int security_groups = 1;  // clients assigned round-robin (§5.2.1)
  /// Deterministic backend fault schedule (error rate, latency spikes,
  /// blackout windows) applied to every database submission. Disabled by
  /// default; see net::FaultOptions.
  net::FaultOptions fault;
  /// When non-empty, every node's prefetch/request lifecycle is mirrored
  /// into an event journal (virtual timestamps) and persisted here after
  /// the run — the file feeds tools/chrono_audit. With RunRepeated the
  /// file holds the last run.
  std::string journal_out;
};

struct ExperimentResult {
  double avg_response_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double cache_hit_rate = 0;
  uint64_t queries_measured = 0;
  uint64_t transactions = 0;
  uint64_t errors = 0;
  std::string first_error;
  uint64_t db_requests = 0;
  core::MiddlewareMetrics metrics;  // summed across nodes
  /// (bucket start in seconds, average response ms) from time zero —
  /// includes the warm-up so learning curves are visible (Fig. 9b).
  std::vector<std::pair<double, double>> timeline;
  /// Per-transaction-type breakdown over the measurement window:
  /// (transaction name, mean query latency ms, queries measured).
  std::vector<std::tuple<std::string, double, uint64_t>> by_transaction;
  /// Journal records persisted to ExperimentConfig::journal_out (0 when
  /// journalling was off).
  uint64_t journal_events = 0;
  /// Backend calls failed by the fault injector (0 with faults disabled).
  uint64_t faults_injected = 0;
};

/// Runs one seeded experiment end to end.
ExperimentResult RunExperiment(
    const std::function<std::unique_ptr<workloads::Workload>()>& make_workload,
    const ExperimentConfig& config);

/// Aggregate of repeated runs with different seeds (§6: five runs, 95% CI).
struct RepeatedResult {
  SampleStats response_ms;
  SampleStats hit_rate;
  SampleStats db_requests;
  ExperimentResult last;  // one full run for detail inspection
};

RepeatedResult RunRepeated(
    const std::function<std::unique_ptr<workloads::Workload>()>& make_workload,
    ExperimentConfig config, int runs);

}  // namespace chrono::harness

#endif  // CHRONOCACHE_HARNESS_EXPERIMENT_H_
