#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "db/database.h"
#include "obs/journal.h"
#include "sim/event_queue.h"

namespace chrono::harness {

namespace {

/// One simulated client: draws transactions from the workload and issues
/// their statements sequentially, pausing `think_time` between
/// transactions. Collects per-query response times.
class Client {
 public:
  struct Shared {
    EventQueue* events;
    workloads::Workload* workload;
    const ExperimentConfig* config;
    SampleStats* samples;
    std::map<int64_t, SampleStats>* timeline;
    std::map<std::string, SampleStats>* by_transaction;
    uint64_t* transactions;
    uint64_t* errors;
    std::string* first_error;
  };

  Client(int id, int security_group, core::Middleware* node, Shared shared,
         uint64_t seed)
      : id_(id),
        security_group_(security_group),
        node_(node),
        shared_(shared),
        rng_(seed) {}

  void Start() { BeginTransaction(); }

 private:
  void BeginTransaction() {
    tx_ = shared_.workload->NextTransaction(&rng_);
    ++(*shared_.transactions);
    Step(nullptr);
  }

  void Step(const sql::ResultSet* prev) {
    auto sql_text = tx_->Next(prev);
    if (!sql_text.has_value()) {
      tx_.reset();
      shared_.events->ScheduleAfter(shared_.config->think_time,
                                    [this](SimTime) { BeginTransaction(); });
      return;
    }
    SimTime submitted = shared_.events->now();
    node_->SubmitQuery(
        id_, security_group_, std::move(*sql_text),
        [this, submitted](SimTime now, const Result<sql::ResultSet>& result) {
          OnResponse(submitted, now, result);
        });
  }

  void OnResponse(SimTime submitted, SimTime now,
                  const Result<sql::ResultSet>& result) {
    double ms = static_cast<double>(now - submitted) /
                static_cast<double>(kMicrosPerMilli);
    if (submitted >= shared_.config->warmup) {
      shared_.samples->Add(ms);
      if (tx_ != nullptr) (*shared_.by_transaction)[tx_->name()].Add(ms);
    }
    int64_t bucket = now / shared_.config->timeline_bucket;
    (*shared_.timeline)[bucket].Add(ms);
    if (!result.ok()) {
      ++(*shared_.errors);
      if (shared_.first_error->empty()) {
        *shared_.first_error = result.status().ToString();
      }
      tx_.reset();
      shared_.events->ScheduleAfter(shared_.config->think_time,
                                    [this](SimTime) { BeginTransaction(); });
      return;
    }
    Step(&result.value());
  }

  int id_;
  int security_group_;
  core::Middleware* node_;
  Shared shared_;
  Rng rng_;
  std::unique_ptr<workloads::TransactionProgram> tx_;
};

}  // namespace

ExperimentResult RunExperiment(
    const std::function<std::unique_ptr<workloads::Workload>()>& make_workload,
    const ExperimentConfig& config) {
  EventQueue events;
  db::Database database;
  auto workload = make_workload();
  workload->Populate(&database);

  core::RemoteDbServer remote(&events, &database, config.latency,
                              config.db_workers);
  net::FaultInjector fault(config.fault);
  if (fault.enabled()) remote.SetFaultInjector(&fault);

  std::vector<std::unique_ptr<core::Middleware>> nodes;
  for (int n = 0; n < config.nodes; ++n) {
    core::MiddlewareConfig mw = config.middleware;
    mw.node_id = n;
    mw.multi_node = config.nodes > 1;
    mw.Finalize();
    // Capability overrides set by ablation benches survive Finalize only
    // when mode is kChrono; copy the explicit switches back.
    mw.enable_learning = config.middleware.enable_learning &&
                         mw.enable_learning;
    mw.enable_loops = config.middleware.enable_loops && mw.enable_loops;
    mw.enable_loop_constants =
        config.middleware.enable_loop_constants && mw.enable_loop_constants;
    mw.enable_combining =
        config.middleware.enable_combining && mw.enable_combining;
    mw.share_across_clients =
        config.middleware.share_across_clients && mw.share_across_clients;
    nodes.push_back(std::make_unique<core::Middleware>(
        &events, &remote, config.latency, mw));
  }

  // Optional prefetch-efficacy journal: the sim mirrors the runtime's
  // lifecycle events with virtual timestamps. The whole simulation runs on
  // this thread, so manual draining (drain_interval_ms = 0) keeps the
  // journal entirely deterministic; the buffer is drained to the file sink
  // once at the end.
  std::unique_ptr<obs::JournalFileSink> journal_sink;
  std::unique_ptr<obs::EventJournal> journal;
  if (!config.journal_out.empty()) {
    journal_sink = obs::JournalFileSink::Open(config.journal_out);
    if (journal_sink == nullptr) {
      std::fprintf(stderr, "warning: cannot open journal file %s\n",
                   config.journal_out.c_str());
    } else {
      obs::EventJournal::Options options;
      options.buffer_events = 1 << 20;  // sized to hold a full run
      options.drain_interval_ms = 0;    // manual drain, deterministic
      journal = std::make_unique<obs::EventJournal>(options);
      journal->AddSink(journal_sink.get());
      for (auto& node : nodes) node->AttachJournal(journal.get());
    }
  }

  SampleStats samples;
  std::map<int64_t, SampleStats> timeline;
  std::map<std::string, SampleStats> by_transaction;
  uint64_t transactions = 0;
  uint64_t errors = 0;
  std::string first_error;

  Client::Shared shared{&events,         workload.get(), &config, &samples,
                        &timeline,       &by_transaction, &transactions,
                        &errors,         &first_error};

  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < config.clients; ++c) {
    int node = c % config.nodes;
    int group = c % std::max(1, config.security_groups);
    clients.push_back(std::make_unique<Client>(
        c, group, nodes[static_cast<size_t>(node)].get(), shared,
        config.seed * 1000003 + static_cast<uint64_t>(c)));
  }
  for (auto& client : clients) client->Start();

  events.RunUntil(config.warmup + config.duration);

  ExperimentResult result;
  if (journal != nullptr) {
    journal->Stop();  // final drain into the file sink
    journal_sink->Flush();
    result.journal_events = journal_sink->events_written();
    if (journal->events_dropped() > 0) {
      std::fprintf(stderr, "warning: journal dropped %llu events\n",
                   static_cast<unsigned long long>(journal->events_dropped()));
    }
  }
  result.avg_response_ms = samples.Mean();
  result.p50_ms = samples.Percentile(0.5);
  result.p95_ms = samples.Percentile(0.95);
  result.queries_measured = samples.count();
  result.transactions = transactions;
  result.errors = errors;
  result.first_error = first_error;
  result.db_requests = remote.requests();
  for (const auto& node : nodes) {
    const auto& m = node->metrics();
    result.metrics.reads += m.reads;
    result.metrics.writes += m.writes;
    result.metrics.cache_hits += m.cache_hits;
    result.metrics.cache_rejects += m.cache_rejects;
    result.metrics.remote_plain += m.remote_plain;
    result.metrics.remote_combined += m.remote_combined;
    result.metrics.predictions_cached += m.predictions_cached;
    result.metrics.prediction_fallbacks += m.prediction_fallbacks;
    result.metrics.redundant_skips += m.redundant_skips;
    result.metrics.inflight_joins += m.inflight_joins;
    result.metrics.sequential_prefetches += m.sequential_prefetches;
    result.metrics.cascaded_fires += m.cascaded_fires;
    result.metrics.backend_retries += m.backend_retries;
  }
  result.faults_injected = fault.faults_injected();
  result.cache_hit_rate = result.metrics.CacheHitRate();
  for (const auto& [name, stats] : by_transaction) {
    result.by_transaction.emplace_back(name, stats.Mean(),
                                       static_cast<uint64_t>(stats.count()));
  }
  for (const auto& [bucket, stats] : timeline) {
    result.timeline.emplace_back(
        static_cast<double>(bucket) *
            static_cast<double>(config.timeline_bucket) /
            static_cast<double>(kMicrosPerSecond),
        stats.Mean());
  }
  return result;
}

RepeatedResult RunRepeated(
    const std::function<std::unique_ptr<workloads::Workload>()>& make_workload,
    ExperimentConfig config, int runs) {
  RepeatedResult out;
  for (int r = 0; r < runs; ++r) {
    config.seed = static_cast<uint64_t>(r + 1) * 7919;
    ExperimentResult result = RunExperiment(make_workload, config);
    out.response_ms.Add(result.avg_response_ms);
    out.hit_rate.Add(result.cache_hit_rate);
    out.db_requests.Add(static_cast<double>(result.db_requests));
    out.last = std::move(result);
  }
  return out;
}

}  // namespace chrono::harness
