#include "sim/resource.h"

#include <cassert>
#include <utility>

namespace chrono {

Resource::Resource(EventQueue* queue, int workers)
    : queue_(queue), workers_(workers) {
  assert(workers > 0);
}

void Resource::Submit(SimTime service_time,
                      std::function<void(SimTime)> done) {
  Job job{service_time, std::move(done)};
  if (busy_ < workers_) {
    StartJob(std::move(job));
  } else {
    waiting_.push_back(std::move(job));
  }
}

void Resource::StartJob(Job job) {
  ++busy_;
  total_busy_time_ += job.service_time;
  auto done = std::move(job.done);
  queue_->ScheduleAfter(job.service_time, [this, done](SimTime now) {
    --busy_;
    if (!waiting_.empty()) {
      Job next = std::move(waiting_.front());
      waiting_.pop_front();
      StartJob(std::move(next));
    }
    done(now);
  });
}

}  // namespace chrono
