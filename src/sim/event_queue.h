#ifndef CHRONOCACHE_SIM_EVENT_QUEUE_H_
#define CHRONOCACHE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace chrono {

/// Virtual time in microseconds since the start of a simulation run.
using SimTime = int64_t;

constexpr SimTime kMicrosPerMilli = 1000;
constexpr SimTime kMicrosPerSecond = 1000 * 1000;

/// \brief Deterministic discrete-event simulator core. Events are closures
/// scheduled at virtual timestamps; ties are broken by insertion order so
/// runs are bit-reproducible.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime now)>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `cb` to fire at absolute virtual time `when` (clamped to now).
  void ScheduleAt(SimTime when, Callback cb);

  /// Schedules `cb` to fire `delay` microseconds from now.
  void ScheduleAfter(SimTime delay, Callback cb);

  /// Runs events until the queue is empty or virtual time reaches `until`.
  /// Events scheduled at exactly `until` are executed.
  void RunUntil(SimTime until);

  /// Runs all pending events to completion.
  void RunAll();

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // tie-break: FIFO among same-time events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace chrono

#endif  // CHRONOCACHE_SIM_EVENT_QUEUE_H_
