#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace chrono {

void EventQueue::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void EventQueue::ScheduleAfter(SimTime delay, Callback cb) {
  assert(delay >= 0);
  ScheduleAt(now_ + delay, std::move(cb));
}

void EventQueue::RunUntil(SimTime until) {
  while (!heap_.empty() && heap_.top().when <= until) {
    // priority_queue::top() is const; move out via const_cast on the
    // callback only after copying the header fields.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.cb(now_);
  }
  if (now_ < until) now_ = until;
}

void EventQueue::RunAll() {
  while (!heap_.empty()) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.cb(now_);
  }
}

}  // namespace chrono
