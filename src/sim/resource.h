#ifndef CHRONOCACHE_SIM_RESOURCE_H_
#define CHRONOCACHE_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_queue.h"

namespace chrono {

/// \brief A finite-capacity server pool in virtual time (e.g. the database's
/// worker threads or a middleware node's CPU). Work items queue FIFO when all
/// workers are busy; this is what produces the contention behaviour behind
/// the paper's scalability experiment (Fig. 10c).
class Resource {
 public:
  /// `workers` parallel servers draining a shared FIFO queue.
  Resource(EventQueue* queue, int workers);

  /// Submits a job requiring `service_time` microseconds of a worker.
  /// `done` fires when the job completes (after queueing + service).
  void Submit(SimTime service_time, std::function<void(SimTime now)> done);

  int workers() const { return workers_; }
  int busy() const { return busy_; }
  size_t queue_length() const { return waiting_.size(); }

  /// Total busy time accumulated across workers (for utilisation reports).
  SimTime total_busy_time() const { return total_busy_time_; }

 private:
  struct Job {
    SimTime service_time;
    std::function<void(SimTime)> done;
  };

  void StartJob(Job job);

  EventQueue* queue_;
  int workers_;
  int busy_ = 0;
  SimTime total_busy_time_ = 0;
  std::deque<Job> waiting_;
};

}  // namespace chrono

#endif  // CHRONOCACHE_SIM_RESOURCE_H_
