#include "wire/wire_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "net/socket_util.h"
#include "obs/journal.h"
#include "obs/threads.h"

namespace chrono::wire {

namespace {

/// FormatDouble-equivalent for the JSON document: fixed 6 digits is fine
/// for microsecond latencies and keeps the output locale-independent.
std::string JsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

/// `now_us` (server clock) relative to the trace's start, clamped so the
/// next appended span can never run backwards past the spans already
/// tiled — total_us is always the end of the last span.
uint64_t RelSince(uint64_t now_us, const obs::RequestTrace& trace) {
  uint64_t rel = now_us > trace.start_us ? now_us - trace.start_us : 0;
  return rel < trace.total_us ? trace.total_us : rel;
}

}  // namespace

WireServer::WireServer(runtime::ChronoServer* server, Options options)
    : server_(server),
      options_(std::move(options)),
      completions_mutex_(server_->contention() != nullptr
                             ? server_->contention()->Site("wire.completions")
                             : nullptr) {
  obs::MetricsRegistry* registry = server_->registry();
  if (registry != nullptr) {
    active_gauge_ = registry->GetGauge(
        "chrono_wire_connections",
        "Current wire connections by state.", {{"state", "active"}});
    accepted_counter_ = registry->GetCounter(
        "chrono_wire_connections_accepted_total",
        "Wire connections accepted since start.");
    rejected_counter_ = registry->GetCounter(
        "chrono_wire_connections_rejected_total",
        "Wire connections refused at the max_connections admission cap.");
    const char* closed_help = "Wire connections closed, by reason.";
    closed_client_counter_ =
        registry->GetCounter("chrono_wire_connections_closed_total",
                             closed_help, {{"reason", "client"}});
    closed_idle_counter_ =
        registry->GetCounter("chrono_wire_connections_closed_total",
                             closed_help, {{"reason", "idle"}});
    closed_error_counter_ =
        registry->GetCounter("chrono_wire_connections_closed_total",
                             closed_help, {{"reason", "error"}});
    const char* bytes_help = "Wire payload traffic in bytes, by direction.";
    bytes_in_counter_ = registry->GetCounter("chrono_wire_bytes_total",
                                             bytes_help, {{"direction", "in"}});
    bytes_out_counter_ = registry->GetCounter(
        "chrono_wire_bytes_total", bytes_help, {{"direction", "out"}});
    const char* frames_help = "Wire frames processed, by direction.";
    frames_in_counter_ = registry->GetCounter(
        "chrono_wire_frames_total", frames_help, {{"direction", "in"}});
    frames_out_counter_ = registry->GetCounter(
        "chrono_wire_frames_total", frames_help, {{"direction", "out"}});
    protocol_errors_counter_ = registry->GetCounter(
        "chrono_wire_protocol_errors_total",
        "Malformed or oversized frames that forced a connection close.");
    latency_hist_ = registry->GetHistogram(
        "chrono_wire_request_latency_us",
        "Wire request latency in microseconds: frame decoded to response "
        "frame queued for the socket.");
  }
}

WireServer::~WireServer() { Stop(); }

uint64_t WireServer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status WireServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("wire server already running");
  }
  Result<int> listen =
      net::ListenTcp(options_.host, options_.port, /*backlog=*/512, &port_);
  if (!listen.ok()) return listen.status();
  listen_fd_ = *listen;
  Status nonblocking = net::SetNonBlocking(listen_fd_);
  if (!nonblocking.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return nonblocking;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return Status::Internal("wire: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered for listener and wakeups
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  {
    std::lock_guard<obs::TimedMutex> lock(completions_mutex_);
    completions_open_ = true;
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void WireServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<obs::TimedMutex> lock(completions_mutex_);
    completions_open_ = false;
    completions_.clear();
  }
  ::close(epoll_fd_);
  ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
  port_ = 0;
}

void WireServer::Loop() {
  obs::ThreadLease lease(obs::ThreadRole::kIo, "chrono-wire-io");
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  // Wake up at least this often to run idle-timeout sweeps.
  const int tick_ms =
      options_.idle_timeout_ms > 0
          ? std::max(10, options_.idle_timeout_ms / 4)
          : 500;
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      if (fd == listen_fd_) {
        AcceptAll();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this batch
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(conn, CloseReason::kClient);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
      if (conn->dead.load(std::memory_order_relaxed)) continue;
      if (events[i].events & EPOLLIN) HandleReadable(conn);
    }
    // Completions can also arrive while we were busy with socket events.
    DrainCompletions();
    CloseIdleConns();
  }
  GracefulDrain();
}

void WireServer::AcceptAll() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listener is gone
    }
    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      // Admission control: answer with one Error frame, then close. The
      // socket is new and its buffer empty, so a best-effort blocking-ish
      // send of a tiny frame is safe.
      std::string frame = EncodeError(
          0, Status::Unavailable("server at max_connections; try later"));
      net::SendAll(fd, frame.data(), frame.size());
      ::close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (rejected_counter_) rejected_counter_->Increment();
      continue;
    }
    net::SetNoDelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->last_activity_us = NowMicros();
    conn->connected_us = conn->last_activity_us;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, conn);
    active_.fetch_add(1, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (accepted_counter_) accepted_counter_->Increment();
    if (active_gauge_) {
      active_gauge_->Set(static_cast<double>(conns_.size()));
    }
  }
}

void WireServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  if (conn->stopped_reading || conn->draining) return;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      if (bytes_in_counter_) {
        bytes_in_counter_->Increment(static_cast<uint64_t>(n));
      }
      conn->last_activity_us = NowMicros();
      if (!DrainInbuf(conn)) return;  // connection closed
      if (conn->stopped_reading) return;  // backpressure kicked in
      continue;
    }
    if (n == 0) {
      CloseConn(conn, CloseReason::kClient);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // ET: fully read
    CloseConn(conn, CloseReason::kError);
    return;
  }
}

bool WireServer::DrainInbuf(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    // Trace origin for any Query this iteration decodes: the timeline's
    // wire-decode span starts here. Server clock — every span timestamp
    // shares ChronoServer::NowMicros() (DESIGN.md §15).
    const uint64_t decode_start_us = server_->NowMicros();
    Frame frame;
    size_t consumed = 0;
    Status error;
    DecodeStatus status =
        DecodeFrame(conn->inbuf.data(), conn->inbuf.size(),
                    options_.max_frame_bytes, &frame, &consumed, &error);
    if (status == DecodeStatus::kNeedMore) {
      // Arm the read deadline while an incomplete frame sits in the
      // buffer: a slowloris trickling one byte per tick refreshes
      // last_activity_us but not this anchor (§17).
      if (!conn->inbuf.empty()) {
        if (conn->partial_since_us == 0) {
          conn->partial_since_us = NowMicros();
        }
      } else {
        conn->partial_since_us = 0;
      }
      return true;
    }
    if (status == DecodeStatus::kError) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      if (protocol_errors_counter_) protocol_errors_counter_->Increment();
      ProtocolError(conn, 0, error);
      return false;
    }
    conn->inbuf.erase(0, consumed);
    conn->partial_since_us = 0;
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (frames_in_counter_) frames_in_counter_->Increment();

    const uint64_t request_id = frame.header.request_id;
    if (!conn->hello_done && frame.header.type != MessageType::kHello) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      if (protocol_errors_counter_) protocol_errors_counter_->Increment();
      ProtocolError(conn, request_id,
                    Status::InvalidArgument("first frame must be Hello"));
      return false;
    }
    switch (frame.header.type) {
      case MessageType::kHello: {
        Result<HelloBody> hello = DecodeHello(frame.payload);
        if (!hello.ok()) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          if (protocol_errors_counter_) protocol_errors_counter_->Increment();
          ProtocolError(conn, request_id, hello.status());
          return false;
        }
        conn->client_id = hello->client_id;
        conn->security_group = hello->security_group;
        // Version negotiation: speak min(client, server) for the rest of
        // the connection. The echoed Hello carries the negotiated version
        // so the client learns what the server settled on.
        conn->version = std::min(frame.header.version, kProtocolVersion);
        conn->hello_done = true;
        // Echo the Hello as the acknowledgement; the client waits for it
        // before pipelining queries.
        SendFrame(conn, EncodeHello(request_id, *hello, conn->version));
        break;
      }
      case MessageType::kQuery: {
        Result<QueryBody> query =
            DecodeQuery(frame.payload, frame.header.flags);
        if (!query.ok()) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          if (protocol_errors_counter_) protocol_errors_counter_->Increment();
          ProtocolError(conn, request_id, query.status());
          return false;
        }
        // Brownout admission (§17): the deepest two rungs reject work at
        // the frontend, before it can occupy a pool slot. The connection
        // stays open — the Error carries a Retry-After hint (v2 peers) so
        // the client backs off instead of hammering.
        const auto level = server_->brownout_level();
        uint64_t shed_reason = 0;
        bool shed = false;
        if (level >= runtime::BrownoutController::Level::kRejectQuery) {
          // Work-conserving admission: the deepest rung turns away new
          // Querys only while a demand backlog actually exists. Once the
          // drain catches up, requests trickle in at service rate with
          // near-zero queue wait instead of bouncing off a closed door
          // until the ladder walks back down — the reject rung caps the
          // backlog rather than gating on the (lagging) sampled level.
          const runtime::ThreadPool& pool = server_->pool();
          if (pool.lane_depth(runtime::ThreadPool::Lane::kDemand) >=
              static_cast<size_t>(pool.workers())) {
            shed = true;
            shed_reason = obs::kOverloadShedAdmission;
          }
        }
        if (!shed &&
            level >= runtime::BrownoutController::Level::kShedPipeline &&
            conn->inflight >= 1) {
          // Pipelined frames beyond the one in flight are over-limit.
          shed = true;
          shed_reason = obs::kOverloadShedPipeline;
        }
        if (shed) {
          const uint32_t retry_after = server_->brownout_retry_after_ms();
          overload_rejects_.fetch_add(1, std::memory_order_relaxed);
          server_->RecordOverloadShed(
              shed_reason, static_cast<runtime::ClientId>(conn->client_id),
              retry_after);
          SendFrame(conn,
                    EncodeError(request_id,
                                Status::Unavailable(
                                    "server overloaded; retry later"),
                                kFlagRetryAfter, retry_after,
                                conn->version));
          break;
        }
        DispatchQuery(conn, request_id, std::move(query->sql),
                      decode_start_us,
                      (frame.header.flags & kFlagTraced) != 0,
                      query->deadline_ms);
        break;
      }
      case MessageType::kPing: {
        SendFrame(conn, EncodePing(request_id, conn->version));
        break;
      }
      case MessageType::kGoodbye: {
        // Clean shutdown: stop reading, flush what is queued, close.
        conn->draining = true;
        SendFrame(conn, EncodeGoodbye(request_id, conn->version));
        if (conn->inflight == 0 && conn->out_offset >= conn->outbuf.size()) {
          CloseConn(conn, CloseReason::kClient);
        }
        return !conn->dead.load(std::memory_order_relaxed);
      }
      case MessageType::kResult:
      case MessageType::kError: {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        if (protocol_errors_counter_) protocol_errors_counter_->Increment();
        ProtocolError(conn, request_id,
                      Status::InvalidArgument(
                          "clients may not send Result/Error frames"));
        return false;
      }
    }
    if (conn->dead.load(std::memory_order_relaxed)) return false;
    UpdateReadInterest(conn);
    if (conn->stopped_reading) return true;
  }
}

void WireServer::DispatchQuery(const std::shared_ptr<Conn>& conn,
                               uint64_t request_id, std::string sql,
                               uint64_t decode_start_us, bool traced,
                               uint32_t deadline_ms) {
  ++conn->inflight;
  const uint64_t t0 = NowMicros();
  const auto client = static_cast<runtime::ClientId>(conn->client_id);
  const int group = conn->security_group;
  const uint8_t version = conn->version;
  runtime::ChronoServer::WireTiming timing;
  timing.decode_start_us = decode_start_us;
  timing.dispatch_us = server_->NowMicros();
  timing.traced = traced;
  if (deadline_ms > 0) {
    // The client's patience is measured from frame decode: everything the
    // server spends — queueing, retries, the backend — counts against it.
    timing.deadline_us =
        decode_start_us + static_cast<uint64_t>(deadline_ms) * 1000;
  }
  // ChronoServer::SubmitAsync blocks while the pool queue is full — that
  // (plus the per-conn pipeline cap) is the dispatch-side backpressure.
  // The callback runs on a worker thread: it encodes the response frame
  // and records latency off the IO thread, then posts the completion.
  // The trace it receives is still unpublished; the IO thread closes the
  // completion-wait and response-flush spans before PublishTrace.
  server_->SubmitAsync(
      client, std::move(sql), group, timing,
      [this, conn, request_id, t0,
       version](Result<runtime::SharedResult> result,
                std::shared_ptr<obs::RequestTrace> trace) {
        std::string frame;
        uint8_t ok_flag = 0;
        if (result.ok()) {
          frame = EncodeResult(request_id, **result, 0, version);
          ok_flag = obs::kJournalFlagOk;
        } else {
          // Expired-in-queue rejections carry kFlagExpired (v2): the
          // request never executed, as opposed to running out of time
          // mid-flight. v1 peers just see kDeadlineExceeded.
          uint16_t flags =
              runtime::ChronoServer::IsExpiredInQueue(result.status())
                  ? kFlagExpired
                  : 0;
          frame = EncodeError(request_id, result.status(), flags,
                              /*retry_after_ms=*/0, version);
        }
        const uint64_t latency_us = NowMicros() - t0;
        requests_.fetch_add(1, std::memory_order_relaxed);
        if (latency_hist_) latency_hist_->Record(latency_us);
        if (obs::EventJournal* journal = server_->journal()) {
          obs::JournalEvent event;
          event.type = obs::JournalEventType::kWireRequest;
          event.client = static_cast<uint32_t>(conn->client_id);
          event.a = latency_us;
          event.b = frame.size();
          event.flags = ok_flag;
          journal->Record(event);
        }
        std::lock_guard<obs::TimedMutex> lock(completions_mutex_);
        if (!completions_open_) return;  // server already stopped
        completions_.push_back(
            Completion{conn, std::move(frame), std::move(trace)});
        // The wakeup happens under the lock so Stop() (which flips
        // completions_open_ under the same lock after joining the IO
        // thread) can never close wake_fd_ concurrently with this write.
        uint64_t one = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
      });
}

void WireServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<obs::TimedMutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    const std::shared_ptr<Conn>& conn = completion.conn;
    if (conn->inflight > 0) --conn->inflight;
    if (completion.trace != nullptr) {
      // The worker queued this response at the trace's current total_us;
      // it reached the IO thread now. That gap is the completion-wait
      // span (encode + queue + eventfd wakeup).
      obs::RequestTrace& trace = *completion.trace;
      uint64_t drain_rel = RelSince(server_->NowMicros(), trace);
      trace.spans.push_back({obs::Stage::kCompletionWait, trace.total_us,
                             drain_rel - trace.total_us});
      trace.total_us = drain_rel;
    }
    if (conn->dead.load(std::memory_order_relaxed)) {
      // No socket left to flush through: close the timeline here.
      if (completion.trace != nullptr) {
        FinalizeTrace(std::move(completion.trace));
      }
      continue;
    }
    if (completion.trace != nullptr) {
      // Watermark = outbuf bytes once this frame is appended; the flush
      // span closes when sent_total catches up (FinalizeFlushed).
      conn->pending_traces.push_back(
          {conn->enqueued_total + completion.frame.size(),
           std::move(completion.trace)});
    }
    SendFrame(conn, std::move(completion.frame));
    if (conn->dead.load(std::memory_order_relaxed)) continue;
    if (conn->draining && conn->inflight == 0 &&
        conn->out_offset >= conn->outbuf.size()) {
      CloseConn(conn, CloseReason::kClient);
      continue;
    }
    UpdateReadInterest(conn);
  }
}

void WireServer::SendFrame(const std::shared_ptr<Conn>& conn,
                           std::string frame) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  // Compact the sent prefix occasionally so outbuf does not grow without
  // bound across a long-lived connection.
  if (conn->out_offset > 0 && conn->out_offset == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_offset = 0;
  } else if (conn->out_offset > (1u << 20)) {
    conn->outbuf.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (frames_out_counter_) frames_out_counter_->Increment();
  conn->enqueued_total += frame.size();
  conn->outbuf += frame;
  FlushOut(conn);
}

void WireServer::FinalizeFlushed(const std::shared_ptr<Conn>& conn) {
  while (!conn->pending_traces.empty() &&
         conn->pending_traces.front().watermark <= conn->sent_total) {
    FinalizeTrace(std::move(conn->pending_traces.front().trace));
    conn->pending_traces.pop_front();
  }
}

void WireServer::FinalizeTrace(std::shared_ptr<obs::RequestTrace> trace) {
  obs::RequestTrace& t = *trace;
  uint64_t flush_rel = RelSince(server_->NowMicros(), t);
  t.spans.push_back({obs::Stage::kResponseFlush, t.total_us,
                     flush_rel - t.total_us});
  t.total_us = flush_rel;
  server_->PublishTrace(std::move(trace));
}

bool WireServer::FlushOut(const std::shared_ptr<Conn>& conn) {
  while (conn->out_offset < conn->outbuf.size()) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_offset,
                       conn->outbuf.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      conn->sent_total += static_cast<uint64_t>(n);
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      if (bytes_out_counter_) {
        bytes_out_counter_->Increment(static_cast<uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        EpollMod(*conn);
      }
      FinalizeFlushed(conn);
      return true;
    }
    CloseConn(conn, CloseReason::kError);
    return false;
  }
  // Fully flushed: compact and disarm EPOLLOUT.
  conn->outbuf.clear();
  conn->out_offset = 0;
  if (conn->want_write) {
    conn->want_write = false;
    EpollMod(*conn);
  }
  FinalizeFlushed(conn);
  return true;
}

void WireServer::HandleWritable(const std::shared_ptr<Conn>& conn) {
  if (!FlushOut(conn)) return;
  conn->last_activity_us = NowMicros();
  if (conn->draining && conn->inflight == 0 &&
      conn->out_offset >= conn->outbuf.size()) {
    CloseConn(conn, CloseReason::kClient);
    return;
  }
  UpdateReadInterest(conn);
}

void WireServer::UpdateReadInterest(const std::shared_ptr<Conn>& conn) {
  if (conn->dead.load(std::memory_order_relaxed) || conn->draining) return;
  const size_t queued = conn->outbuf.size() - conn->out_offset;
  const bool should_stop =
      conn->inflight >= options_.max_pipeline ||
      queued > options_.write_buffer_limit_bytes;
  if (should_stop == conn->stopped_reading) return;
  conn->stopped_reading = should_stop;
  EpollMod(*conn);
  if (!should_stop) {
    // Frames may have finished buffering while reads were off; the edge
    // will not re-fire for bytes already in inbuf, so drain now.
    DrainInbuf(conn);
  }
}

bool WireServer::EpollMod(const Conn& conn) {
  epoll_event ev{};
  ev.events = EPOLLET;
  if (!conn.stopped_reading && !conn.draining) ev.events |= EPOLLIN;
  if (conn.want_write) ev.events |= EPOLLOUT;
  ev.data.fd = conn.fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0;
}

void WireServer::ProtocolError(const std::shared_ptr<Conn>& conn,
                               uint64_t request_id, const Status& status) {
  // Best-effort: queue the Error frame, try to flush it, then close. A
  // peer that already vanished just skips to the close.
  if (!conn->dead.load(std::memory_order_relaxed)) {
    std::string frame =
        EncodeError(request_id, status, 0, 0, conn->version);
    conn->enqueued_total += frame.size();
    conn->outbuf += frame;
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    if (frames_out_counter_) frames_out_counter_->Increment();
    FlushOut(conn);
  }
  if (!conn->dead.load(std::memory_order_relaxed)) {
    CloseConn(conn, CloseReason::kError);
  }
}

void WireServer::CloseConn(const std::shared_ptr<Conn>& conn,
                           CloseReason reason) {
  if (conn->dead.exchange(true, std::memory_order_acq_rel)) return;
  // Account before close(): once the fd closes a test's client sees EOF
  // and may read stats() immediately.
  active_.fetch_sub(1, std::memory_order_relaxed);
  switch (reason) {
    case CloseReason::kClient:
      closed_by_client_.fetch_add(1, std::memory_order_relaxed);
      if (closed_client_counter_) closed_client_counter_->Increment();
      break;
    case CloseReason::kIdle:
      closed_by_idle_.fetch_add(1, std::memory_order_relaxed);
      if (closed_idle_counter_) closed_idle_counter_->Increment();
      break;
    case CloseReason::kError:
      closed_by_error_.fetch_add(1, std::memory_order_relaxed);
      if (closed_error_counter_) closed_error_counter_->Increment();
      break;
    case CloseReason::kShutdown:
      // Server-initiated drain; not a client or error close.
      break;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  if (active_gauge_) active_gauge_->Set(static_cast<double>(conns_.size()));
  // Responses that never fully flushed still carry a finished pipeline:
  // publish their timelines ending now rather than dropping them.
  while (!conn->pending_traces.empty()) {
    FinalizeTrace(std::move(conn->pending_traces.front().trace));
    conn->pending_traces.pop_front();
  }
}

void WireServer::CloseIdleConns() {
  const uint64_t now = NowMicros();
  const uint64_t idle_limit =
      static_cast<uint64_t>(options_.idle_timeout_ms) * 1000;
  const uint64_t hello_limit =
      static_cast<uint64_t>(options_.handshake_timeout_ms) * 1000;
  const uint64_t read_limit =
      static_cast<uint64_t>(options_.read_timeout_ms) * 1000;
  if (idle_limit == 0 && hello_limit == 0 && read_limit == 0) return;
  // Collect first: CloseConn mutates conns_. Slowloris peers — stuck
  // before Hello or dribbling a frame one byte at a time — are reaped
  // like idle ones (§17): activity refreshes last_activity_us but not
  // the handshake/partial-frame anchors.
  std::vector<std::shared_ptr<Conn>> doomed;
  for (const auto& [fd, conn] : conns_) {
    if (idle_limit > 0 && conn->inflight == 0 &&
        now - conn->last_activity_us > idle_limit) {
      doomed.push_back(conn);
      continue;
    }
    if (hello_limit > 0 && !conn->hello_done &&
        now - conn->connected_us > hello_limit) {
      doomed.push_back(conn);
      continue;
    }
    if (read_limit > 0 && conn->partial_since_us != 0 &&
        now - conn->partial_since_us > read_limit) {
      doomed.push_back(conn);
    }
  }
  for (const auto& conn : doomed) CloseConn(conn, CloseReason::kIdle);
}

void WireServer::GracefulDrain() {
  // 1. Stop admitting: close the listener.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  ::close(listen_fd_);
  // 2. Stop reading everywhere — no new requests can arrive.
  for (const auto& [fd, conn] : conns_) {
    conn->draining = true;
    EpollMod(*conn);
  }
  // 3. Let in-flight requests finish and their responses flush.
  const uint64_t deadline =
      NowMicros() + static_cast<uint64_t>(options_.drain_timeout_ms) * 1000;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  for (;;) {
    bool pending = false;
    for (const auto& [fd, conn] : conns_) {
      if (conn->inflight > 0 || conn->out_offset < conn->outbuf.size()) {
        pending = true;
        break;
      }
    }
    if (!pending || NowMicros() >= deadline) break;
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 50);
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it != conns_.end() && (events[i].events & EPOLLOUT)) {
        FlushOut(it->second);
      }
    }
    DrainCompletions();
  }
  // 4. Say Goodbye and close everything still open.
  std::vector<std::shared_ptr<Conn>> remaining;
  remaining.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) remaining.push_back(conn);
  for (const auto& conn : remaining) {
    if (!conn->dead.load(std::memory_order_relaxed)) {
      std::string bye = EncodeGoodbye(0, conn->version);
      net::SendAll(conn->fd, bye.data(), bye.size());
      frames_out_.fetch_add(1, std::memory_order_relaxed);
      if (frames_out_counter_) frames_out_counter_->Increment();
      bytes_out_.fetch_add(bye.size(), std::memory_order_relaxed);
      if (bytes_out_counter_) bytes_out_counter_->Increment(bye.size());
    }
    CloseConn(conn, CloseReason::kShutdown);
  }
  // Completions posted by workers that raced the drain: consume them so
  // the queue does not keep their Conn tokens (and payloads) alive.
  DrainCompletions();
}

WireServer::Stats WireServer::stats() const {
  Stats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.closed_by_client = closed_by_client_.load(std::memory_order_relaxed);
  out.closed_by_idle = closed_by_idle_.load(std::memory_order_relaxed);
  out.closed_by_error = closed_by_error_.load(std::memory_order_relaxed);
  out.active = active_.load(std::memory_order_relaxed);
  out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  out.frames_in = frames_in_.load(std::memory_order_relaxed);
  out.frames_out = frames_out_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.overload_rejects = overload_rejects_.load(std::memory_order_relaxed);
  if (latency_hist_ != nullptr) {
    obs::HistogramSnapshot hist = latency_hist_->Snapshot();
    out.p50_latency_us = hist.Percentile(0.5);
    out.p99_latency_us = hist.Percentile(0.99);
  }
  return out;
}

std::string WireServer::StatsJson() const {
  Stats s = stats();
  std::string out;
  out.reserve(512);
  out.append("{\"enabled\":true,\"connections\":{\"active\":")
      .append(std::to_string(s.active));
  out.append(",\"accepted\":").append(std::to_string(s.accepted));
  out.append(",\"rejected\":").append(std::to_string(s.rejected));
  out.append(",\"closed_by_client\":")
      .append(std::to_string(s.closed_by_client));
  out.append(",\"closed_by_idle\":").append(std::to_string(s.closed_by_idle));
  out.append(",\"closed_by_error\":")
      .append(std::to_string(s.closed_by_error));
  out.append("},\"bytes\":{\"in\":").append(std::to_string(s.bytes_in));
  out.append(",\"out\":").append(std::to_string(s.bytes_out));
  out.append("},\"frames\":{\"in\":").append(std::to_string(s.frames_in));
  out.append(",\"out\":").append(std::to_string(s.frames_out));
  out.append("},\"protocol_errors\":")
      .append(std::to_string(s.protocol_errors));
  out.append(",\"requests\":").append(std::to_string(s.requests));
  out.append(",\"overload_rejects\":")
      .append(std::to_string(s.overload_rejects));
  out.append(",\"p50_latency_us\":").append(JsonDouble(s.p50_latency_us));
  out.append(",\"p99_latency_us\":").append(JsonDouble(s.p99_latency_us));
  out.push_back('}');
  return out;
}

}  // namespace chrono::wire
