#ifndef CHRONOCACHE_WIRE_WIRE_SERVER_H_
#define CHRONOCACHE_WIRE_WIRE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/contention.h"
#include "obs/metrics.h"
#include "runtime/server.h"
#include "wire/protocol.h"

namespace chrono::wire {

/// \brief Event-driven TCP frontend for one runtime::ChronoServer
/// (DESIGN.md §13). A single epoll IO thread owns every connection:
/// edge-triggered, non-blocking sockets; per-connection read/write buffers
/// and protocol state. Decoded Query frames are dispatched to the server's
/// worker pool via ChronoServer::SubmitAsync; workers encode the response
/// off the IO thread and post it to a completion queue, waking the IO
/// thread through an eventfd — so a slow query never stalls the loop, and
/// pipelined requests on one connection complete out of order.
///
/// Flow control is two-sided per connection:
///   - inbound: a connection with >= max_pipeline requests in flight, or
///     whose output queue exceeds write_buffer_limit_bytes, stops being
///     read (EPOLLIN dropped) until responses drain — the kernel socket
///     buffer then backpressures the client;
///   - outbound: responses queue in userspace and flush on EPOLLOUT.
///
/// Admission and lifetime: at max_connections a new socket is answered
/// with one Error frame and closed. A connection idle longer than
/// idle_timeout_ms is closed. Stop() drains gracefully: the listener
/// closes, reads stop, in-flight requests finish and flush, then every
/// peer gets a Goodbye — so the owner can Drain() the journal afterwards
/// with recorded == drained intact.
class WireServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;               // 0 picks an ephemeral port
    int max_connections = 4096; // admission cap; beyond it: Error + close
    int max_pipeline = 128;     // per-conn in-flight request cap
    uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
    size_t write_buffer_limit_bytes = 4u << 20;  // stop reading above this
    int idle_timeout_ms = 60'000;   // 0 disables idle closes
    int drain_timeout_ms = 10'000;  // graceful-stop bound
    /// Slowloris reaping (§17): a connection that has not completed its
    /// Hello within handshake_timeout_ms, or that has held a partial
    /// frame in its input buffer longer than read_timeout_ms, is closed
    /// like an idle one — trickling bytes refreshes last_activity_us but
    /// not these deadlines. 0 disables each.
    int handshake_timeout_ms = 5'000;
    int read_timeout_ms = 10'000;
  };

  /// `server` must outlive the WireServer; its registry receives the
  /// chrono_wire_* metrics and its journal the kWireRequest events.
  WireServer(runtime::ChronoServer* server, Options options);
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Binds and starts the IO thread. Fails if already running.
  Status Start();

  /// Graceful drain and stop (see class comment). Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (useful with port 0); 0 when not running.
  int port() const { return port_; }

  /// Point-in-time connection/traffic aggregates (the /wire endpoint).
  struct Stats {
    uint64_t active = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;           // admission-capped
    uint64_t closed_by_client = 0;   // EOF or Goodbye
    uint64_t closed_by_idle = 0;
    uint64_t closed_by_error = 0;    // protocol/socket errors
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t protocol_errors = 0;
    uint64_t requests = 0;           // queries answered
    uint64_t overload_rejects = 0;   // Querys refused by the brownout ladder
    double p50_latency_us = 0;       // wire request latency
    double p99_latency_us = 0;
  };
  Stats stats() const;

  /// Renders stats() as the StatsServer /wire JSON document.
  std::string StatsJson() const;

 private:
  /// Per-connection state, owned by the IO thread. Workers only ever see
  /// a shared_ptr used as an identity token plus the atomic `dead` flag;
  /// every mutable field below is touched by the IO thread alone.
  struct Conn {
    int fd = -1;
    uint64_t client_id = 0;
    int32_t security_group = 0;
    /// Negotiated protocol version: min(client Hello, kProtocolVersion).
    /// Every frame sent on this connection is stamped with it — a v1
    /// client's strict decoder rejects v2 headers (see protocol.h).
    uint8_t version = kMinProtocolVersion;
    bool hello_done = false;
    bool stopped_reading = false;  // EPOLLIN currently dropped
    bool want_write = false;       // EPOLLOUT currently armed
    bool draining = false;         // Goodbye received: flush, then close
    std::string inbuf;
    std::string outbuf;            // bytes not yet accepted by the kernel
    size_t out_offset = 0;         // sent prefix of outbuf
    int inflight = 0;              // dispatched, response not yet queued
    uint64_t last_activity_us = 0;
    uint64_t connected_us = 0;     // accept time: handshake deadline anchor
    /// Set when a drain left a partial frame in inbuf (the read-deadline
    /// anchor); 0 while the buffer holds no incomplete frame.
    uint64_t partial_since_us = 0;
    std::atomic<bool> dead{false};  // set by IO thread; read by completions

    /// Cumulative bytes ever appended to / flushed from outbuf. A traced
    /// response is "on the wire" once sent_total reaches the enqueued_total
    /// watermark recorded when its frame was queued — that moment closes
    /// the trace's response-flush span (DESIGN.md §15).
    uint64_t enqueued_total = 0;
    uint64_t sent_total = 0;
    struct PendingTrace {
      uint64_t watermark = 0;  // enqueued_total after this response
      std::shared_ptr<obs::RequestTrace> trace;
    };
    std::deque<PendingTrace> pending_traces;  // watermark-ascending
  };

  /// One worker-produced response travelling back to the IO thread.
  struct Completion {
    std::shared_ptr<Conn> conn;
    std::string frame;
    /// The request's deferred timeline (null when tracing is off): the IO
    /// thread appends completion-wait and response-flush spans, then hands
    /// it to ChronoServer::PublishTrace.
    std::shared_ptr<obs::RequestTrace> trace;
  };

  void Loop();
  void AcceptAll();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void HandleWritable(const std::shared_ptr<Conn>& conn);
  /// Decodes and dispatches every complete frame in conn->inbuf. Returns
  /// false if the connection was closed.
  bool DrainInbuf(const std::shared_ptr<Conn>& conn);
  void DispatchQuery(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                     std::string sql, uint64_t decode_start_us, bool traced,
                     uint32_t deadline_ms);
  void DrainCompletions();
  /// Publishes every pending trace whose response bytes the kernel has
  /// accepted (sent_total crossed the watermark).
  void FinalizeFlushed(const std::shared_ptr<Conn>& conn);
  /// Appends the response-flush span ending now and publishes the trace.
  void FinalizeTrace(std::shared_ptr<obs::RequestTrace> trace);
  /// Appends a frame to the connection's output queue and flushes
  /// opportunistically.
  void SendFrame(const std::shared_ptr<Conn>& conn, std::string frame);
  /// Flushes outbuf into the socket; arms/disarms EPOLLOUT as needed.
  /// Returns false if the connection died on a write error.
  bool FlushOut(const std::shared_ptr<Conn>& conn);
  void UpdateReadInterest(const std::shared_ptr<Conn>& conn);
  enum class CloseReason { kClient, kIdle, kError, kShutdown };
  void CloseConn(const std::shared_ptr<Conn>& conn, CloseReason reason);
  /// Answers a protocol violation: one Error frame, then close.
  void ProtocolError(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                     const Status& status);
  void CloseIdleConns();
  void GracefulDrain();
  bool EpollMod(const Conn& conn);
  uint64_t NowMicros() const;

  runtime::ChronoServer* const server_;
  const Options options_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions + Stop()
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;

  /// IO-thread-only connection table (fd -> state).
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  /// Instrumented ("wire.completions") — worker callbacks and the IO
  /// thread meet here, so contention shows up in /contention under load.
  obs::TimedMutex completions_mutex_;
  std::vector<Completion> completions_;
  /// Guarded by completions_mutex_: false once Stop() has joined the IO
  /// thread, so a straggling worker callback never writes to a wake_fd_
  /// number the OS may have reused.
  bool completions_open_ = false;

  // Aggregates. Written by the IO thread (and workers for latency/request
  // counts); all relaxed atomics, read by stats().
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> closed_by_client_{0};
  std::atomic<uint64_t> closed_by_idle_{0};
  std::atomic<uint64_t> closed_by_error_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> overload_rejects_{0};

  // Registry instruments (owned by the server's registry).
  obs::Gauge* active_gauge_ = nullptr;
  obs::Counter* accepted_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* closed_client_counter_ = nullptr;
  obs::Counter* closed_idle_counter_ = nullptr;
  obs::Counter* closed_error_counter_ = nullptr;
  obs::Counter* bytes_in_counter_ = nullptr;
  obs::Counter* bytes_out_counter_ = nullptr;
  obs::Counter* frames_in_counter_ = nullptr;
  obs::Counter* frames_out_counter_ = nullptr;
  obs::Counter* protocol_errors_counter_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace chrono::wire

#endif  // CHRONOCACHE_WIRE_WIRE_SERVER_H_
