#ifndef CHRONOCACHE_WIRE_PROTOCOL_H_
#define CHRONOCACHE_WIRE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "sql/result_set.h"

namespace chrono::wire {

/// \brief The ChronoCache wire protocol (DESIGN.md §13): framed binary
/// messages over TCP. Every frame is a fixed 20-byte little-endian header
/// followed by `payload_len` bytes of typed payload:
///
///   offset  size  field
///        0     4  magic        0x43435750 — "CCWP" on the wire
///        4     1  version      kMinProtocolVersion..kProtocolVersion
///        5     1  type         MessageType
///        6     2  flags        per-type bits (kFlagStale on Result)
///        8     8  request_id   client-chosen; echoed on the response
///       16     4  payload_len  bytes following the header
///
/// Requests on one connection may be pipelined; responses carry the
/// request id they answer and may arrive in any order (the worker pool
/// completes them out of line). All integers are little-endian; strings
/// are a u32 length prefix plus raw bytes; rows reuse the sql::Value
/// tagged encoding (u8 Value::Type tag, then nothing / i64 / f64-bits /
/// string). A frame whose payload_len exceeds the negotiated cap, whose
/// magic or version is wrong, or whose payload does not parse is a
/// protocol error: the server answers with an Error frame (request id 0
/// if the header was unusable) and closes the connection.
///
/// Version negotiation (§17): the version byte on the client's Hello
/// advertises the highest protocol it speaks; the server echoes the Hello
/// stamped with min(client, server) and both sides speak that version for
/// the rest of the connection. Decoders accept the full supported range,
/// so a v1 client against a v2 server exchanges byte-identical v1 frames
/// and never sees the v2 additions (Query deadline_ms, Error retry-after).
enum class MessageType : uint8_t {
  kHello = 1,  // first frame each way: client id + security group
  kQuery,      // SQL text; answered by kResult or kError
  kResult,     // result set for request_id
  kError,      // status code + message for request_id (or a protocol error)
  kPing,       // liveness probe; echoed verbatim by the server
  kGoodbye,    // clean shutdown: peer flushes and closes
};

inline constexpr uint32_t kMagic = 0x43435750u;  // "PWCC" LE -> "CCWP" bytes
/// Highest protocol this build speaks. v2 adds the optional Query
/// deadline_ms field and the Error retry-after hint, both flag-gated so a
/// v1 peer never has to parse them.
inline constexpr uint8_t kProtocolVersion = 2;
/// Lowest protocol still accepted on the wire (v1 clients are unaffected
/// by the v2 additions).
inline constexpr uint8_t kMinProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 20;
/// Default hard cap on one frame's payload. A Result frame larger than
/// this is a server bug or an attack, never a legitimate response.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Result frame flag: the payload is a version-stale cached entry served
/// under the §11 degradation ladder — fresh data was unavailable.
inline constexpr uint16_t kFlagStale = 1u << 0;

/// Query frame flag: the client asks the server to force-retain this
/// request's timeline in the tail reservoir (DESIGN.md §15) regardless of
/// how fast it turns out to be — the wire analogue of a sampled trace.
inline constexpr uint16_t kFlagTraced = 1u << 1;

/// Query frame flag (v2): the payload carries a trailing u32 deadline_ms —
/// the client's remaining patience measured from frame decode. The server
/// clamps its whole retry budget by it and rejects the request unexecuted
/// if it expires while queued (§17). v1 clients never set it.
inline constexpr uint16_t kFlagDeadline = 1u << 2;

/// Error frame flag (v2): the payload carries a trailing u32
/// retry_after_ms — a Retry-After-style backoff hint attached to brownout
/// rejections so well-behaved clients spread their retries (§17). Only
/// sent on connections that negotiated v2.
inline constexpr uint16_t kFlagRetryAfter = 1u << 0;

/// Error frame flag (v2): this request's deadline expired while it sat in
/// the server queue; it was rejected at dequeue without executing. The
/// status code is kDeadlineExceeded either way — the flag distinguishes
/// "never ran" from "ran out of time mid-flight".
inline constexpr uint16_t kFlagExpired = 1u << 1;

struct FrameHeader {
  uint32_t magic = kMagic;
  uint8_t version = kProtocolVersion;
  MessageType type = MessageType::kHello;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Hello payload, sent by the client and echoed (as acknowledgement) by
/// the server before any query is accepted.
struct HelloBody {
  uint64_t client_id = 0;
  int32_t security_group = 0;
};

/// Query payload: the SQL text plus the optional v2 deadline. deadline_ms
/// is 0 (no deadline) unless the frame carried kFlagDeadline.
struct QueryBody {
  std::string sql;
  uint32_t deadline_ms = 0;
};

/// Error payload: the carried Status plus the optional v2 additions.
struct ErrorBody {
  Status status = Status::OK();
  uint32_t retry_after_ms = 0;  // nonzero iff kFlagRetryAfter was set
  bool expired = false;         // kFlagExpired: rejected unexecuted
};

const char* MessageTypeName(MessageType type);

// --- Encoding (always produces a complete frame: header + payload) ------
//
// `version` stamps the frame header. The server answers a v1 client with
// v1 frames (its strict decoder rejects anything else); encoders refuse to
// emit v2-only fields on v1 frames by dropping them.

std::string EncodeHello(uint64_t request_id, const HelloBody& body,
                        uint8_t version = kProtocolVersion);
std::string EncodeQuery(uint64_t request_id, std::string_view sql,
                        uint16_t flags = 0, uint32_t deadline_ms = 0,
                        uint8_t version = kProtocolVersion);
std::string EncodeResult(uint64_t request_id, const sql::ResultSet& rows,
                         uint16_t flags = 0,
                         uint8_t version = kProtocolVersion);
std::string EncodeError(uint64_t request_id, const Status& status,
                        uint16_t flags = 0, uint32_t retry_after_ms = 0,
                        uint8_t version = kProtocolVersion);
std::string EncodePing(uint64_t request_id,
                       uint8_t version = kProtocolVersion);
std::string EncodeGoodbye(uint64_t request_id,
                          uint8_t version = kProtocolVersion);

// --- Incremental frame decoding ------------------------------------------

enum class DecodeStatus {
  kFrame,     // one complete frame extracted; *consumed advanced
  kNeedMore,  // the buffer holds a valid prefix; read more bytes
  kError,     // protocol violation; close the connection
};

/// Attempts to extract one frame from data[0..size). On kFrame, *frame is
/// filled and *consumed is the number of bytes eaten (header + payload).
/// On kError, *error describes the violation and the connection must be
/// torn down — resynchronising inside a byte stream is not possible.
/// `max_frame_bytes` caps payload_len (0 means kDefaultMaxFrameBytes).
DecodeStatus DecodeFrame(const char* data, size_t size,
                         uint32_t max_frame_bytes, Frame* frame,
                         size_t* consumed, Status* error);

// --- Typed payload decoding (strict: trailing payload bytes are errors) --

Result<HelloBody> DecodeHello(std::string_view payload);
/// Flags select the optional v2 fields: with kFlagDeadline the payload
/// must end in the u32 deadline_ms (and without it must not).
Result<QueryBody> DecodeQuery(std::string_view payload, uint16_t flags = 0);
Result<sql::ResultSet> DecodeResult(std::string_view payload);
/// Decodes an Error payload back into the Status (and v2 extras) it
/// carried, written to *decoded. The returned status is non-OK only when
/// the payload itself is malformed — Result<ErrorBody> holding a Status
/// would be ambiguous, hence the out-param.
Status DecodeError(std::string_view payload, uint16_t flags,
                   ErrorBody* decoded);

/// Status::Code <-> on-wire u8. Unknown wire codes decode as kInternal so
/// old clients survive new server codes.
uint8_t StatusCodeToWire(Status::Code code);
Status::Code WireToStatusCode(uint8_t wire);

}  // namespace chrono::wire

#endif  // CHRONOCACHE_WIRE_PROTOCOL_H_
