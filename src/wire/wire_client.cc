#include "wire/wire_client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "net/socket_util.h"

namespace chrono::wire {

WireClient::~WireClient() { Close(); }

Status WireClient::Connect(const std::string& host, int port,
                           uint64_t client_id, int32_t security_group,
                           int timeout_ms) {
  if (fd_ >= 0) return Status::Internal("wire client already connected");
  Result<int> fd = net::ConnectTcp(host, port, timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  net::SetNoDelay(fd_);
  inbuf_.clear();
  next_request_id_ = 1;
  version_ = kProtocolVersion;

  // The Hello advertises our highest version; the server echoes the Hello
  // stamped with the negotiated one: min(ours, its own).
  HelloBody hello;
  hello.client_id = client_id;
  hello.security_group = security_group;
  uint64_t id = next_request_id_++;
  Status sent = SendFrame(EncodeHello(id, hello));
  if (!sent.ok()) {
    Close();
    return sent;
  }
  Result<Frame> ack = ReadFrame(timeout_ms);
  if (!ack.ok()) {
    Close();
    return ack.status();
  }
  if (ack->header.type == MessageType::kError) {
    ErrorBody err;
    Status parsed = DecodeError(ack->payload, ack->header.flags, &err);
    Close();
    return parsed.ok() ? err.status
                       : Status::Internal("wire: malformed Error ack");
  }
  if (ack->header.type != MessageType::kHello ||
      ack->header.request_id != id) {
    Close();
    return Status::Internal("wire: handshake expected a Hello ack");
  }
  version_ = std::min(ack->header.version, kProtocolVersion);
  return Status::OK();
}

void WireClient::Close() {
  if (fd_ < 0) return;
  // Best-effort clean shutdown; the server counts this as closed_by_client.
  std::string bye = EncodeGoodbye(0, version_);
  net::SendAll(fd_, bye.data(), bye.size());
  ::close(fd_);
  fd_ = -1;
  inbuf_.clear();
}

Status WireClient::SendFrame(const std::string& frame) {
  if (fd_ < 0) return Status::Unavailable("wire client not connected");
  if (!net::SendAll(fd_, frame.data(), frame.size())) {
    return Status::Unavailable("wire: send failed (peer closed?)");
  }
  return Status::OK();
}

Status WireClient::SendRaw(const void* data, size_t size) {
  if (fd_ < 0) return Status::Unavailable("wire client not connected");
  if (!net::SendAll(fd_, data, size)) {
    return Status::Unavailable("wire: raw send failed");
  }
  return Status::OK();
}

Result<Frame> WireClient::ReadFrame(int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("wire client not connected");
  char buf[64 * 1024];
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    DecodeStatus status = DecodeFrame(inbuf_.data(), inbuf_.size(),
                                     max_frame_bytes_, &frame, &consumed,
                                     &error);
    if (status == DecodeStatus::kFrame) {
      inbuf_.erase(0, consumed);
      return frame;
    }
    if (status == DecodeStatus::kError) return error;

    int readable = net::PollReadable(fd_, timeout_ms);
    if (readable == 0) {
      return Status::DeadlineExceeded("wire: timed out waiting for a frame");
    }
    if (readable < 0) {
      return Status::Unavailable("wire: poll failed on the connection");
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Unavailable("wire: server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("wire: recv failed");
    }
    inbuf_.append(buf, static_cast<size_t>(n));
  }
}

Status WireClient::SendQuery(const std::string& sql, uint64_t* request_id,
                             uint16_t flags, uint32_t deadline_ms) {
  uint64_t id = next_request_id_++;
  Status sent = SendFrame(EncodeQuery(id, sql, flags, deadline_ms, version_));
  if (!sent.ok()) return sent;
  if (request_id != nullptr) *request_id = id;
  return Status::OK();
}

Result<WireClient::Response> WireClient::ReadResponse(int timeout_ms) {
  for (;;) {
    Result<Frame> frame = ReadFrame(timeout_ms);
    if (!frame.ok()) return frame.status();
    Response response;
    response.request_id = frame->header.request_id;
    response.flags = frame->header.flags;
    switch (frame->header.type) {
      case MessageType::kResult: {
        response.result = DecodeResult(frame->payload);
        return response;
      }
      case MessageType::kError: {
        ErrorBody err;
        Status parsed = DecodeError(frame->payload, frame->header.flags, &err);
        if (parsed.ok()) {
          response.result = err.status;
          response.retry_after_ms = err.retry_after_ms;
          response.expired = err.expired;
        } else {
          response.result = Status::Internal("wire: malformed Error frame");
        }
        return response;
      }
      case MessageType::kGoodbye: {
        response.goodbye = true;
        response.result = Status::Unavailable("wire: server said Goodbye");
        return response;
      }
      case MessageType::kPing: {
        continue;  // liveness echo; not a response
      }
      default:
        return Status::Internal("wire: unexpected frame type in response");
    }
  }
}

Result<sql::ResultSet> WireClient::Query(const std::string& sql,
                                         int timeout_ms, uint16_t flags,
                                         uint32_t deadline_ms) {
  uint64_t id = 0;
  Status sent = SendQuery(sql, &id, flags, deadline_ms);
  if (!sent.ok()) return sent;
  Result<Response> response = ReadResponse(timeout_ms);
  if (!response.ok()) return response.status();
  if (response->goodbye) return response->result.status();
  if (response->request_id != id) {
    return Status::Internal("wire: response id mismatch in simple mode");
  }
  return std::move(response->result);
}

Status WireClient::Ping(int timeout_ms) {
  uint64_t id = next_request_id_++;
  Status sent = SendFrame(EncodePing(id, version_));
  if (!sent.ok()) return sent;
  Result<Frame> frame = ReadFrame(timeout_ms);
  if (!frame.ok()) return frame.status();
  if (frame->header.type != MessageType::kPing ||
      frame->header.request_id != id) {
    return Status::Internal("wire: expected a Ping echo");
  }
  return Status::OK();
}

}  // namespace chrono::wire
