#ifndef CHRONOCACHE_WIRE_WIRE_CLIENT_H_
#define CHRONOCACHE_WIRE_WIRE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "sql/result_set.h"
#include "wire/protocol.h"

namespace chrono::wire {

/// \brief Blocking wire-protocol client: one TCP connection to a
/// WireServer. Connect() performs the Hello handshake; Query() is a
/// simple request–response round trip; SendQuery()/ReadResponse() expose
/// the pipelined form (many requests in flight, responses matched to
/// requests by id — possibly out of order, since the server completes
/// them on a worker pool). Not thread-safe: one thread per client, which
/// is exactly how serve_bench drives its connection fleet.
class WireClient {
 public:
  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects, sends Hello{client_id, security_group} and waits for the
  /// server's Hello acknowledgement.
  Status Connect(const std::string& host, int port, uint64_t client_id,
                 int32_t security_group = 0, int timeout_ms = 5000);

  /// Sends Goodbye and closes. Safe to call when not connected.
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// One decoded server response.
  struct Response {
    uint64_t request_id = 0;
    uint16_t flags = 0;
    /// kResult decodes into rows; kError carries the server's Status.
    Result<sql::ResultSet> result = Status::OK();
    bool goodbye = false;  // server said Goodbye: connection is draining
    /// kError extras (§17): the server's Retry-After hint when the
    /// brownout ladder refused admission, and whether a
    /// kDeadlineExceeded error means "expired while queued, never
    /// executed" (kFlagExpired) rather than mid-flight timeout.
    uint32_t retry_after_ms = 0;
    bool expired = false;
  };

  /// Simple mode: send one Query and block for its response (responses
  /// for other request ids are a protocol violation in this mode).
  /// `flags` are Query-frame bits (kFlagTraced forces tail retention of
  /// this request's server-side timeline). A nonzero `deadline_ms`
  /// propagates the client's remaining budget to the server (§17) —
  /// silently dropped when the negotiated protocol version is v1.
  Result<sql::ResultSet> Query(const std::string& sql,
                               int timeout_ms = 10'000, uint16_t flags = 0,
                               uint32_t deadline_ms = 0);

  /// Pipelined mode: enqueue a Query without waiting. Returns the
  /// request id that the matching Response will carry.
  Status SendQuery(const std::string& sql, uint64_t* request_id,
                   uint16_t flags = 0, uint32_t deadline_ms = 0);

  /// Blocks for the next response frame (any request id). Pings from the
  /// liveness probe are consumed transparently.
  Result<Response> ReadResponse(int timeout_ms = 10'000);

  /// Round-trips a Ping frame (liveness check).
  Status Ping(int timeout_ms = 5000);

  /// Raw socket access for protocol-robustness tests: send arbitrary
  /// bytes as-is (malformed frames, truncated headers).
  Status SendRaw(const void* data, size_t size);
  int fd() const { return fd_; }

  /// Protocol version negotiated at Connect: min(ours, server's). Frames
  /// sent after the handshake are stamped with it, and v2-only fields
  /// (deadline_ms) are dropped when it is 1.
  uint8_t negotiated_version() const { return version_; }

 private:
  /// Reads until one complete frame is decoded from inbuf_ + socket.
  Result<Frame> ReadFrame(int timeout_ms);
  Status SendFrame(const std::string& frame);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint8_t version_ = kProtocolVersion;
  std::string inbuf_;
  uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace chrono::wire

#endif  // CHRONOCACHE_WIRE_WIRE_CLIENT_H_
