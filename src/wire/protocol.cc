#include "wire/protocol.h"

#include <algorithm>
#include <cstring>

namespace chrono::wire {

namespace {

// Little-endian append/read helpers. The protocol is explicitly
// little-endian regardless of host order; byte-at-a-time assembly keeps
// the codec free of alignment and endianness assumptions.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutValue(std::string* out, const sql::Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case sql::Value::Type::kNull:
      break;
    case sql::Value::Type::kInt:
      PutU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case sql::Value::Type::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case sql::Value::Type::kString:
      PutString(out, v.AsString());
      break;
  }
}

/// Bounds-checked cursor over one frame payload. Every Read* returns
/// false instead of running off the end, so a malicious length prefix can
/// only ever fail the decode, never touch out-of-range memory.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool ReadValue(sql::Value* v) {
    uint8_t tag = 0;
    if (!ReadU8(&tag)) return false;
    switch (static_cast<sql::Value::Type>(tag)) {
      case sql::Value::Type::kNull:
        *v = sql::Value::Null();
        return true;
      case sql::Value::Type::kInt: {
        uint64_t raw = 0;
        if (!ReadU64(&raw)) return false;
        *v = sql::Value::Int(static_cast<int64_t>(raw));
        return true;
      }
      case sql::Value::Type::kDouble: {
        uint64_t bits = 0;
        if (!ReadU64(&bits)) return false;
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        *v = sql::Value::Double(d);
        return true;
      }
      case sql::Value::Type::kString: {
        std::string s;
        if (!ReadString(&s)) return false;
        *v = sql::Value::String(std::move(s));
        return true;
      }
    }
    return false;  // unknown tag
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

std::string EncodeFrame(MessageType type, uint16_t flags, uint64_t request_id,
                        std::string_view payload,
                        uint8_t version = kProtocolVersion) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  PutU32(&out, kMagic);
  PutU8(&out, version);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU16(&out, flags);
  PutU64(&out, request_id);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "hello";
    case MessageType::kQuery: return "query";
    case MessageType::kResult: return "result";
    case MessageType::kError: return "error";
    case MessageType::kPing: return "ping";
    case MessageType::kGoodbye: return "goodbye";
  }
  return "?";
}

std::string EncodeHello(uint64_t request_id, const HelloBody& body,
                        uint8_t version) {
  std::string payload;
  payload.reserve(12);
  PutU64(&payload, body.client_id);
  PutU32(&payload, static_cast<uint32_t>(body.security_group));
  return EncodeFrame(MessageType::kHello, 0, request_id, payload, version);
}

std::string EncodeQuery(uint64_t request_id, std::string_view sql,
                        uint16_t flags, uint32_t deadline_ms,
                        uint8_t version) {
  std::string payload;
  payload.reserve(8 + sql.size());
  PutString(&payload, sql);
  if (deadline_ms > 0 && version >= 2) {
    flags |= kFlagDeadline;
    PutU32(&payload, deadline_ms);
  } else {
    flags = static_cast<uint16_t>(flags & ~kFlagDeadline);
  }
  return EncodeFrame(MessageType::kQuery, flags, request_id, payload,
                     version);
}

std::string EncodeResult(uint64_t request_id, const sql::ResultSet& rows,
                         uint16_t flags, uint8_t version) {
  std::string payload;
  payload.reserve(64 + rows.ByteSize());
  PutU32(&payload, static_cast<uint32_t>(rows.column_count()));
  for (const std::string& column : rows.columns()) {
    PutString(&payload, column);
  }
  PutU32(&payload, static_cast<uint32_t>(rows.row_count()));
  for (const sql::Row& row : rows.rows()) {
    for (const sql::Value& v : row) PutValue(&payload, v);
  }
  return EncodeFrame(MessageType::kResult, flags, request_id, payload,
                     version);
}

std::string EncodeError(uint64_t request_id, const Status& status,
                        uint16_t flags, uint32_t retry_after_ms,
                        uint8_t version) {
  std::string payload;
  payload.reserve(9 + status.message().size());
  PutU8(&payload, StatusCodeToWire(status.code()));
  PutString(&payload, status.message());
  if (retry_after_ms > 0 && version >= 2) {
    flags |= kFlagRetryAfter;
    PutU32(&payload, retry_after_ms);
  } else {
    flags = static_cast<uint16_t>(flags & ~kFlagRetryAfter);
  }
  if (version < 2) flags = static_cast<uint16_t>(flags & ~kFlagExpired);
  return EncodeFrame(MessageType::kError, flags, request_id, payload,
                     version);
}

std::string EncodePing(uint64_t request_id, uint8_t version) {
  return EncodeFrame(MessageType::kPing, 0, request_id, {}, version);
}

std::string EncodeGoodbye(uint64_t request_id, uint8_t version) {
  return EncodeFrame(MessageType::kGoodbye, 0, request_id, {}, version);
}

DecodeStatus DecodeFrame(const char* data, size_t size,
                         uint32_t max_frame_bytes, Frame* frame,
                         size_t* consumed, Status* error) {
  if (max_frame_bytes == 0) max_frame_bytes = kDefaultMaxFrameBytes;
  if (size < kHeaderBytes) return DecodeStatus::kNeedMore;
  Reader reader(std::string_view(data, kHeaderBytes));
  FrameHeader header;
  uint8_t version = 0, type = 0;
  uint16_t flags_lo = 0, flags_hi = 0;
  uint8_t b0 = 0, b1 = 0;
  reader.ReadU32(&header.magic);
  reader.ReadU8(&version);
  reader.ReadU8(&type);
  reader.ReadU8(&b0);
  reader.ReadU8(&b1);
  flags_lo = b0;
  flags_hi = b1;
  header.flags = static_cast<uint16_t>(flags_lo | (flags_hi << 8));
  reader.ReadU64(&header.request_id);
  reader.ReadU32(&header.payload_len);
  if (header.magic != kMagic) {
    *error = Status::InvalidArgument("bad frame magic");
    return DecodeStatus::kError;
  }
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    *error = Status::Unsupported("unsupported protocol version " +
                                 std::to_string(version));
    return DecodeStatus::kError;
  }
  if (type < static_cast<uint8_t>(MessageType::kHello) ||
      type > static_cast<uint8_t>(MessageType::kGoodbye)) {
    *error = Status::InvalidArgument("unknown message type " +
                                     std::to_string(type));
    return DecodeStatus::kError;
  }
  header.version = version;
  header.type = static_cast<MessageType>(type);
  if (header.payload_len > max_frame_bytes) {
    *error = Status::InvalidArgument(
        "frame payload of " + std::to_string(header.payload_len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte cap");
    return DecodeStatus::kError;
  }
  if (size < kHeaderBytes + header.payload_len) return DecodeStatus::kNeedMore;
  frame->header = header;
  frame->payload.assign(data + kHeaderBytes, header.payload_len);
  *consumed = kHeaderBytes + header.payload_len;
  return DecodeStatus::kFrame;
}

Result<HelloBody> DecodeHello(std::string_view payload) {
  Reader reader(payload);
  HelloBody body;
  uint32_t group = 0;
  if (!reader.ReadU64(&body.client_id) || !reader.ReadU32(&group)) {
    return Malformed("hello truncated");
  }
  if (!reader.AtEnd()) return Malformed("hello has trailing bytes");
  body.security_group = static_cast<int32_t>(group);
  return body;
}

Result<QueryBody> DecodeQuery(std::string_view payload, uint16_t flags) {
  Reader reader(payload);
  QueryBody body;
  if (!reader.ReadString(&body.sql)) {
    return Malformed("query string truncated");
  }
  if (flags & kFlagDeadline) {
    if (!reader.ReadU32(&body.deadline_ms)) {
      return Malformed("query deadline truncated");
    }
  }
  if (!reader.AtEnd()) return Malformed("query has trailing bytes");
  return body;
}

Result<sql::ResultSet> DecodeResult(std::string_view payload) {
  Reader reader(payload);
  uint32_t column_count = 0;
  if (!reader.ReadU32(&column_count)) return Malformed("result truncated");
  std::vector<std::string> columns;
  // Reservation is bounded by the payload itself (each column name costs
  // at least 4 bytes), so a hostile count cannot balloon memory.
  columns.reserve(std::min<size_t>(column_count, payload.size() / 4 + 1));
  for (uint32_t i = 0; i < column_count; ++i) {
    std::string name;
    if (!reader.ReadString(&name)) return Malformed("column name truncated");
    columns.push_back(std::move(name));
  }
  sql::ResultSet rows(std::move(columns));
  uint32_t row_count = 0;
  if (!reader.ReadU32(&row_count)) return Malformed("row count truncated");
  for (uint32_t r = 0; r < row_count; ++r) {
    sql::Row row;
    row.reserve(column_count);
    for (uint32_t c = 0; c < column_count; ++c) {
      sql::Value v;
      if (!reader.ReadValue(&v)) return Malformed("row value truncated");
      row.push_back(std::move(v));
    }
    rows.AddRow(std::move(row));
  }
  if (!reader.AtEnd()) return Malformed("result has trailing bytes");
  return rows;
}

Status DecodeError(std::string_view payload, uint16_t flags,
                   ErrorBody* decoded) {
  Reader reader(payload);
  uint8_t code = 0;
  std::string message;
  if (!reader.ReadU8(&code) || !reader.ReadString(&message)) {
    return Malformed("error frame truncated");
  }
  decoded->retry_after_ms = 0;
  if (flags & kFlagRetryAfter) {
    if (!reader.ReadU32(&decoded->retry_after_ms)) {
      return Malformed("error retry-after truncated");
    }
  }
  decoded->expired = (flags & kFlagExpired) != 0;
  if (!reader.AtEnd()) return Malformed("error frame has trailing bytes");
  switch (WireToStatusCode(code)) {
    case Status::Code::kOk:
      return Malformed("error frame carrying OK");
    case Status::Code::kInvalidArgument:
      decoded->status = Status::InvalidArgument(std::move(message));
      break;
    case Status::Code::kNotFound:
      decoded->status = Status::NotFound(std::move(message));
      break;
    case Status::Code::kParseError:
      decoded->status = Status::ParseError(std::move(message));
      break;
    case Status::Code::kExecutionError:
      decoded->status = Status::ExecutionError(std::move(message));
      break;
    case Status::Code::kUnsupported:
      decoded->status = Status::Unsupported(std::move(message));
      break;
    case Status::Code::kInternal:
      decoded->status = Status::Internal(std::move(message));
      break;
    case Status::Code::kUnavailable:
      decoded->status = Status::Unavailable(std::move(message));
      break;
    case Status::Code::kDeadlineExceeded:
      decoded->status = Status::DeadlineExceeded(std::move(message));
      break;
  }
  return Status::OK();
}

uint8_t StatusCodeToWire(Status::Code code) {
  return static_cast<uint8_t>(code);
}

Status::Code WireToStatusCode(uint8_t wire) {
  if (wire > static_cast<uint8_t>(Status::Code::kDeadlineExceeded)) {
    return Status::Code::kInternal;
  }
  return static_cast<Status::Code>(wire);
}

}  // namespace chrono::wire
