#include "runtime/brownout.h"

#include <algorithm>

namespace chrono::runtime {

BrownoutController::BrownoutController(Options options)
    : options_(options) {
  if (options_.up_samples < 1) options_.up_samples = 1;
  if (options_.down_samples < 1) options_.down_samples = 1;
  if (options_.clear_ratio <= 0 || options_.clear_ratio > 1) {
    options_.clear_ratio = 0.5;
  }
}

const char* BrownoutController::LevelName(Level level) {
  switch (level) {
    case Level::kNormal: return "normal";
    case Level::kShedPrefetch: return "shed_prefetch";
    case Level::kShedPipeline: return "shed_pipeline";
    case Level::kRejectQuery: return "reject_query";
  }
  return "?";
}

uint32_t BrownoutController::RetryAfterMs() const {
  uint64_t target_ms = options_.queue_target_us / 1000;
  if (target_ms == 0) target_ms = 1;
  int lvl = level_.load(std::memory_order_relaxed);
  uint64_t hint = target_ms << (lvl < 0 ? 0 : lvl);
  return static_cast<uint32_t>(std::clamp<uint64_t>(hint, 10, 5000));
}

BrownoutController::Level BrownoutController::OnSample(uint64_t p99_us) {
  if (!enabled()) return Level::kNormal;
  int lvl = level_.load(std::memory_order_relaxed);
  int next = lvl;
  uint64_t clear_below = static_cast<uint64_t>(
      static_cast<double>(options_.queue_target_us) * options_.clear_ratio);
  if (p99_us > options_.queue_target_us) {
    clear_streak_ = 0;
    // Each further step needs its own full run of over-target samples, so
    // a single spike cannot ride the ladder to the top.
    if (++over_streak_ >= options_.up_samples && lvl < kLevelCount - 1) {
      next = lvl + 1;
      over_streak_ = 0;
    }
  } else if (p99_us < clear_below) {
    over_streak_ = 0;
    if (++clear_streak_ >= options_.down_samples && lvl > 0) {
      next = lvl - 1;
      clear_streak_ = 0;
    }
  } else {
    // Inside the hysteresis band: hold the level, reset both streaks.
    over_streak_ = 0;
    clear_streak_ = 0;
  }
  if (next != lvl) {
    if (listener_) {
      listener_(static_cast<Level>(next), static_cast<Level>(lvl), p99_us);
    }
    level_.store(next, std::memory_order_relaxed);
  }
  return static_cast<Level>(next);
}

uint64_t WindowedPercentile(const obs::HistogramSnapshot& prev,
                            const obs::HistogramSnapshot& cur, double q) {
  if (cur.count <= prev.count) return 0;
  obs::HistogramSnapshot window;
  window.count = cur.count - prev.count;
  window.sum = cur.sum >= prev.sum ? cur.sum - prev.sum : 0;
  window.buckets.reserve(cur.buckets.size());
  // Cumulative counts are monotone in time and prev's bucket list is a
  // subset of cur's (a bucket appears once its count advances), so the
  // prev cumulative at any bound is that of its last bucket at or below
  // the bound.
  size_t pi = 0;
  uint64_t prev_cum = 0;
  for (const obs::HistogramSnapshot::Bucket& b : cur.buckets) {
    while (pi < prev.buckets.size() &&
           prev.buckets[pi].upper_bound <= b.upper_bound) {
      prev_cum = prev.buckets[pi].cumulative;
      ++pi;
    }
    uint64_t cum =
        b.cumulative >= prev_cum ? b.cumulative - prev_cum : 0;
    window.buckets.push_back({b.upper_bound, cum});
  }
  return static_cast<uint64_t>(window.Percentile(q));
}

}  // namespace chrono::runtime
