#include "runtime/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/threads.h"

namespace chrono::runtime {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(to - from);
  return d.count() < 0 ? 0 : static_cast<uint64_t>(d.count());
}

}  // namespace

ThreadPool::ThreadPool(int workers, size_t queue_capacity,
                       size_t prefetch_capacity, obs::LockSite* queue_site)
    : capacity_(std::max<size_t>(queue_capacity, 1)),
      prefetch_capacity_(prefetch_capacity == 0 ? capacity_
                                                : prefetch_capacity),
      mutex_(queue_site) {
  int n = std::max(workers, 1);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::AttachMetrics(obs::Histogram* demand_wait_ns,
                               obs::Histogram* prefetch_wait_ns,
                               obs::Histogram* run_ns) {
  std::lock_guard<obs::TimedMutex> lock(mutex_);
  wait_ns_[static_cast<int>(Lane::kDemand)] = demand_wait_ns;
  wait_ns_[static_cast<int>(Lane::kPrefetch)] = prefetch_wait_ns;
  run_ns_ = run_ns;
}

bool ThreadPool::Submit(std::function<void()> task) {
  return Submit(std::move(task), {}, nullptr);
}

bool ThreadPool::Submit(std::function<void()> task,
                        std::chrono::steady_clock::time_point deadline,
                        std::function<void()> expired_fn) {
  std::deque<Task>& lane = lanes_[static_cast<int>(Lane::kDemand)];
  std::unique_lock<obs::TimedMutex> lock(mutex_);
  not_full_.wait(lock,
                 [this, &lane] { return shutdown_ || lane.size() < capacity_; });
  if (shutdown_) return false;
  lane.push_back({std::move(task), std::move(expired_fn),
                  std::chrono::steady_clock::now(), deadline});
  peak_depth_ = std::max(
      peak_depth_, lanes_[0].size() + lanes_[1].size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(Lane which, std::function<void()> task) {
  std::deque<Task>& lane = lanes_[static_cast<int>(which)];
  size_t bound = which == Lane::kDemand ? capacity_ : prefetch_capacity_;
  {
    std::lock_guard<obs::TimedMutex> lock(mutex_);
    if (shutdown_) return false;
    if (lane.size() >= bound) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    lane.push_back({std::move(task), nullptr,
                    std::chrono::steady_clock::now(), {}});
    peak_depth_ = std::max(
        peak_depth_, lanes_[0].size() + lanes_[1].size());
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<obs::TimedMutex> lock(mutex_);
    shutdown_ = true;
    // Deterministic drain-or-reject: prefetch tasks carry no waiting
    // completions, so discarding them (counted as shed) is safe and
    // bounds shutdown latency. Demand tasks are left for the workers,
    // which run fn or expired_fn for every one of them.
    std::deque<Task>& prefetch = lanes_[static_cast<int>(Lane::kPrefetch)];
    shed_.fetch_add(prefetch.size(), std::memory_order_relaxed);
    prefetch.clear();
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // join_mutex_ serialises concurrent Shutdown callers: only one may join
  // a given thread; later callers see it unjoinable and skip.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool ThreadPool::shutting_down() const {
  std::lock_guard<obs::TimedMutex> lock(mutex_);
  return shutdown_;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<obs::TimedMutex> lock(mutex_);
  return lanes_[0].size() + lanes_[1].size();
}

size_t ThreadPool::lane_depth(Lane lane) const {
  std::lock_guard<obs::TimedMutex> lock(mutex_);
  return lanes_[static_cast<int>(lane)].size();
}

size_t ThreadPool::peak_queue_depth() const {
  std::lock_guard<obs::TimedMutex> lock(mutex_);
  return peak_depth_;
}

void ThreadPool::WorkerLoop(int index) {
  obs::ThreadLease lease(obs::ThreadRole::kWorker,
                         "chrono-worker-" + std::to_string(index));
  for (;;) {
    Task task;
    Lane lane = Lane::kDemand;
    obs::Histogram* wait_hist = nullptr;
    obs::Histogram* run_hist = nullptr;
    {
      std::unique_lock<obs::TimedMutex> lock(mutex_);
      not_empty_.wait(lock, [this] {
        return shutdown_ || !lanes_[0].empty() || !lanes_[1].empty();
      });
      // Strict demand priority: speculation only runs on an empty demand
      // lane, so prefetch pressure can never starve a waiting client.
      if (!lanes_[0].empty()) {
        lane = Lane::kDemand;
      } else if (!lanes_[1].empty()) {
        lane = Lane::kPrefetch;
      } else {
        return;  // shutdown with drained lanes
      }
      std::deque<Task>& q = lanes_[static_cast<int>(lane)];
      task = std::move(q.front());
      q.pop_front();
      // Histogram pointers are copied out under the same lock that
      // AttachMetrics writes them under, so attachment mid-traffic is
      // race-free.
      wait_hist = wait_ns_[static_cast<int>(lane)];
      run_hist = run_ns_;
    }
    if (lane == Lane::kDemand) not_full_.notify_one();
    auto started = std::chrono::steady_clock::now();
    if (wait_hist != nullptr) {
      wait_hist->Record(ElapsedNs(task.enqueued, started));
    }
    // Expiry check at dequeue: O(1), before any execution. The rejection
    // callback still runs (delivering the completion) but the task never
    // touches the backend.
    if (task.expired_fn != nullptr && task.deadline <= started &&
        task.deadline.time_since_epoch().count() != 0) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      try {
        task.expired_fn();
      } catch (...) {
        failed_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    try {
      task.fn();
    } catch (...) {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (run_hist != nullptr) {
      run_hist->Record(ElapsedNs(started, std::chrono::steady_clock::now()));
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace chrono::runtime
