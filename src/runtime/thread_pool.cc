#include "runtime/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/threads.h"

namespace chrono::runtime {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(to - from);
  return d.count() < 0 ? 0 : static_cast<uint64_t>(d.count());
}

}  // namespace

ThreadPool::ThreadPool(int workers, size_t queue_capacity,
                       size_t background_headroom, obs::LockSite* queue_site)
    : capacity_(std::max<size_t>(queue_capacity, 1)),
      headroom_(std::min(background_headroom, capacity_ - 1)),
      mutex_(queue_site) {
  int n = std::max(workers, 1);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::AttachMetrics(obs::Histogram* queue_wait_ns,
                               obs::Histogram* run_ns) {
  std::lock_guard<obs::TimedMutex> lock(mutex_);
  queue_wait_ns_ = queue_wait_ns;
  run_ns_ = run_ns;
}

bool ThreadPool::Submit(std::function<void()> task) {
  std::unique_lock<obs::TimedMutex> lock(mutex_);
  not_full_.wait(lock,
                 [this] { return shutdown_ || queue_.size() < capacity_; });
  if (shutdown_) return false;
  queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
  peak_depth_ = std::max(peak_depth_, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<obs::TimedMutex> lock(mutex_);
    if (shutdown_) return false;
    if (queue_.size() + headroom_ >= capacity_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
    peak_depth_ = std::max(peak_depth_, queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<obs::TimedMutex> lock(mutex_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // join_mutex_ serialises concurrent Shutdown callers: only one may join
  // a given thread; later callers see it unjoinable and skip.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<obs::TimedMutex> lock(mutex_);
  return queue_.size();
}

size_t ThreadPool::peak_queue_depth() const {
  std::lock_guard<obs::TimedMutex> lock(mutex_);
  return peak_depth_;
}

void ThreadPool::WorkerLoop(int index) {
  obs::ThreadLease lease(obs::ThreadRole::kWorker,
                         "chrono-worker-" + std::to_string(index));
  for (;;) {
    Task task;
    obs::Histogram* wait_hist = nullptr;
    obs::Histogram* run_hist = nullptr;
    {
      std::unique_lock<obs::TimedMutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      // Histogram pointers are copied out under the same lock that
      // AttachMetrics writes them under, so attachment mid-traffic is
      // race-free.
      wait_hist = queue_wait_ns_;
      run_hist = run_ns_;
    }
    not_full_.notify_one();
    auto started = std::chrono::steady_clock::now();
    if (wait_hist != nullptr) {
      wait_hist->Record(ElapsedNs(task.enqueued, started));
    }
    try {
      task.fn();
    } catch (...) {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (run_hist != nullptr) {
      run_hist->Record(ElapsedNs(started, std::chrono::steady_clock::now()));
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace chrono::runtime
