#ifndef CHRONOCACHE_RUNTIME_BROWNOUT_H_
#define CHRONOCACHE_RUNTIME_BROWNOUT_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "obs/metrics.h"

namespace chrono::runtime {

/// \brief Adaptive overload controller (§17): watches the demand lane's
/// windowed queue-wait p99 against a target and walks a shed ladder —
/// each step gives up strictly less valuable work than the one before:
///
///   0 kNormal        serve everything
///   1 kShedPrefetch  drop speculation (plans are still learned)
///   2 kShedPipeline  also reject over-limit pipelined frames per conn
///   3 kRejectQuery   also reject new Querys with a Retry-After hint
///
/// The ladder steps up only after `up_samples` *consecutive* over-target
/// samples and down only after `down_samples` consecutive samples below
/// `clear_ratio * target` — the band in between holds the current level,
/// so the controller cannot flap on a noisy signal (hysteresis damping).
/// This is the offered-load twin of the §11 backend ladder: §11 protects
/// against a flaky backend, this protects against the node's own
/// saturation; they compose because both only ever *remove* work.
///
/// The controller is a pure sample-driven state machine: OnSample() is
/// called at a fixed cadence by the owner's sampler thread (or directly
/// by tests, which makes every transition deterministic without real
/// time). level() is an atomic read, safe from any thread on the serving
/// hot path.
class BrownoutController {
 public:
  enum class Level : int {
    kNormal = 0,
    kShedPrefetch = 1,
    kShedPipeline = 2,
    kRejectQuery = 3,
  };
  static constexpr int kLevelCount = 4;

  struct Options {
    /// Demand queue-wait p99 the node tries to hold (0 disables the
    /// controller entirely: level is pinned at kNormal).
    uint64_t queue_target_us = 0;
    /// Sampler cadence, consumed by the owning server's sampler thread.
    uint64_t sample_interval_ms = 100;
    /// Consecutive over-target samples required per upward step.
    int up_samples = 2;
    /// Consecutive clear samples required per downward step.
    int down_samples = 5;
    /// A sample is "clear" when p99 < clear_ratio * queue_target_us.
    double clear_ratio = 0.5;
  };

  explicit BrownoutController(Options options);

  BrownoutController(const BrownoutController&) = delete;
  BrownoutController& operator=(const BrownoutController&) = delete;

  /// Feeds one windowed queue-wait p99 observation and returns the level
  /// after applying the ladder rules. Single-threaded (sampler only).
  Level OnSample(uint64_t p99_us);

  /// Current level; lock-free, callable from the serving hot path.
  Level level() const {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }

  bool enabled() const { return options_.queue_target_us > 0; }

  /// Retry-After-style hint (ms) to attach to rejections at the current
  /// level: the queue target scaled up with the ladder, so clients back
  /// off harder the deeper the brownout. Bounded to [10 ms, 5 s].
  uint32_t RetryAfterMs() const;

  const Options& options() const { return options_; }

  /// Invoked inline from OnSample on every level change, before the new
  /// level becomes visible to readers. The owner journals the transition
  /// (kBrownoutTransition) and bumps counters here.
  using Listener =
      std::function<void(Level to, Level from, uint64_t p99_us)>;
  void SetTransitionListener(Listener listener) {
    listener_ = std::move(listener);
  }

  static const char* LevelName(Level level);

 private:
  Options options_;
  Listener listener_;
  std::atomic<int> level_{0};
  int over_streak_ = 0;   // sampler-thread only
  int clear_streak_ = 0;  // sampler-thread only
};

/// Windowed percentile between two snapshots of the *same* histogram:
/// diffs the cumulative buckets (prev is always a subset of cur) and
/// interpolates inside the diffed distribution. Returns 0 for an empty
/// window — an idle server reads as fully clear.
uint64_t WindowedPercentile(const obs::HistogramSnapshot& prev,
                            const obs::HistogramSnapshot& cur, double q);

}  // namespace chrono::runtime

#endif  // CHRONOCACHE_RUNTIME_BROWNOUT_H_
