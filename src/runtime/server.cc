#include "runtime/server.h"

#include <thread>
#include <utility>

#include "core/combiner_lateral.h"

namespace chrono::runtime {

ChronoServer::SessionState::SessionState(const ServerConfig& config)
    : transitions(static_cast<SimTime>(config.delta_t_us)),
      mapper(config.min_validations),
      manager(core::DependencyManager::Options{/*enable_subsumption=*/true}) {}

ChronoServer::ChronoServer(db::Database* db, ServerConfig config)
    : db_(db),
      config_(config),
      start_(std::chrono::steady_clock::now()),
      extractor_(core::GraphExtractor::Options{
          config.tau, config.min_occurrences, /*enable_loops=*/true,
          /*enable_loop_constants=*/true, /*max_nodes=*/8}),
      template_cache_(config.template_cache_entries),
      versions_(/*multi_node=*/false),
      cache_(config.cache_bytes, config.cache_shards),
      pool_(config.workers, config.queue_capacity) {
  // Reader-locked execution must never trigger a lazy index build.
  db_->WarmIndexes();
}

ChronoServer::~ChronoServer() { Shutdown(); }

void ChronoServer::Shutdown() { pool_.Shutdown(); }

uint64_t ChronoServer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void ChronoServer::SimulateWan() const {
  if (config_.db_latency_us == 0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(config_.db_latency_us));
}

size_t ChronoServer::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

ServerMetrics ChronoServer::metrics() const {
  ServerMetrics m;
  m.reads = metrics_.reads.load(std::memory_order_relaxed);
  m.writes = metrics_.writes.load(std::memory_order_relaxed);
  m.cache_hits = metrics_.cache_hits.load(std::memory_order_relaxed);
  m.cache_rejects = metrics_.cache_rejects.load(std::memory_order_relaxed);
  m.remote_plain = metrics_.remote_plain.load(std::memory_order_relaxed);
  m.remote_combined = metrics_.remote_combined.load(std::memory_order_relaxed);
  m.predictions_cached =
      metrics_.predictions_cached.load(std::memory_order_relaxed);
  m.prediction_hits = metrics_.prediction_hits.load(std::memory_order_relaxed);
  m.prediction_fallbacks =
      metrics_.prediction_fallbacks.load(std::memory_order_relaxed);
  m.prefetches_dropped =
      metrics_.prefetches_dropped.load(std::memory_order_relaxed);
  m.errors = metrics_.errors.load(std::memory_order_relaxed);
  return m;
}

ChronoServer::SessionState* ChronoServer::SessionFor(ClientId client) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    it = sessions_
             .emplace(client, std::make_unique<SessionState>(config_))
             .first;
  }
  return it->second.get();
}

std::string ChronoServer::CacheKey(ClientId client,
                                   const std::string& bound_text) const {
  if (config_.share_across_clients) return bound_text;
  return "c" + std::to_string(client) + "#" + bound_text;
}

std::future<Result<sql::ResultSet>> ChronoServer::Submit(ClientId client,
                                                         std::string sql,
                                                         int security_group) {
  auto promise = std::make_shared<std::promise<Result<sql::ResultSet>>>();
  std::future<Result<sql::ResultSet>> future = promise->get_future();
  bool accepted = pool_.Submit(
      [this, promise, client, security_group, sql = std::move(sql)]() {
        promise->set_value(Execute(client, sql, security_group));
      });
  if (!accepted) {
    promise->set_value(
        Status::Internal("ChronoServer is shut down; submission rejected"));
  }
  return future;
}

Result<sql::ResultSet> ChronoServer::Execute(ClientId client,
                                             const std::string& sql,
                                             int security_group) {
  auto parsed = Analyze(sql);
  if (!parsed.ok()) {
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    return parsed.status();
  }
  if (!parsed->tmpl->read_only) {
    metrics_.writes.fetch_add(1, std::memory_order_relaxed);
    return DoWrite(client, *parsed);
  }
  metrics_.reads.fetch_add(1, std::memory_order_relaxed);
  return DoRead(client, security_group, *parsed);
}

Result<sql::ParsedQuery> ChronoServer::Analyze(const std::string& sql) {
  {
    std::lock_guard<std::mutex> lock(template_mutex_);
    if (const sql::ParsedQuery* hit = template_cache_.Get(sql)) {
      return *hit;  // copy out while the lock pins the entry
    }
  }
  // AnalyzeQuery is a pure function of the text: run it unlocked. Two
  // threads racing on the same new text both analyze and both Put — the
  // second Put replaces an identical value, which is harmless.
  auto analyzed = sql::AnalyzeQuery(sql);
  if (!analyzed.ok()) return analyzed.status();
  sql::ParsedQuery parsed;
  {
    std::lock_guard<std::mutex> lock(template_mutex_);
    parsed = *template_cache_.Put(sql, std::move(*analyzed));
  }
  {
    std::unique_lock<std::shared_mutex> lock(registry_mutex_);
    registry_.Register(parsed.tmpl);
  }
  return parsed;
}

Result<sql::ResultSet> ChronoServer::DoWrite(ClientId client,
                                             const sql::ParsedQuery& parsed) {
  SimulateWan();
  Result<db::ExecOutcome> outcome = Status::OK();
  {
    std::unique_lock<std::shared_mutex> lock(db_mutex_);
    // Exclusive access: ExecuteText may touch the statement cache.
    outcome = db_->ExecuteText(parsed.bound_text);
    // DDL may have created tables whose indexes are still lazy; re-warm
    // under the same writer lock (no-op when everything is warm).
    db_->WarmIndexes();
  }
  if (!outcome.ok()) {
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    return outcome.status();
  }
  {
    std::lock_guard<std::mutex> lock(versions_mutex_);
    versions_.OnClientWrite(client, outcome->tables_written);
  }
  return outcome->result;
}

std::vector<ChronoServer::PreparedPlan> ChronoServer::LearnAndCombine(
    SessionState* session, ClientId client, const sql::ParsedQuery& parsed) {
  (void)client;
  std::vector<PreparedPlan> plans;
  if (!config_.enable_learning) return plans;
  const core::TemplateId tmpl = parsed.tmpl->id;

  // Lock order: registry reader (server level) before the session lock.
  // The extractor and the combiners both read the shared registry while
  // the session's models are being updated.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mutex_);
  std::lock_guard<std::mutex> session_lock(session->mutex);

  session->transitions.Observe(tmpl, static_cast<SimTime>(NowMicros()));
  session->mapper.ObserveQuery(tmpl, parsed.params);
  session->latest_params[tmpl] = parsed.params;
  ++session->observations;
  if (session->observations % config_.extract_every == 0) {
    for (auto& graph : extractor_.Extract(session->transitions,
                                          session->mapper, registry_)) {
      session->manager.AddGraph(std::move(graph));
    }
  }

  if (!config_.enable_combining) return plans;
  for (const core::DependencyGraph* graph :
       session->manager.MarkTextAvail(tmpl)) {
    core::CombineInput input{graph, &registry_, &session->latest_params};
    auto combined = core::CombineGraph(input);
    if (!combined.ok()) continue;
    PreparedPlan prepared;
    prepared.plan =
        std::make_shared<core::CombinedQuery>(std::move(*combined));
    prepared.contains_current = graph->ContainsNode(tmpl);
    plans.push_back(std::move(prepared));
  }
  return plans;
}

Result<sql::ResultSet> ChronoServer::DoRead(ClientId client,
                                            int security_group,
                                            const sql::ParsedQuery& parsed) {
  SessionState* session = SessionFor(client);
  const core::TemplateId tmpl = parsed.tmpl->id;

  std::vector<PreparedPlan> plans = LearnAndCombine(session, client, parsed);

  auto respond = [&](const sql::ResultSet& result) {
    if (config_.enable_learning) {
      std::lock_guard<std::mutex> lock(session->mutex);
      session->mapper.ObserveResult(tmpl, result);
    }
    return result;
  };

  // Launch background prefetches for the plans that do not cover this
  // query; the covering plan (if any) runs inline below on a miss.
  PreparedPlan* primary = nullptr;
  for (PreparedPlan& p : plans) {
    if (p.contains_current && primary == nullptr) {
      primary = &p;
      continue;
    }
    bool queued = pool_.TrySubmit(
        [this, client, security_group, session, plan = p.plan]() {
          ExecuteCombined(client, security_group, session, *plan);
        });
    if (!queued) {
      metrics_.prefetches_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (auto hit = CacheGet(client, security_group, parsed.bound_text)) {
    metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return respond(hit->result);
  }

  // Miss with a covering combined plan: execute it inline — the wall-clock
  // analogue of the simulator's "wait on the in-flight combined query".
  if (primary != nullptr &&
      ExecuteCombined(client, security_group, session, *primary->plan)) {
    if (auto hit = CacheGet(client, security_group, parsed.bound_text)) {
      metrics_.prediction_hits.fetch_add(1, std::memory_order_relaxed);
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return respond(hit->result);
    }
    metrics_.prediction_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }

  // Plain remote execution: bind the template's AST (no re-parse) and run
  // it under reader access.
  metrics_.remote_plain.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<sql::Statement> stmt =
      sql::BindParams(*parsed.tmpl->ast, parsed.params);
  SimulateWan();
  Result<db::ExecOutcome> outcome = Status::OK();
  {
    std::shared_lock<std::shared_mutex> lock(db_mutex_);
    outcome = db_->Execute(*stmt);
  }
  if (!outcome.ok()) {
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    return outcome.status();
  }
  CachePut(client, security_group, tmpl, parsed.bound_text, outcome->result);
  {
    std::lock_guard<std::mutex> lock(versions_mutex_);
    versions_.SyncClientToDb(client);  // fresh read: Vc = Vd (§5.2)
  }
  return respond(outcome->result);
}

bool ChronoServer::ExecuteCombined(ClientId client, int security_group,
                                   SessionState* session,
                                   const core::CombinedQuery& plan) {
  metrics_.remote_combined.fetch_add(1, std::memory_order_relaxed);
  SimulateWan();
  Result<db::ExecOutcome> outcome = Status::OK();
  {
    std::shared_lock<std::shared_mutex> lock(db_mutex_);
    outcome = db_->Execute(*plan.ast);
  }
  if (!outcome.ok()) return false;

  Result<std::vector<core::SplitEntry>> split = Status::OK();
  {
    std::shared_lock<std::shared_mutex> lock(registry_mutex_);
    split = core::SplitResult(plan, outcome->result, registry_);
  }
  if (!split.ok()) return false;

  for (const core::SplitEntry& entry : *split) {
    CachePut(client, security_group, entry.tmpl, entry.key, entry.result);
    metrics_.predictions_cached.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(versions_mutex_);
    versions_.SyncClientToDb(client);
  }
  if (config_.enable_learning) {
    std::lock_guard<std::mutex> lock(session->mutex);
    for (const core::SplitEntry& entry : *split) {
      session->mapper.ObserveResult(entry.tmpl, entry.result);
      session->latest_params[entry.tmpl] = entry.params;
    }
  }
  return true;
}

std::optional<cache::CachedResult> ChronoServer::CacheGet(
    ClientId client, int security_group, const std::string& bound_text) {
  std::optional<cache::CachedResult> entry =
      cache_.Get(CacheKey(client, bound_text));
  if (!entry.has_value()) return std::nullopt;
  if (entry->security_group != security_group) {
    metrics_.cache_rejects.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  {
    std::lock_guard<std::mutex> lock(versions_mutex_);
    if (!versions_.CanUse(client, entry->version)) {
      metrics_.cache_rejects.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    versions_.AbsorbResult(client, entry->version);
  }
  return entry;
}

void ChronoServer::CachePut(ClientId client, int security_group,
                            core::TemplateId tmpl,
                            const std::string& bound_text,
                            const sql::ResultSet& result) {
  std::vector<std::string> reads;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mutex_);
    if (const sql::QueryTemplate* qt = registry_.Find(tmpl)) {
      reads = sql::CollectTableAccess(*qt->ast).reads;
    }
  }
  cache::CachedResult entry;
  entry.result = result;
  {
    std::lock_guard<std::mutex> lock(versions_mutex_);
    entry.version = versions_.SnapshotFor(reads);
  }
  entry.security_group = security_group;
  entry.node_id = 0;
  cache_.Put(CacheKey(client, bound_text), std::move(entry));
}

}  // namespace chrono::runtime
