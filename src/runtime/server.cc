#include "runtime/server.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "core/combiner_lateral.h"
#include "obs/build_info.h"

namespace chrono::runtime {

namespace {

uint64_t NsBetween(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(to - from);
  return d.count() < 0 ? 0 : static_cast<uint64_t>(d.count());
}

}  // namespace

/// Per-request observability context. `t0` anchors every span; spans are
/// appended in completion order (pipeline order, since stages nest only
/// sequentially within one request).
struct ChronoServer::ReqCtx {
  std::chrono::steady_clock::time_point t0;
  uint64_t start_us = 0;
  core::TemplateId tmpl = 0;
  obs::TraceOutcome outcome = obs::TraceOutcome::kRemotePlain;
  uint64_t prefetch_plan = 0;
  uint64_t prefetch_src = 0;
  std::vector<obs::TraceSpan> spans;
  std::vector<obs::TraceAnnotation> annotations;

  // Wire-path deferral (ExecuteInternal): timing from the IO thread, and
  // the unpublished trace FinishRequest leaves behind for the frontend to
  // finish (completion-wait / flush spans) and publish.
  const WireTiming* wire = nullptr;
  std::shared_ptr<obs::RequestTrace> pending;

  /// Stamps a backend event onto this request's timeline, relative to the
  /// pipeline start (FinishRequest rebases wire-path annotations onto the
  /// decode-start origin together with the spans).
  void Note(obs::AnnotationKind kind, uint64_t value) {
    annotations.push_back(
        {kind, NsBetween(t0, std::chrono::steady_clock::now()) / 1000,
         value});
  }
};

/// Times one pipeline stage: records wall-clock nanoseconds into the
/// stage histogram and, when a request context is present, appends a
/// microsecond-resolution span to its trace.
class ChronoServer::StageTimer {
 public:
  StageTimer(ChronoServer* server, ReqCtx* ctx, obs::Stage stage)
      : server_(server),
        ctx_(ctx),
        stage_(stage),
        begin_(std::chrono::steady_clock::now()) {}

  ~StageTimer() {
    auto end = std::chrono::steady_clock::now();
    uint64_t ns = NsBetween(begin_, end);
    server_->stage_hist_[static_cast<int>(stage_)]->Record(ns);
    if (ctx_ != nullptr) {
      ctx_->spans.push_back({stage_, NsBetween(ctx_->t0, begin_) / 1000,
                             ns / 1000});
    }
  }

 private:
  ChronoServer* server_;
  ReqCtx* ctx_;
  obs::Stage stage_;
  std::chrono::steady_clock::time_point begin_;
};

ChronoServer::SessionState::SessionState(const ServerConfig& config,
                                         obs::LockSite* lock_site)
    : mutex(lock_site),
      transitions(static_cast<SimTime>(config.delta_t_us)),
      mapper(config.min_validations),
      manager(core::DependencyManager::Options{/*enable_subsumption=*/true}) {}

ChronoServer::ChronoServer(db::Database* db, ServerConfig config)
    : db_(db),
      config_(config),
      start_(std::chrono::steady_clock::now()),
      extractor_(core::GraphExtractor::Options{
          config.tau, config.min_occurrences, /*enable_loops=*/true,
          /*enable_loop_constants=*/true, /*max_nodes=*/8}),
      owned_registry_(config.registry != nullptr
                          ? nullptr
                          : std::make_unique<obs::MetricsRegistry>()),
      metrics_registry_(config.registry != nullptr ? config.registry
                                                   : owned_registry_.get()),
      contention_(std::make_unique<obs::ContentionRegistry>(
          metrics_registry_)),
      db_mutex_(contention_->Site("server.db.write"),
                contention_->Site("server.db.read")),
      template_mutex_(contention_->Site("server.template_cache")),
      template_cache_(config.template_cache_entries),
      registry_mutex_(contention_->Site("server.registry.write"),
                      contention_->Site("server.registry.read")),
      versions_mutex_(contention_->Site("server.versions")),
      versions_(/*multi_node=*/false),
      sessions_mutex_(contention_->Site("server.sessions")),
      session_site_(contention_->Site("server.session")),
      cache_(config.cache_bytes, config.cache_shards,
             contention_->Site("cache.shard")),
      inflight_mutex_(contention_->Site("server.inflight")),
      fault_(config.fault),
      retry_(config.retry),
      breaker_(config.breaker, [this] { return NowMicros(); }),
      brownout_(BrownoutController::Options{
          config.queue_target_us, config.brownout_sample_ms,
          config.brownout_up_samples, config.brownout_down_samples,
          /*clear_ratio=*/0.5}),
      pool_(config.workers, config.queue_capacity,
            config.prefetch_queue_capacity == SIZE_MAX
                ? std::max<size_t>(config.queue_capacity / 8, 1)
                : config.prefetch_queue_capacity,
            contention_->Site("pool.queue")) {
  // Reader-locked execution must never trigger a lazy index build.
  db_->WarmIndexes();
  contention_->SetArmed(config_.lock_telemetry);
  if (config_.trace_capacity > 0) {
    traces_ = std::make_unique<obs::TraceRing>(config_.trace_capacity);
    if (config_.tail_top_k > 0) {
      obs::TailReservoir::Options tail_options;
      tail_options.top_k = config_.tail_top_k;
      tail_options.threshold_us = config_.tail_threshold_us;
      tail_options.window_us = config_.tail_window_us;
      tail_options.forced_capacity = config_.tail_forced_capacity;
      tail_ = std::make_unique<obs::TailReservoir>(tail_options);
    }
  }
  if (config_.enable_journal) {
    audit_ = std::make_unique<obs::PrefetchAudit>(metrics_registry_);
    obs::EventJournal::Options journal_options;
    journal_options.buffer_events = config_.journal_buffer_events;
    journal_options.drain_interval_ms = config_.journal_drain_ms;
    journal_ = std::make_unique<obs::EventJournal>(journal_options);
    journal_->AddSink(audit_.get());
    InstallEvictionJournal();
  }
  // Breaker transitions flow into the journal (the listener runs under
  // the breaker mutex; journal Record is a leaf, so this cannot invert
  // the lock order). The audit fold turns these into
  // chrono_breaker_transitions_total and the availability board.
  breaker_.SetTransitionListener(
      [this](net::CircuitBreaker::State from, net::CircuitBreaker::State to) {
        obs::JournalEvent event;
        event.type = obs::JournalEventType::kBreakerTransition;
        event.a = static_cast<uint64_t>(to);
        event.b = static_cast<uint64_t>(from);
        Journal(event);
      });
  // Brownout ladder steps flow into the journal the same way (the listener
  // runs on the sampler thread; journal Record is a leaf). The audit fold
  // turns these into chrono_overload_brownout_transitions_total.
  brownout_.SetTransitionListener(
      [this](BrownoutController::Level to, BrownoutController::Level from,
             uint64_t p99_us) {
        obs::JournalEvent event;
        event.type = obs::JournalEventType::kBrownoutTransition;
        event.a = static_cast<uint64_t>(to);
        event.b = static_cast<uint64_t>(from);
        event.c = p99_us;
        Journal(event);
      });
  RegisterMetrics();
  // The sampler diffs the demand-lane wait histogram RegisterMetrics just
  // attached; start it only once that signal exists.
  if (brownout_.enabled()) {
    brownout_thread_ = std::thread([this] { BrownoutLoop(); });
  }
  // The sampler reads the registry whose callbacks capture `this`; start
  // it last (everything it observes exists) and stop it first in Shutdown.
  if (config_.timeseries_capacity > 0) {
    obs::TimeSeriesRing::Options ts_options;
    ts_options.capacity = config_.timeseries_capacity;
    ts_options.interval_ms = config_.timeseries_interval_ms;
    timeseries_ = std::make_unique<obs::TimeSeriesRing>(
        metrics_registry_, ts_options, [this] { return NowMicros(); });
    timeseries_->Start();
  }
}

ChronoServer::~ChronoServer() {
  Shutdown();
  // An external registry may outlive us; drop every callback that
  // captured this server's state.
  metrics_registry_->UnregisterCallbacksOwnedBy(this);
}

void ChronoServer::Shutdown() {
  if (timeseries_ != nullptr) timeseries_->Stop();  // idempotent
  {
    std::lock_guard<std::mutex> lock(brownout_stop_mutex_);
    brownout_stop_ = true;
  }
  brownout_stop_cv_.notify_all();
  if (brownout_thread_.joinable()) brownout_thread_.join();
  pool_.Shutdown();
}

void ChronoServer::BrownoutLoop() {
  obs::HistogramSnapshot prev = pool_wait_hist_[0]->Snapshot();
  std::unique_lock<std::mutex> lock(brownout_stop_mutex_);
  while (!brownout_stop_) {
    if (brownout_stop_cv_.wait_for(
            lock, std::chrono::milliseconds(config_.brownout_sample_ms),
            [this] { return brownout_stop_; })) {
      break;
    }
    lock.unlock();
    obs::HistogramSnapshot cur = pool_wait_hist_[0]->Snapshot();
    // The wait histograms record nanoseconds; the ladder thinks in µs.
    brownout_.OnSample(WindowedPercentile(prev, cur, 0.99) / 1000);
    prev = std::move(cur);
    lock.lock();
  }
}

void ChronoServer::RecordOverloadShed(uint64_t reason, ClientId client,
                                      uint32_t retry_after_ms) {
  metrics_.brownout_sheds.fetch_add(1, std::memory_order_relaxed);
  obs::JournalEvent event;
  event.type = obs::JournalEventType::kShedQueue;
  event.a = reason;
  event.b = static_cast<uint64_t>(brownout_.level());
  event.c = retry_after_ms;
  event.client = static_cast<uint32_t>(client);
  Journal(event);
}

void ChronoServer::RegisterMetrics() {
  obs::MetricsRegistry* r = metrics_registry_;
  const void* owner = this;

  // Static build identity (version / git sha / build type / sanitizer) as
  // a constant-1 info gauge.
  obs::RegisterBuildInfo(r);

  // Stage + request latency histograms (push-mode, lock-free hot path).
  for (int s = 0; s < static_cast<int>(obs::Stage::kCount); ++s) {
    stage_hist_[s] = r->GetHistogram(
        "chrono_stage_latency_ns",
        "Serving-pipeline stage latency in wall-clock nanoseconds",
        {{"stage", obs::StageName(static_cast<obs::Stage>(s))}});
  }
  request_read_hist_ = r->GetHistogram(
      "chrono_request_latency_ns",
      "End-to-end request latency inside the server in nanoseconds",
      {{"op", "read"}});
  request_write_hist_ = r->GetHistogram(
      "chrono_request_latency_ns",
      "End-to-end request latency inside the server in nanoseconds",
      {{"op", "write"}});

  // Pool histograms + pull-mode pool stats. The demand-lane wait histogram
  // doubles as the brownout controller's input signal (§17).
  pool_wait_hist_[static_cast<int>(ThreadPool::Lane::kDemand)] =
      r->GetHistogram("chrono_pool_queue_wait_ns",
                      "Time tasks spend queued before a worker runs them",
                      {{"lane", "demand"}});
  pool_wait_hist_[static_cast<int>(ThreadPool::Lane::kPrefetch)] =
      r->GetHistogram("chrono_pool_queue_wait_ns",
                      "Time tasks spend queued before a worker runs them",
                      {{"lane", "prefetch"}});
  pool_run_hist_ = r->GetHistogram(
      "chrono_pool_run_ns", "Time tasks spend executing on a worker");
  pool_.AttachMetrics(pool_wait_hist_[0], pool_wait_hist_[1],
                      pool_run_hist_);
  r->RegisterCallbackGauge(
      "chrono_pool_queue_depth", "Tasks queued and not yet running", {},
      [this] { return static_cast<double>(pool_.queue_depth()); }, owner);
  r->RegisterCallbackGauge(
      "chrono_pool_lane_depth", "Tasks queued per admission lane",
      {{"lane", "demand"}},
      [this] {
        return static_cast<double>(
            pool_.lane_depth(ThreadPool::Lane::kDemand));
      },
      owner);
  r->RegisterCallbackGauge(
      "chrono_pool_lane_depth", "Tasks queued per admission lane",
      {{"lane", "prefetch"}},
      [this] {
        return static_cast<double>(
            pool_.lane_depth(ThreadPool::Lane::kPrefetch));
      },
      owner);
  r->RegisterCallbackGauge(
      "chrono_pool_queue_depth_peak",
      "High-water mark of the pool queue depth", {},
      [this] { return static_cast<double>(pool_.peak_queue_depth()); }, owner);
  r->RegisterCallbackCounter(
      "chrono_pool_tasks_executed_total", "Tasks completed by the pool", {},
      [this] { return static_cast<double>(pool_.tasks_executed()); }, owner);
  r->RegisterCallbackCounter(
      "chrono_pool_tasks_failed_total",
      "Tasks that exited via an exception", {},
      [this] { return static_cast<double>(pool_.tasks_failed()); }, owner);
  r->RegisterCallbackCounter(
      "chrono_pool_tasks_expired_total",
      "Tasks rejected unexecuted at dequeue: deadline already passed", {},
      [this] { return static_cast<double>(pool_.tasks_expired()); }, owner);
  r->RegisterCallbackGauge(
      "chrono_overload_brownout_level",
      "Brownout ladder level (0=normal 1=shed-prefetch 2=shed-pipeline "
      "3=reject-query)",
      {},
      [this] {
        return static_cast<double>(static_cast<int>(brownout_.level()));
      },
      owner);

  // ServerMetrics mirrored as counters so dashboards see live values.
  auto server_counter = [&](const char* name, const char* help,
                            const std::atomic<uint64_t>* field) {
    r->RegisterCallbackCounter(
        name, help, {},
        [field] {
          return static_cast<double>(
              field->load(std::memory_order_relaxed));
        },
        owner);
  };
  r->RegisterCallbackCounter(
      "chrono_requests_total", "Client statements served", {{"op", "read"}},
      [this] {
        return static_cast<double>(
            metrics_.reads.load(std::memory_order_relaxed));
      },
      owner);
  r->RegisterCallbackCounter(
      "chrono_requests_total", "Client statements served", {{"op", "write"}},
      [this] {
        return static_cast<double>(
            metrics_.writes.load(std::memory_order_relaxed));
      },
      owner);
  server_counter("chrono_cache_rejects_total",
                 "Cached results rejected by session/security checks",
                 &metrics_.cache_rejects);
  server_counter("chrono_remote_plain_total",
                 "Plain (uncombined) remote reads", &metrics_.remote_plain);
  server_counter("chrono_remote_combined_total",
                 "Combined queries sent to the database",
                 &metrics_.remote_combined);
  server_counter("chrono_predictions_cached_total",
                 "Result sets cached ahead of demand",
                 &metrics_.predictions_cached);
  server_counter("chrono_prediction_inline_hits_total",
                 "Misses rescued by an inline covering combined query",
                 &metrics_.prediction_hits);
  server_counter("chrono_prediction_fallbacks_total",
                 "Inline combined queries that missed the asked-for result",
                 &metrics_.prediction_fallbacks);
  server_counter("chrono_prefetched_hits_total",
                 "Cache hits served from predictively prefetched entries",
                 &metrics_.prefetched_hits);
  server_counter("chrono_prefetches_dropped_total",
                 "Background prefetches rejected by a full queue",
                 &metrics_.prefetches_dropped);
  server_counter("chrono_errors_total", "Statements that returned a status",
                 &metrics_.errors);
  r->RegisterCallbackGauge(
      "chrono_sessions", "Live client sessions", {},
      [this] { return static_cast<double>(session_count()); }, owner);

  // Fault-tolerance surface. The journal-fed audit owns the canonical
  // chrono_backend_retries_total / chrono_backend_timeouts_total /
  // chrono_stale_serves_total / chrono_shed_total families — they reconcile
  // with journaled events by construction — so what is registered here is
  // only state that never flows through the journal.
  r->RegisterCallbackGauge(
      "chrono_breaker_state",
      "Remote-DB circuit breaker state (0=closed, 1=open, 2=half-open)", {},
      [this] {
        return static_cast<double>(static_cast<int>(breaker_.state()));
      },
      owner);
  server_counter("chrono_breaker_rejects_total",
                 "Demand calls rejected fast while the breaker was open",
                 &metrics_.breaker_rejects);
  r->RegisterCallbackCounter(
      "chrono_faults_injected_total",
      "Transport faults injected by the scripted fault schedule", {},
      [this] { return static_cast<double>(fault_.faults_injected()); },
      owner);
  r->RegisterCallbackCounter(
      "chrono_pool_tasks_shed_total",
      "Best-effort tasks rejected by TrySubmit queue headroom", {},
      [this] { return static_cast<double>(pool_.tasks_shed()); }, owner);

  // The three query-path caches under uniform names (satellite task):
  // hits/misses/evictions/entries per cache, one label to tell them apart.
  auto cache_family = [&](const char* which, std::function<double()> hits,
                          std::function<double()> misses,
                          std::function<double()> evictions,
                          std::function<double()> entries) {
    obs::Labels labels = {{"cache", which}};
    r->RegisterCallbackCounter("chrono_cache_hits_total",
                               "Cache lookup hits by cache", labels, hits,
                               owner);
    r->RegisterCallbackCounter("chrono_cache_misses_total",
                               "Cache lookup misses by cache", labels, misses,
                               owner);
    r->RegisterCallbackCounter("chrono_cache_evictions_total",
                               "Cache evictions by cache", labels, evictions,
                               owner);
    r->RegisterCallbackGauge("chrono_cache_entries",
                             "Entries resident by cache", labels, entries,
                             owner);
  };
  cache_family(
      "template",
      [this] { return static_cast<double>(template_cache_.counters().hits.load(
                   std::memory_order_relaxed)); },
      [this] {
        return static_cast<double>(template_cache_.counters().misses.load(
            std::memory_order_relaxed));
      },
      [this] {
        std::lock_guard<obs::TimedMutex> lock(template_mutex_);
        return static_cast<double>(template_cache_.evictions());
      },
      [this] {
        std::lock_guard<obs::TimedMutex> lock(template_mutex_);
        return static_cast<double>(template_cache_.size());
      });
  cache_family(
      "statement",
      [this] {
        return static_cast<double>(db_->statement_cache_counters().hits.load(
            std::memory_order_relaxed));
      },
      [this] {
        return static_cast<double>(db_->statement_cache_counters().misses.load(
            std::memory_order_relaxed));
      },
      [this] { return static_cast<double>(db_->statement_cache_evictions()); },
      [this] {
        std::shared_lock<obs::TimedSharedMutex> lock(db_mutex_);
        return static_cast<double>(db_->statement_cache_size());
      });
  cache_family(
      "result", [this] { return static_cast<double>(cache_.hits()); },
      [this] { return static_cast<double>(cache_.misses()); },
      [this] { return static_cast<double>(cache_.evictions()); },
      [this] { return static_cast<double>(cache_.entry_count()); });
  r->RegisterCallbackGauge(
      "chrono_result_cache_bytes", "Bytes resident in the result cache", {},
      [this] { return static_cast<double>(cache_.used_bytes()); }, owner);
  r->RegisterCallbackGauge(
      "chrono_result_cache_capacity_bytes", "Result cache byte budget", {},
      [this] { return static_cast<double>(cache_.capacity_bytes()); }, owner);

  // Per-shard occupancy/eviction gauges (shard mutexes are leaf locks, so
  // pulling them from a snapshot callback cannot invert the lock order).
  for (size_t i = 0; i < cache_.shard_count(); ++i) {
    obs::Labels labels = {{"shard", std::to_string(i)}};
    r->RegisterCallbackGauge(
        "chrono_result_cache_shard_entries", "Entries resident per shard",
        labels,
        [this, i] { return static_cast<double>(cache_.ShardEntryCount(i)); },
        owner);
    r->RegisterCallbackGauge(
        "chrono_result_cache_shard_bytes", "Bytes resident per shard", labels,
        [this, i] { return static_cast<double>(cache_.ShardUsedBytes(i)); },
        owner);
    r->RegisterCallbackGauge(
        "chrono_result_cache_shard_evictions", "Evictions per shard", labels,
        [this, i] { return static_cast<double>(cache_.ShardEvictions(i)); },
        owner);
  }

  // Database-side statement accounting + per-kind latency histograms.
  db_->AttachMetrics(r);
  r->RegisterCallbackCounter(
      "chrono_db_statements_total",
      "Statements executed by the database engine", {},
      [this] { return static_cast<double>(db_->statements_executed()); },
      owner);

  if (traces_ != nullptr) {
    r->RegisterCallbackCounter(
        "chrono_traces_total", "Requests traced into the ring", {},
        [this] { return static_cast<double>(traces_->total_pushed()); },
        owner);
  }
}

void ChronoServer::InstallEvictionJournal() {
  // Runs under the owning shard's mutex (a leaf lock); journal Record is
  // the only side effect. Only prefetch-attributed entries are journaled.
  // kErased here means the server's staleness invalidation — the one
  // explicit Erase on the result cache — and that erase always follows a
  // Get that bumped use_count, so "served a real hit" is use_count > 1
  // there and use_count > 0 everywhere else.
  cache_.SetEvictionCallback([this](const std::string& key,
                                    const cache::CachedResult& value,
                                    size_t bytes,
                                    cache::EvictReason reason) {
    (void)key;
    if (value.prefetch_plan == 0 || reason == cache::EvictReason::kCleared) {
      return;
    }
    obs::JournalEvent event;
    event.plan = value.prefetch_plan;
    event.src = value.prefetch_src;
    event.tmpl = value.tmpl;
    event.a = bytes;
    uint64_t now_us = NowMicros();
    event.b = now_us > value.install_us ? now_us - value.install_us : 0;
    if (reason == cache::EvictReason::kErased) {
      event.type = obs::JournalEventType::kEntryInvalidated;
      event.flags = value.use_count > 1 ? obs::kJournalFlagUsed : 0;
    } else {
      event.type = obs::JournalEventType::kEntryEvicted;
      event.flags = (value.use_count > 0 ? obs::kJournalFlagUsed : 0) |
                    (reason == cache::EvictReason::kReplaced
                         ? obs::kJournalEvictReplaced
                         : obs::kJournalEvictCapacity);
    }
    Journal(event);
  });
}

void ChronoServer::RecordPrefetchedHit(uint64_t src_tmpl, uint64_t dst_tmpl) {
  metrics_.prefetched_hits.fetch_add(1, std::memory_order_relaxed);
  std::string edge = (src_tmpl == 0 ? std::string("root")
                                    : std::to_string(src_tmpl)) +
                     "->" + std::to_string(dst_tmpl);
  metrics_registry_
      ->GetCounter("chrono_prediction_hits_total",
                   "Cache hits attributed to the transition-graph edge that "
                   "prefetched them (src template -> hit template)",
                   {{"edge", std::move(edge)}})
      ->Increment();
}

void ChronoServer::FinishRequest(ReqCtx* ctx, ClientId client, bool read_only,
                                 const std::string& sql) {
  uint64_t total_ns = NsBetween(ctx->t0, std::chrono::steady_clock::now());
  (read_only ? request_read_hist_ : request_write_hist_)->Record(total_ns);
  if (journal_ != nullptr) {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kRequest;
    event.client = static_cast<uint32_t>(client);
    event.tmpl = static_cast<uint64_t>(ctx->tmpl);
    event.plan = ctx->prefetch_plan;
    event.src = ctx->prefetch_src;
    event.flags = static_cast<uint8_t>(ctx->outcome);
    // §17 invariant violation marker: a request whose client deadline had
    // already passed when the pipeline started should have been rejected
    // at dequeue, never executed. The audit counts these; the count must
    // stay zero.
    if (ctx->wire != nullptr && ctx->wire->deadline_us != 0 &&
        ctx->start_us > ctx->wire->deadline_us) {
      event.flags |= obs::kJournalFlagLate;
    }
    uint64_t stage_us[static_cast<int>(obs::Stage::kCount)] = {};
    for (const obs::TraceSpan& span : ctx->spans) {
      stage_us[static_cast<int>(span.stage)] += span.dur_us;
    }
    event.a = obs::PackDurations(
        stage_us[static_cast<int>(obs::Stage::kAnalyze)],
        stage_us[static_cast<int>(obs::Stage::kCacheLookup)]);
    event.b = obs::PackDurations(
        stage_us[static_cast<int>(obs::Stage::kLearnCombine)],
        stage_us[static_cast<int>(obs::Stage::kDbExecute)]);
    event.c = obs::PackDurations(
        stage_us[static_cast<int>(obs::Stage::kSplitDecode)],
        total_ns / 1000);
    journal_->Record(event);
  }
  if (traces_ == nullptr) return;
  auto trace = std::make_shared<obs::RequestTrace>();
  trace->id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  trace->client = static_cast<uint64_t>(client);
  trace->tmpl = static_cast<uint64_t>(ctx->tmpl);
  trace->sql = sql.substr(0, config_.trace_sql_bytes);
  trace->outcome = ctx->outcome;
  trace->prefetch_plan = ctx->prefetch_plan;
  trace->prefetch_src = ctx->prefetch_src;
  if (ctx->wire != nullptr) {
    // Wire path: rebase the timeline onto the IO thread's decode start and
    // tile the frontend stages in front of the worker's pipeline spans.
    // The trace stays unpublished (ctx->pending): the frontend appends its
    // completion-wait / response-flush spans at flush time, then hands it
    // back through PublishTrace.
    const WireTiming& w = *ctx->wire;
    uint64_t dispatch = w.dispatch_us > w.decode_start_us
                            ? w.dispatch_us - w.decode_start_us
                            : 0;
    uint64_t exec_start =
        ctx->start_us > w.decode_start_us ? ctx->start_us - w.decode_start_us
                                          : dispatch;
    if (exec_start < dispatch) exec_start = dispatch;
    trace->start_us = w.decode_start_us;
    trace->forced = w.traced;
    trace->spans.push_back({obs::Stage::kWireDecode, 0, dispatch});
    trace->spans.push_back(
        {obs::Stage::kQueueWait, dispatch, exec_start - dispatch});
    trace->spans.push_back(
        {obs::Stage::kExecute, exec_start, total_ns / 1000});
    for (obs::TraceSpan span : ctx->spans) {
      span.start_us += exec_start;
      trace->spans.push_back(span);
    }
    for (obs::TraceAnnotation note : ctx->annotations) {
      note.at_us += exec_start;
      trace->annotations.push_back(note);
    }
    // Provisional: PublishTrace sees the final value once the frontend has
    // appended the completion-wait and flush spans.
    trace->total_us = exec_start + total_ns / 1000;
    ctx->pending = std::move(trace);
    return;
  }
  trace->start_us = ctx->start_us;
  trace->total_us = total_ns / 1000;
  trace->spans = std::move(ctx->spans);
  trace->annotations = std::move(ctx->annotations);
  std::shared_ptr<const obs::RequestTrace> published = std::move(trace);
  traces_->Push(published);
  OfferTail(published);
}

void ChronoServer::PublishTrace(std::shared_ptr<obs::RequestTrace> trace) {
  if (trace == nullptr || traces_ == nullptr) return;
  // The frontend-side stages never pass through a StageTimer; feed their
  // histograms here so chrono_stage_latency_ns covers the full round trip.
  for (const obs::TraceSpan& span : trace->spans) {
    if (span.stage >= obs::Stage::kWireDecode &&
        span.stage < obs::Stage::kCount) {
      stage_hist_[static_cast<int>(span.stage)]->Record(span.dur_us * 1000);
    }
  }
  std::shared_ptr<const obs::RequestTrace> published = std::move(trace);
  traces_->Push(published);
  OfferTail(published);
}

void ChronoServer::OfferTail(
    const std::shared_ptr<const obs::RequestTrace>& trace) {
  if (tail_ == nullptr) return;
  if (!tail_->MightAdmit(trace->total_us, trace->forced)) return;
  tail_->Offer(trace, NowMicros());
}

uint64_t ChronoServer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void ChronoServer::SimulateWan() const { SleepMicros(config_.db_latency_us); }

void ChronoServer::SleepMicros(uint64_t us) const {
  if (us == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

ChronoServer::HealthStatus ChronoServer::Health() const {
  switch (breaker_.state()) {
    case net::CircuitBreaker::State::kOpen:
      return {false, "circuit breaker open"};
    case net::CircuitBreaker::State::kHalfOpen:
      return {false, "circuit breaker half-open (probing)"};
    case net::CircuitBreaker::State::kClosed:
      break;
  }
  uint64_t last = last_stale_us_.load(std::memory_order_relaxed);
  if (last != 0 && NowMicros() - last < 2'000'000) {
    return {false, "serving stale results"};
  }
  return {};
}

Result<db::ExecOutcome> ChronoServer::CallBackend(
    const BackendCall& call,
    const std::function<Result<db::ExecOutcome>()>& exec) {
  // The §11 retry budget, clamped by whatever is left of the client's
  // propagated wire deadline (§17): the ladder never spends time the
  // client no longer has. An already-expired deadline degrades to a 1 µs
  // budget — the first attempt fails fast rather than sleeping.
  uint64_t budget_us = config_.request_deadline_us;
  if (call.ctx != nullptr && call.ctx->wire != nullptr &&
      call.ctx->wire->deadline_us != 0) {
    uint64_t now = NowMicros();
    uint64_t left = call.ctx->wire->deadline_us > now
                        ? call.ctx->wire->deadline_us - now
                        : 1;
    uint64_t clamped = net::ClampBudgetUs(budget_us, left);
    if (clamped != budget_us) {
      call.ctx->Note(obs::AnnotationKind::kDeadlineClamp, left);
    }
    budget_us = clamped;
  }
  net::Deadline deadline(budget_us, [this] { return NowMicros(); });

  // Breaker admission, once per call. Prefetch admission happens at the
  // caller (ExecuteCombined sheds before the plan is issued). The breaker
  // judges whole calls, not attempts: failures the retry schedule absorbs
  // never reach it, so a background error rate keeps flowing (retried)
  // while a genuine outage — every call failing post-retry — trips it.
  auto admission = net::CircuitBreaker::Admission::kAdmitted;
  if (!call.is_prefetch) {
    admission = breaker_.AdmitDemand();
    if (admission == net::CircuitBreaker::Admission::kRejected) {
      metrics_.breaker_rejects.fetch_add(1, std::memory_order_relaxed);
      if (call.ctx != nullptr) {
        call.ctx->Note(obs::AnnotationKind::kBreakerReject,
                       static_cast<uint64_t>(breaker_.state()));
      }
      return Status::Unavailable("circuit breaker open");
    }
  }

  int attempts = 0;
  for (;;) {
    ++attempts;

    uint64_t attempt_cap = deadline.remaining_us();  // UINT64_MAX: unlimited
    if (config_.attempt_timeout_us > 0 &&
        config_.attempt_timeout_us < attempt_cap) {
      attempt_cap = config_.attempt_timeout_us;
    }

    net::FaultDecision fd;
    if (fault_.enabled()) fd = fault_.Decide(NowMicros());
    if (fd.fail && call.ctx != nullptr) {
      call.ctx->Note(obs::AnnotationKind::kFault, fd.blackout ? 1 : 0);
    }
    uint64_t latency = config_.db_latency_us;
    if (fd.latency_multiplier > 1.0) {
      latency = static_cast<uint64_t>(static_cast<double>(latency) *
                                      fd.latency_multiplier);
    }

    Result<db::ExecOutcome> outcome = Status::OK();
    bool timed_out = false;
    if (fd.fail) {
      // The request dies in the WAN. A blackout behaves like a hang that
      // the attempt budget cuts off (without a deadline it degenerates to
      // a refused connection); a plain fault surfaces as a refusal after
      // the — possibly truncated — round trip.
      if (fd.blackout && attempt_cap != UINT64_MAX) {
        SleepMicros(attempt_cap);
        timed_out = true;
        outcome =
            Status::DeadlineExceeded("backend blackout: attempt timed out");
      } else {
        SleepMicros(std::min(latency, attempt_cap));
        outcome = Status::Unavailable("injected backend failure");
      }
    } else if (attempt_cap != UINT64_MAX && latency > attempt_cap) {
      // Healthy but (spike-)slow: give up at the budget, not after it.
      SleepMicros(attempt_cap);
      timed_out = true;
      outcome =
          Status::DeadlineExceeded("backend latency exceeded attempt budget");
    } else {
      SleepMicros(latency);
      outcome = exec();
    }

    bool transport_failed =
        !outcome.ok() && IsBackendFailure(outcome.status());
    if (timed_out) {
      metrics_.backend_timeouts.fetch_add(1, std::memory_order_relaxed);
      if (call.ctx != nullptr) {
        call.ctx->Note(obs::AnnotationKind::kAttemptTimeout, attempt_cap);
      }
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kBackendTimeout;
      event.tmpl = call.tmpl;
      event.client = static_cast<uint32_t>(call.client);
      event.a = attempt_cap;
      if (call.is_write) event.flags = obs::kJournalFlagWrite;
      Journal(event);
    }
    if (!transport_failed) {
      breaker_.OnResult(admission, true);
      return outcome;
    }

    // Retry only idempotent demand reads, within the deadline. Writes are
    // never safely retryable here (no dedup tokens), and prefetch is
    // best-effort by contract.
    if (call.is_write || call.is_prefetch || !config_.enable_retries ||
        !retry_.ShouldRetry(attempts)) {
      breaker_.OnResult(admission, false);
      return outcome;
    }
    uint64_t left = deadline.remaining_us();
    if (left == 0) {
      breaker_.OnResult(admission, false);
      return outcome;
    }
    // Full jitter from a counter hash: deterministic for a fixed seed,
    // lock-free, and de-correlated across concurrent workers.
    double u = HashToUnit(SplitMix64(
        config_.fault.seed ^ 0x5deece66dULL ^
        jitter_ordinal_.fetch_add(1, std::memory_order_relaxed)));
    uint64_t backoff = retry_.BackoffUs(attempts, u);
    if (left != UINT64_MAX && backoff >= left) backoff = left / 2;
    metrics_.backend_retries.fetch_add(1, std::memory_order_relaxed);
    if (call.ctx != nullptr) {
      call.ctx->Note(obs::AnnotationKind::kRetry,
                     static_cast<uint64_t>(attempts));
    }
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kBackendRetry;
    event.tmpl = call.tmpl;
    event.client = static_cast<uint32_t>(call.client);
    event.a = static_cast<uint64_t>(attempts);
    event.b = backoff;
    event.c = left == UINT64_MAX ? 0 : left;
    Journal(event);
    SleepMicros(backoff);
  }
}

void ChronoServer::ShedPrefetch(uint64_t kind, uint64_t plan_id,
                                ClientId client) {
  if (kind == obs::kShedQueueFull) {
    metrics_.prefetches_dropped.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.prefetches_shed_breaker.fetch_add(1, std::memory_order_relaxed);
  }
  obs::JournalEvent event;
  event.type = obs::JournalEventType::kShed;
  event.a = kind;
  event.plan = plan_id;
  event.client = static_cast<uint32_t>(client);
  Journal(event);
}

SharedResult ChronoServer::TryServeStale(
    const std::optional<cache::CachedResult>& candidate, uint64_t tmpl,
    ClientId client, ReqCtx* ctx) {
  if (config_.stale_serve_us == 0 || !candidate.has_value()) {
    return nullptr;
  }
  uint64_t now = NowMicros();
  uint64_t age = now > candidate->install_us ? now - candidate->install_us : 0;
  if (age > config_.stale_serve_us) return nullptr;
  metrics_.stale_serves.fetch_add(1, std::memory_order_relaxed);
  last_stale_us_.store(now, std::memory_order_relaxed);
  if (ctx != nullptr) {
    ctx->outcome = obs::TraceOutcome::kStaleHit;
    ctx->Note(obs::AnnotationKind::kStaleServe, age);
  }
  obs::JournalEvent event;
  event.type = obs::JournalEventType::kStaleServe;
  event.tmpl = tmpl;
  event.a = age;
  event.b = config_.stale_serve_us;
  event.client = static_cast<uint32_t>(client);
  Journal(event);
  return candidate->result;
}

size_t ChronoServer::session_count() const {
  std::lock_guard<obs::TimedMutex> lock(sessions_mutex_);
  return sessions_.size();
}

ServerMetrics ChronoServer::metrics() const {
  ServerMetrics m;
  m.reads = metrics_.reads.load(std::memory_order_relaxed);
  m.writes = metrics_.writes.load(std::memory_order_relaxed);
  m.cache_hits = metrics_.cache_hits.load(std::memory_order_relaxed);
  m.cache_rejects = metrics_.cache_rejects.load(std::memory_order_relaxed);
  m.remote_plain = metrics_.remote_plain.load(std::memory_order_relaxed);
  m.backend_coalesced =
      metrics_.backend_coalesced.load(std::memory_order_relaxed);
  m.remote_combined = metrics_.remote_combined.load(std::memory_order_relaxed);
  m.predictions_cached =
      metrics_.predictions_cached.load(std::memory_order_relaxed);
  m.prediction_hits = metrics_.prediction_hits.load(std::memory_order_relaxed);
  m.prediction_fallbacks =
      metrics_.prediction_fallbacks.load(std::memory_order_relaxed);
  m.prefetched_hits =
      metrics_.prefetched_hits.load(std::memory_order_relaxed);
  m.prefetches_dropped =
      metrics_.prefetches_dropped.load(std::memory_order_relaxed);
  m.errors = metrics_.errors.load(std::memory_order_relaxed);
  m.backend_retries = metrics_.backend_retries.load(std::memory_order_relaxed);
  m.backend_timeouts =
      metrics_.backend_timeouts.load(std::memory_order_relaxed);
  m.stale_serves = metrics_.stale_serves.load(std::memory_order_relaxed);
  m.prefetches_shed_breaker =
      metrics_.prefetches_shed_breaker.load(std::memory_order_relaxed);
  m.breaker_rejects = metrics_.breaker_rejects.load(std::memory_order_relaxed);
  m.faults_injected = fault_.faults_injected();
  m.deadline_expired =
      metrics_.deadline_expired.load(std::memory_order_relaxed);
  m.brownout_sheds = metrics_.brownout_sheds.load(std::memory_order_relaxed);
  return m;
}

ChronoServer::SessionState* ChronoServer::SessionFor(ClientId client) {
  std::lock_guard<obs::TimedMutex> lock(sessions_mutex_);
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    it = sessions_
             .emplace(client,
                      std::make_unique<SessionState>(config_, session_site_))
             .first;
  }
  return it->second.get();
}

std::string ChronoServer::CacheKey(ClientId client,
                                   const std::string& bound_text) const {
  if (config_.share_across_clients) return bound_text;
  return "c" + std::to_string(client) + "#" + bound_text;
}

std::future<Result<SharedResult>> ChronoServer::Submit(ClientId client,
                                                       std::string sql,
                                                       int security_group) {
  auto promise = std::make_shared<std::promise<Result<SharedResult>>>();
  std::future<Result<SharedResult>> future = promise->get_future();
  bool accepted = pool_.Submit(
      [this, promise, client, security_group, sql = std::move(sql)]() {
        promise->set_value(Execute(client, sql, security_group));
      });
  if (!accepted) {
    promise->set_value(
        Status::Internal("ChronoServer is shut down; submission rejected"));
  }
  return future;
}

void ChronoServer::SubmitAsync(
    ClientId client, std::string sql, int security_group,
    std::function<void(Result<SharedResult>)> done) {
  // The pool copies the task before running it; share the callback so a
  // rejected submission can still deliver the mandatory error callback.
  auto callback =
      std::make_shared<std::function<void(Result<SharedResult>)>>(
          std::move(done));
  bool accepted = pool_.Submit(
      [this, callback, client, security_group, sql = std::move(sql)]() {
        (*callback)(Execute(client, sql, security_group));
      });
  if (!accepted) {
    (*callback)(
        Status::Internal("ChronoServer is shut down; submission rejected"));
  }
}

void ChronoServer::SubmitAsync(
    ClientId client, std::string sql, int security_group,
    const WireTiming& wire,
    std::function<void(Result<SharedResult>,
                       std::shared_ptr<obs::RequestTrace>)>
        done) {
  auto callback = std::make_shared<std::function<void(
      Result<SharedResult>, std::shared_ptr<obs::RequestTrace>)>>(
      std::move(done));
  auto work =
      [this, callback, client, security_group, wire, sql = std::move(sql)]() {
        std::shared_ptr<obs::RequestTrace> pending;
        Result<SharedResult> result =
            ExecuteInternal(client, sql, security_group, &wire, &pending);
        (*callback)(std::move(result), std::move(pending));
      };
  bool accepted;
  if (wire.deadline_us != 0) {
    // Arm expiry-at-dequeue (§17): if the client's deadline passes while
    // the task is still queued, the worker rejects it in O(1) — the
    // backend never sees it — and the completion is delivered with
    // DeadlineExceeded so the frontend can stamp the kFlagExpired Error.
    uint64_t deadline_us = wire.deadline_us;
    uint64_t budget_ms = wire.deadline_us > wire.decode_start_us
                             ? (wire.deadline_us - wire.decode_start_us) /
                                   1000
                             : 0;
    accepted = pool_.Submit(
        std::move(work),
        start_ + std::chrono::microseconds(deadline_us),
        [this, callback, client, deadline_us, budget_ms]() {
          metrics_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
          uint64_t now = NowMicros();
          obs::JournalEvent event;
          event.type = obs::JournalEventType::kDeadlineExpired;
          event.client = static_cast<uint32_t>(client);
          event.a = now > deadline_us ? now - deadline_us : 0;
          event.b = budget_ms;
          if (pool_.shutting_down()) event.flags = obs::kJournalFlagDrain;
          Journal(event);
          (*callback)(Status::DeadlineExceeded(kExpiredInQueueMessage),
                      nullptr);
        });
  } else {
    accepted = pool_.Submit(std::move(work));
  }
  if (!accepted) {
    (*callback)(
        Status::Internal("ChronoServer is shut down; submission rejected"),
        nullptr);
  }
}

Result<SharedResult> ChronoServer::Execute(ClientId client,
                                           const std::string& sql,
                                           int security_group) {
  return ExecuteInternal(client, sql, security_group, /*wire=*/nullptr,
                         /*pending=*/nullptr);
}

Result<SharedResult> ChronoServer::ExecuteInternal(
    ClientId client, const std::string& sql, int security_group,
    const WireTiming* wire, std::shared_ptr<obs::RequestTrace>* pending) {
  ReqCtx ctx;
  ctx.t0 = std::chrono::steady_clock::now();
  ctx.start_us = NowMicros();
  ctx.wire = wire;
  BrownoutController::Level level = brownout_.level();
  if (level != BrownoutController::Level::kNormal) {
    ctx.Note(obs::AnnotationKind::kBrownout,
             static_cast<uint64_t>(level));
  }

  Result<sql::ParsedQuery> parsed = Status::OK();
  {
    StageTimer timer(this, &ctx, obs::Stage::kAnalyze);
    parsed = Analyze(sql);
  }
  if (!parsed.ok()) {
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    ctx.outcome = obs::TraceOutcome::kError;
    FinishRequest(&ctx, client, /*read_only=*/true, sql);
    if (pending != nullptr) *pending = std::move(ctx.pending);
    return parsed.status();
  }
  ctx.tmpl = parsed->tmpl->id;
  const bool read_only = parsed->tmpl->read_only;

  Result<SharedResult> result = Status::OK();
  if (!read_only) {
    metrics_.writes.fetch_add(1, std::memory_order_relaxed);
    ctx.outcome = obs::TraceOutcome::kWrite;
    result = DoWrite(client, *parsed, &ctx);
  } else {
    metrics_.reads.fetch_add(1, std::memory_order_relaxed);
    result = DoRead(client, security_group, *parsed, &ctx);
  }
  if (!result.ok()) ctx.outcome = obs::TraceOutcome::kError;
  FinishRequest(&ctx, client, read_only, parsed->bound_text);
  if (pending != nullptr) *pending = std::move(ctx.pending);
  return result;
}

Result<sql::ParsedQuery> ChronoServer::Analyze(const std::string& sql) {
  {
    std::lock_guard<obs::TimedMutex> lock(template_mutex_);
    if (const sql::ParsedQuery* hit = template_cache_.Get(sql)) {
      return *hit;  // copy out while the lock pins the entry
    }
  }
  // AnalyzeQuery is a pure function of the text: run it unlocked. Two
  // threads racing on the same new text both analyze and both Put — the
  // second Put replaces an identical value, which is harmless.
  auto analyzed = sql::AnalyzeQuery(sql);
  if (!analyzed.ok()) return analyzed.status();
  sql::ParsedQuery parsed;
  {
    std::lock_guard<obs::TimedMutex> lock(template_mutex_);
    parsed = *template_cache_.Put(sql, std::move(*analyzed));
  }
  {
    std::unique_lock<obs::TimedSharedMutex> lock(registry_mutex_);
    registry_.Register(parsed.tmpl);
  }
  return parsed;
}

Result<SharedResult> ChronoServer::DoWrite(ClientId client,
                                           const sql::ParsedQuery& parsed,
                                           ReqCtx* ctx) {
  BackendCall call;
  call.is_write = true;
  call.tmpl = static_cast<uint64_t>(parsed.tmpl->id);
  call.client = client;
  call.ctx = ctx;
  Result<db::ExecOutcome> outcome = Status::OK();
  {
    StageTimer timer(this, ctx, obs::Stage::kDbExecute);
    outcome = CallBackend(call, [&] {
      std::unique_lock<obs::TimedSharedMutex> lock(db_mutex_);
      // Exclusive access: ExecuteText may touch the statement cache.
      Result<db::ExecOutcome> out = db_->ExecuteText(parsed.bound_text);
      // DDL may have created tables whose indexes are still lazy; re-warm
      // under the same writer lock (no-op when everything is warm).
      db_->WarmIndexes();
      return out;
    });
  }
  if (!outcome.ok()) {
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    return outcome.status();
  }
  {
    std::lock_guard<obs::TimedMutex> lock(versions_mutex_);
    versions_.OnClientWrite(client, outcome->tables_written);
  }
  return std::make_shared<const sql::ResultSet>(std::move(outcome->result));
}

std::vector<ChronoServer::PreparedPlan> ChronoServer::LearnAndCombine(
    SessionState* session, ClientId client, const sql::ParsedQuery& parsed) {
  (void)client;
  std::vector<PreparedPlan> plans;
  if (!config_.enable_learning) return plans;
  const core::TemplateId tmpl = parsed.tmpl->id;

  // Lock order: registry reader (server level) before the session lock.
  // The extractor and the combiners both read the shared registry while
  // the session's models are being updated.
  std::shared_lock<obs::TimedSharedMutex> registry_lock(registry_mutex_);
  std::lock_guard<obs::TimedMutex> session_lock(session->mutex);

  session->transitions.Observe(tmpl, static_cast<SimTime>(NowMicros()));
  session->mapper.ObserveQuery(tmpl, parsed.params);
  session->latest_params[tmpl] = parsed.params;
  ++session->observations;
  if (session->observations % config_.extract_every == 0) {
    for (auto& graph : extractor_.Extract(session->transitions,
                                          session->mapper, registry_)) {
      session->manager.AddGraph(std::move(graph));
    }
  }

  if (!config_.enable_combining) return plans;
  for (const core::DependencyGraph* graph :
       session->manager.MarkTextAvail(tmpl)) {
    core::CombineInput input{graph, &registry_, &session->latest_params};
    auto combined = core::CombineGraph(input);
    if (!combined.ok()) continue;
    PreparedPlan prepared;
    prepared.plan =
        std::make_shared<core::CombinedQuery>(std::move(*combined));
    prepared.plan_id = next_plan_id_.fetch_add(1, std::memory_order_relaxed);
    prepared.contains_current = graph->ContainsNode(tmpl);
    if (journal_ != nullptr) {
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kPlanMined;
      event.plan = prepared.plan_id;
      event.tmpl = static_cast<uint64_t>(tmpl);  // the trigger template
      event.a = prepared.plan->slots.size();
      journal_->Record(event);
    }
    plans.push_back(std::move(prepared));
  }
  return plans;
}

Result<SharedResult> ChronoServer::DoRead(ClientId client,
                                          int security_group,
                                          const sql::ParsedQuery& parsed,
                                          ReqCtx* ctx) {
  SessionState* session = SessionFor(client);
  const core::TemplateId tmpl = parsed.tmpl->id;

  std::vector<PreparedPlan> plans;
  {
    StageTimer timer(this, ctx, obs::Stage::kLearnCombine);
    plans = LearnAndCombine(session, client, parsed);
  }

  // Ships the shared payload to the caller: a ref-count bump, never a row
  // copy. The mapper reads through the pointer (the payload is immutable).
  auto respond = [&](const SharedResult& result) {
    if (config_.enable_learning) {
      std::lock_guard<obs::TimedMutex> lock(session->mutex);
      session->mapper.ObserveResult(tmpl, *result);
    }
    return result;
  };

  // Launch background prefetches for the plans that do not cover this
  // query; the covering plan (if any) runs inline below on a miss.
  PreparedPlan* primary = nullptr;
  for (PreparedPlan& p : plans) {
    if (p.contains_current && primary == nullptr) {
      primary = &p;
      continue;
    }
    // First rung of the brownout ladder (§17): under pressure speculation
    // is dropped before it is even queued. Plans are still learned — only
    // the background execution is shed.
    if (brownout_.level() >= BrownoutController::Level::kShedPrefetch) {
      RecordOverloadShed(obs::kOverloadShedPrefetch, client,
                         /*retry_after_ms=*/0);
      continue;
    }
    bool queued = pool_.TrySubmit(
        ThreadPool::Lane::kPrefetch,
        [this, client, security_group, session, plan = p.plan,
         plan_id = p.plan_id]() {
          ExecuteCombined(client, security_group, session, *plan, plan_id,
                          /*ctx=*/nullptr);
        });
    if (!queued) {
      ShedPrefetch(obs::kShedQueueFull, p.plan_id, client);
    }
  }

  // A version-stale (but security-cleared) entry seen during the lookup:
  // kept around as the degraded answer of last resort.
  std::optional<cache::CachedResult> stale_candidate;
  {
    std::optional<cache::CachedResult> hit;
    {
      StageTimer timer(this, ctx, obs::Stage::kCacheLookup);
      hit = CacheGet(client, security_group, parsed.bound_text,
                     &stale_candidate);
    }
    if (hit.has_value()) {
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      ctx->outcome = obs::TraceOutcome::kCacheHit;
      if (hit->prefetch_plan != 0) {
        ctx->prefetch_plan = hit->prefetch_plan;
        ctx->prefetch_src = hit->prefetch_src;
        RecordPrefetchedHit(hit->prefetch_src, tmpl);
      }
      return respond(hit->result);
    }
  }

  // Miss with a covering combined plan: execute it inline — the wall-clock
  // analogue of the simulator's "wait on the in-flight combined query".
  if (primary != nullptr &&
      ExecuteCombined(client, security_group, session, *primary->plan,
                      primary->plan_id, ctx)) {
    std::optional<cache::CachedResult> hit;
    {
      StageTimer timer(this, ctx, obs::Stage::kCacheLookup);
      hit = CacheGet(client, security_group, parsed.bound_text);
    }
    if (hit.has_value()) {
      metrics_.prediction_hits.fetch_add(1, std::memory_order_relaxed);
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      ctx->outcome = obs::TraceOutcome::kPredictionHit;
      if (hit->prefetch_plan != 0) {
        ctx->prefetch_plan = hit->prefetch_plan;
        ctx->prefetch_src = hit->prefetch_src;
        RecordPrefetchedHit(hit->prefetch_src, tmpl);
      }
      return respond(hit->result);
    }
    metrics_.prediction_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }

  // Plain remote execution, single-flighted per {cache key, security
  // group}: the first thread to miss (the leader) performs the backend
  // call with the full retry/breaker/deadline semantics; threads that
  // miss the same key in the same group while it is in flight park on the
  // leader's shared future instead of issuing duplicate backend calls.
  // The group suffix keeps cross-group misses on separate flights — the
  // coalescing path must honour the same access-control model CacheGet
  // enforces (§5.2.1).
  const std::string flight_key = CacheKey(client, parsed.bound_text) +
                                 "#g" + std::to_string(security_group);

  // A follower validates the inherited payload against its own session
  // vector before accepting it; on rejection it loops and leads a fresh
  // fetch itself. After kMaxRejectedFlights rejections it stops
  // coalescing and fetches alone, so a write-heavy client cannot be
  // starved parking behind flights it can never use.
  constexpr int kMaxRejectedFlights = 2;
  int rejected_flights = 0;
  std::promise<Result<FlightPayload>> flight_promise;
  bool registered = false;
  cache::VersionVector flight_version;
  for (;;) {
    // Pre-read Vd snapshot of the template's read set, taken before the
    // flight is published (and therefore before the backend read): a
    // write committing after this point advances Vd past the snapshot,
    // so the writer's own follower fails CanUse below and refetches
    // rather than treating possibly pre-write rows as fresh (§5.2).
    {
      std::vector<std::string> reads;
      {
        std::shared_lock<obs::TimedSharedMutex> lock(registry_mutex_);
        if (const sql::QueryTemplate* qt = registry_.Find(tmpl)) {
          reads = sql::CollectTableAccess(*qt->ast).reads;
        }
      }
      std::lock_guard<obs::TimedMutex> lock(versions_mutex_);
      flight_version = versions_.SnapshotFor(reads);
    }

    std::shared_ptr<InflightFetch> flight;
    uint64_t parked_before = 0;
    if (rejected_flights < kMaxRejectedFlights) {
      std::lock_guard<obs::TimedMutex> lock(inflight_mutex_);
      auto [it, inserted] = inflight_.try_emplace(flight_key);
      if (inserted) {
        it->second = std::make_shared<InflightFetch>();
        it->second->result = flight_promise.get_future().share();
        registered = true;
      } else {
        parked_before = it->second->waiters++;
        flight = it->second;
      }
    }
    if (flight == nullptr) break;  // leader (or flying alone): fetch below

    // Follower: the wait surfaces as db-execute time (that is what it
    // replaces). No CachePut, no retries, no breaker feed — the leader
    // owns all backend semantics; its Status fans out verbatim.
    ctx->Note(obs::AnnotationKind::kCoalesced, parked_before);
    Result<FlightPayload> shared = Status::OK();
    {
      StageTimer timer(this, ctx, obs::Stage::kDbExecute);
      shared = flight->result.get();
    }
    // The flight's snapshot proves freshness only up to the point the
    // leader issued its read: absorb it — never SyncClientToDb — and
    // only if this client's session has not moved past it since.
    bool version_ok = false;
    if (shared.ok()) {
      std::lock_guard<obs::TimedMutex> lock(versions_mutex_);
      version_ok = versions_.CanUse(client, shared->version);
      if (version_ok) versions_.AbsorbResult(client, shared->version);
    }
    {
      obs::JournalEvent event;
      event.type = obs::JournalEventType::kBackendCoalesced;
      event.tmpl = static_cast<uint64_t>(tmpl);
      event.client = static_cast<uint32_t>(client);
      event.a = parked_before;
      event.b = shared.ok() && !version_ok ? 1 : 0;  // session-rejected
      event.flags = shared.ok() ? obs::kJournalFlagOk : 0;
      Journal(event);
    }
    if (!shared.ok()) {
      metrics_.backend_coalesced.fetch_add(1, std::memory_order_relaxed);
      ctx->outcome = obs::TraceOutcome::kCoalescedHit;
      if (IsBackendFailure(shared.status())) {
        if (auto stale = TryServeStale(stale_candidate,
                                       static_cast<uint64_t>(tmpl), client,
                                       ctx)) {
          return stale;
        }
      }
      metrics_.errors.fetch_add(1, std::memory_order_relaxed);
      return shared.status();
    }
    if (version_ok) {
      metrics_.backend_coalesced.fetch_add(1, std::memory_order_relaxed);
      ctx->outcome = obs::TraceOutcome::kCoalescedHit;
      return respond(shared->result);
    }
    // Inherited rows may predate this client's own writes: go around and
    // fetch fresh (not counted as coalesced — the wait saved nothing).
    ++rejected_flights;
  }

  // Leader: bind the template's AST (no re-parse) and run it under reader
  // access.
  metrics_.remote_plain.fetch_add(1, std::memory_order_relaxed);
  ctx->outcome = obs::TraceOutcome::kRemotePlain;

  // Resolves the registered flight exactly once: the map entry goes first
  // so a late joiner becomes a fresh leader instead of parking on a
  // completed fetch, then the promise wakes every parked follower. If the
  // leader unwinds without resolving (an exception between registration
  // and publication), the destructor fails the flight instead of leaking
  // the entry and breaking every follower's future.
  struct FlightResolver {
    ChronoServer* server;
    const std::string& key;
    std::promise<Result<FlightPayload>>* promise;  // null: not registered
    void Resolve(Result<FlightPayload> value) {
      if (promise == nullptr) return;
      {
        std::lock_guard<obs::TimedMutex> lock(server->inflight_mutex_);
        server->inflight_.erase(key);
      }
      promise->set_value(std::move(value));
      promise = nullptr;
    }
    ~FlightResolver() {
      Resolve(Status::Internal("backend fetch abandoned before resolution"));
    }
  } resolver{this, flight_key, registered ? &flight_promise : nullptr};

  std::unique_ptr<sql::Statement> stmt =
      sql::BindParams(*parsed.tmpl->ast, parsed.params);
  BackendCall call;
  call.tmpl = static_cast<uint64_t>(tmpl);
  call.client = client;
  call.ctx = ctx;
  Result<db::ExecOutcome> outcome = Status::OK();
  {
    StageTimer timer(this, ctx, obs::Stage::kDbExecute);
    outcome = CallBackend(call, [&] {
      std::shared_lock<obs::TimedSharedMutex> lock(db_mutex_);
      return db_->Execute(*stmt);
    });
  }

  // Freeze the rows into the shared immutable payload exactly once, then
  // retire the flight and wake every parked follower.
  SharedResult payload;
  if (outcome.ok()) {
    payload = std::make_shared<const sql::ResultSet>(
        std::move(outcome->result));
    resolver.Resolve(FlightPayload{payload, std::move(flight_version)});
  } else {
    resolver.Resolve(outcome.status());
  }

  if (!outcome.ok()) {
    // Transport-level failure after every retry: degrade to the
    // version-stale entry if the operator opted in, rather than surface
    // an error. Explicitly stale results skip respond() — the mapper must
    // never train on superseded rows.
    if (IsBackendFailure(outcome.status())) {
      if (auto stale = TryServeStale(stale_candidate,
                                     static_cast<uint64_t>(tmpl), client,
                                     ctx)) {
        return stale;
      }
    }
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    return outcome.status();
  }
  CachePut(client, security_group, tmpl, parsed.bound_text, payload);
  {
    std::lock_guard<obs::TimedMutex> lock(versions_mutex_);
    versions_.SyncClientToDb(client);  // fresh read: Vc = Vd (§5.2)
  }
  return respond(payload);
}

bool ChronoServer::ExecuteCombined(ClientId client, int security_group,
                                   SessionState* session,
                                   const core::CombinedQuery& plan,
                                   uint64_t plan_id, ReqCtx* ctx) {
  // Combined queries are predictive work, inline or not: while the breaker
  // is unhealthy they are shed before touching the backend, so prefetch
  // never consumes capacity (or probe slots) demand traffic needs.
  if (!breaker_.AdmitPrefetch()) {
    ShedPrefetch(obs::kShedBreakerUnhealthy, plan_id, client);
    return false;
  }
  metrics_.remote_combined.fetch_add(1, std::memory_order_relaxed);
  {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kCombinedIssued;
    event.plan = plan_id;
    event.client = static_cast<uint32_t>(client);
    Journal(event);
  }
  auto db_begin = std::chrono::steady_clock::now();
  BackendCall call;
  call.is_prefetch = true;
  call.client = client;
  call.ctx = ctx;  // inline covering combine: annotate the demand trace
  Result<db::ExecOutcome> outcome = Status::OK();
  {
    StageTimer timer(this, ctx, obs::Stage::kDbExecute);
    outcome = CallBackend(call, [&] {
      std::shared_lock<obs::TimedSharedMutex> lock(db_mutex_);
      return db_->Execute(*plan.ast);
    });
  }
  {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kCombinedFetched;
    event.plan = plan_id;
    event.client = static_cast<uint32_t>(client);
    event.flags = outcome.ok() ? obs::kJournalFlagOk : 0;
    if (outcome.ok()) {
      event.a = outcome->result.row_count();
      event.b = outcome->result.ByteSize();
    }
    event.c =
        NsBetween(db_begin, std::chrono::steady_clock::now()) / 1000;
    Journal(event);
  }
  if (!outcome.ok()) return false;

  StageTimer split_timer(this, ctx, obs::Stage::kSplitDecode);
  Result<std::vector<core::SplitEntry>> split = Status::OK();
  {
    std::shared_lock<obs::TimedSharedMutex> lock(registry_mutex_);
    split = core::SplitResult(plan, outcome->result, registry_);
  }
  if (!split.ok()) return false;

  // Hit attribution: the transition-graph edge that prefetched a slot is
  // (first parent slot's template -> slot template); roots keep src 0.
  std::map<core::TemplateId, core::TemplateId> src_of;
  for (const core::DecodeSlot& slot : plan.slots) {
    core::TemplateId src = 0;
    if (!slot.parents.empty()) {
      int parent = slot.parents.front();
      if (parent >= 0 && static_cast<size_t>(parent) < plan.slots.size()) {
        src = plan.slots[static_cast<size_t>(parent)].tmpl;
      }
    }
    src_of.emplace(slot.tmpl, src);
  }

  for (const core::SplitEntry& entry : *split) {
    auto it = src_of.find(entry.tmpl);
    CachePut(client, security_group, entry.tmpl, entry.key, entry.result,
             plan_id, it == src_of.end() ? 0 : it->second);
    metrics_.predictions_cached.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<obs::TimedMutex> lock(versions_mutex_);
    versions_.SyncClientToDb(client);
  }
  if (config_.enable_learning) {
    std::lock_guard<obs::TimedMutex> lock(session->mutex);
    for (const core::SplitEntry& entry : *split) {
      session->mapper.ObserveResult(entry.tmpl, *entry.result);
      session->latest_params[entry.tmpl] = entry.params;
    }
  }
  return true;
}

std::optional<cache::CachedResult> ChronoServer::CacheGet(
    ClientId client, int security_group, const std::string& bound_text,
    std::optional<cache::CachedResult>* stale_candidate) {
  std::string key = CacheKey(client, bound_text);
  std::optional<cache::CachedResult> entry = cache_.Get(key);
  if (!entry.has_value()) return std::nullopt;
  if (entry->security_group != security_group) {
    metrics_.cache_rejects.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  bool version_ok;
  {
    std::lock_guard<obs::TimedMutex> lock(versions_mutex_);
    version_ok = versions_.CanUse(client, entry->version);
    if (version_ok) versions_.AbsorbResult(client, entry->version);
  }
  if (!version_ok) {
    metrics_.cache_rejects.fetch_add(1, std::memory_order_relaxed);
    // A security-cleared entry that merely failed the version check is
    // exactly what stale-serving may fall back to; hand the caller a copy
    // before any invalidation below.
    if (stale_candidate != nullptr && config_.stale_serve_us > 0) {
      *stale_candidate = *entry;
    }
    // A prefetched entry that fails the version check is stale for every
    // client that has seen the write (database versions are monotonic) —
    // drop it now so the audit sees invalidated-by-write instead of a
    // misleading evicted-unused later. The eviction callback turns this
    // Erase into the kEntryInvalidated journal event. While the breaker
    // is unhealthy and stale-serving is on, keep the entry resident: it
    // may be the only answer this node can still give.
    bool keep_for_stale =
        config_.stale_serve_us > 0 &&
        breaker_.state() != net::CircuitBreaker::State::kClosed;
    if (entry->prefetch_plan != 0 && !keep_for_stale) cache_.Invalidate(key);
    return std::nullopt;
  }
  // First demand hit on a prefetched entry: the cache just bumped
  // use_count, so our copy reading 1 means this very lookup was the first.
  if (entry->prefetch_plan != 0 && entry->use_count == 1) {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kEntryUsed;
    event.plan = entry->prefetch_plan;
    event.src = entry->prefetch_src;
    event.tmpl = entry->tmpl;
    event.a = cache::LruCache::EntryBytes(key, *entry);
    uint64_t now_us = NowMicros();
    event.b = now_us > entry->install_us ? now_us - entry->install_us : 0;
    event.client = static_cast<uint32_t>(client);
    Journal(event);
  }
  return entry;
}

void ChronoServer::CachePut(ClientId client, int security_group,
                            core::TemplateId tmpl,
                            const std::string& bound_text,
                            SharedResult result,
                            uint64_t prefetch_plan, uint64_t prefetch_src) {
  std::vector<std::string> reads;
  {
    std::shared_lock<obs::TimedSharedMutex> lock(registry_mutex_);
    if (const sql::QueryTemplate* qt = registry_.Find(tmpl)) {
      reads = sql::CollectTableAccess(*qt->ast).reads;
    }
  }
  cache::CachedResult entry;
  entry.SetResult(std::move(result));
  {
    std::lock_guard<obs::TimedMutex> lock(versions_mutex_);
    entry.version = versions_.SnapshotFor(reads);
  }
  entry.security_group = security_group;
  entry.node_id = 0;
  entry.prefetch_plan = prefetch_plan;
  entry.prefetch_src = static_cast<uint64_t>(prefetch_src);
  entry.tmpl = static_cast<uint64_t>(tmpl);
  entry.install_us = NowMicros();
  std::string key = CacheKey(client, bound_text);
  if (prefetch_plan != 0) {
    obs::JournalEvent event;
    event.type = obs::JournalEventType::kEntryInstalled;
    event.plan = prefetch_plan;
    event.src = entry.prefetch_src;
    event.tmpl = entry.tmpl;
    event.a = cache::LruCache::EntryBytes(key, entry);
    event.client = static_cast<uint32_t>(client);
    Journal(event);
  }
  cache_.Put(std::move(key), std::move(entry));
}

}  // namespace chrono::runtime
