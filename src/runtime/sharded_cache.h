#ifndef CHRONOCACHE_RUNTIME_SHARDED_CACHE_H_
#define CHRONOCACHE_RUNTIME_SHARDED_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/lru_cache.h"

namespace chrono::runtime {

/// \brief Lock-striped result cache for the concurrent serving runtime:
/// N independent `cache::LruCache` shards, each with its own mutex and an
/// equal slice of the byte budget. hash(key) picks the shard, so threads
/// touching different keys almost never contend, and LRU recency/eviction
/// stay shard-local (approximate global LRU — the standard Memcached-style
/// trade).
///
/// The surface mirrors LruCache's Get/Peek/Put/Erase, with one difference
/// forced by concurrency: lookups return a *copy* of the entry
/// (`std::optional<CachedResult>`), because a pointer into a shard would
/// dangle the moment another thread evicts the entry after we drop the
/// shard lock.
///
/// Lock order: shard mutexes are leaf locks — no callback or other lock
/// is ever taken while one is held, and at most one shard is locked at a
/// time (aggregate accessors visit shards sequentially).
class ShardedCache {
 public:
  /// `capacity_bytes` is the total budget, split evenly; `shards` is
  /// rounded up to at least 1.
  ShardedCache(size_t capacity_bytes, size_t shards);

  /// Installs one removal observer on every shard (replacing any previous
  /// one). The callback fires *under the owning shard's mutex* — a leaf
  /// lock — so it must stay lock-free-cheap (journal Record, relaxed
  /// counter bumps) and must never call back into this cache. Set before
  /// serving starts; not synchronised against concurrent mutation.
  void SetEvictionCallback(cache::EvictionCallback callback);

  /// Copying lookup; refreshes LRU recency and hit/miss counters in the
  /// owning shard. nullopt on miss.
  std::optional<cache::CachedResult> Get(const std::string& key);

  /// Side-effect-free copying lookup: no recency update, no accounting.
  std::optional<cache::CachedResult> Peek(const std::string& key) const;

  bool Contains(const std::string& key) const;

  /// Inserts or replaces; evicts within the owning shard to fit.
  void Put(const std::string& key, cache::CachedResult value);

  /// Removes an entry if present; returns whether it existed.
  bool Invalidate(const std::string& key);
  bool Erase(const std::string& key) { return Invalidate(key); }

  void Clear();

  // Aggregates across shards. Each shard is locked in turn, so under
  // concurrent mutation the totals are per-shard-consistent snapshots.
  size_t entry_count() const;
  size_t used_bytes() const;
  size_t capacity_bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

  size_t shard_count() const { return shards_.size(); }
  /// Which shard `key` maps to (tests pin keys to shards with this).
  size_t ShardIndex(const std::string& key) const;
  /// Entry count of one shard (byte-accounting tests).
  size_t ShardEntryCount(size_t shard) const;
  size_t ShardUsedBytes(size_t shard) const;
  /// Evictions performed by one shard (per-shard occupancy gauges).
  uint64_t ShardEvictions(size_t shard) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    cache::LruCache cache;
    explicit Shard(size_t bytes) : cache(bytes) {}
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace chrono::runtime

#endif  // CHRONOCACHE_RUNTIME_SHARDED_CACHE_H_
