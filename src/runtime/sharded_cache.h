#ifndef CHRONOCACHE_RUNTIME_SHARDED_CACHE_H_
#define CHRONOCACHE_RUNTIME_SHARDED_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/lru_cache.h"
#include "obs/contention.h"

namespace chrono::runtime {

/// \brief Lock-striped result cache for the concurrent serving runtime:
/// N independent `cache::LruCache` shards, each with its own mutex and an
/// equal slice of the byte budget. hash(key) picks the shard, so threads
/// touching different keys almost never contend, and LRU recency/eviction
/// stay shard-local (approximate global LRU — the standard Memcached-style
/// trade).
///
/// The surface mirrors LruCache's Get/Peek/Put/Erase, with one difference
/// forced by concurrency: lookups copy the entry *metadata* out
/// (`std::optional<CachedResult>`), because a pointer into a shard would
/// dangle the moment another thread evicts the entry after we drop the
/// shard lock. The payload itself is never copied: `CachedResult::result`
/// is an immutable `shared_ptr<const sql::ResultSet>`, so a hit costs a
/// ref-count bump plus ~100 bytes of version/attribution metadata — the
/// copied-out payload stays valid (and unchanged) even after the entry is
/// evicted or replaced under another thread.
///
/// Lock order: shard mutexes are leaf locks — no callback or other lock
/// is ever taken while one is held, and at most one shard is locked at a
/// time (locking accessors visit shards sequentially). The aggregate
/// counters (hits/misses/entry_count/used_bytes/evictions) are served
/// from relaxed atomics maintained as deltas by the mutating calls, so a
/// stats scrape or bench progress tick never takes a single shard mutex
/// and cannot contend with the hot path; under concurrent mutation they
/// trail the locked per-shard views by at most the in-flight calls.
class ShardedCache {
 public:
  /// `capacity_bytes` is the total budget, split evenly; `shards` is
  /// rounded up to at least 1. `stripe_site` (may be null) attributes
  /// shard-mutex wait/hold telemetry to one shared "cache.shard" lock
  /// site — per-stripe attribution would multiply metric families without
  /// adding signal, since stripes are interchangeable by construction.
  ShardedCache(size_t capacity_bytes, size_t shards,
               obs::LockSite* stripe_site = nullptr);

  /// Installs one removal observer on every shard (replacing any previous
  /// one). The callback fires *under the owning shard's mutex* — a leaf
  /// lock — so it must stay lock-free-cheap (journal Record, relaxed
  /// counter bumps) and must never call back into this cache. Set before
  /// serving starts; not synchronised against concurrent mutation.
  void SetEvictionCallback(cache::EvictionCallback callback);

  /// Zero-copy lookup: shares the immutable payload, copies only the
  /// entry metadata. Refreshes LRU recency and hit/miss counters in the
  /// owning shard. nullopt on miss.
  std::optional<cache::CachedResult> Get(const std::string& key);

  /// Side-effect-free lookup: no recency update, no accounting.
  std::optional<cache::CachedResult> Peek(const std::string& key) const;

  bool Contains(const std::string& key) const;

  /// Inserts or replaces; evicts within the owning shard to fit.
  void Put(const std::string& key, cache::CachedResult value);

  /// Removes an entry if present; returns whether it existed.
  bool Invalidate(const std::string& key);
  bool Erase(const std::string& key) { return Invalidate(key); }

  void Clear();

  // Aggregates across shards, served from relaxed atomics — no locks, so
  // the stats path never contends with serving threads. Exact whenever no
  // mutation is in flight (each mutating call publishes its delta right
  // after releasing the shard lock).
  size_t entry_count() const;
  size_t used_bytes() const;
  size_t capacity_bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

  size_t shard_count() const { return shards_.size(); }
  /// Which shard `key` maps to (tests pin keys to shards with this).
  size_t ShardIndex(const std::string& key) const;
  /// Entry count of one shard (byte-accounting tests).
  size_t ShardEntryCount(size_t shard) const;
  size_t ShardUsedBytes(size_t shard) const;
  /// Evictions performed by one shard (per-shard occupancy gauges).
  uint64_t ShardEvictions(size_t shard) const;

 private:
  struct Shard {
    mutable obs::TimedMutex mutex;
    cache::LruCache cache;
    Shard(size_t bytes, obs::LockSite* site) : mutex(site), cache(bytes) {}
  };

  /// Occupancy movement one mutating call produced, measured inside the
  /// shard lock and published to the lock-free aggregates after release.
  struct Delta {
    int64_t entries = 0;
    int64_t bytes = 0;
    uint64_t evictions = 0;
  };
  void PublishDelta(const Delta& delta);

  std::vector<std::unique_ptr<Shard>> shards_;

  // Lock-free aggregate mirrors (relaxed: monotonic counters plus
  // occupancy deltas; readers need totals, not ordering).
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<int64_t> entry_count_{0};
  std::atomic<int64_t> used_bytes_{0};
};

}  // namespace chrono::runtime

#endif  // CHRONOCACHE_RUNTIME_SHARDED_CACHE_H_
