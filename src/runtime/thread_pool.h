#ifndef CHRONOCACHE_RUNTIME_THREAD_POOL_H_
#define CHRONOCACHE_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/contention.h"

namespace chrono::obs {
class Histogram;
}  // namespace chrono::obs

namespace chrono::runtime {

/// \brief Fixed-size worker pool over a bounded MPMC task queue — the
/// wall-clock counterpart of the simulator's `Resource` middleware pool.
/// Producers block when the queue is full (closed-loop backpressure, the
/// same discipline serve_bench's clients run under); workers drain tasks
/// until Shutdown(). Tasks that throw are swallowed and counted — one bad
/// query must never take a serving thread down.
class ThreadPool {
 public:
  /// Spawns `workers` threads (minimum 1). `queue_capacity` bounds the
  /// number of queued-but-not-yet-running tasks. `background_headroom`
  /// reserves that many queue slots for blocking Submit (demand work):
  /// TrySubmit starts shedding once depth reaches
  /// capacity - headroom, so under saturation best-effort prefetch is
  /// dropped before demand ever has to wait. Clamped to capacity - 1.
  /// `queue_site` (may be null) attributes queue-mutex contention to a
  /// "pool.queue" lock site. Workers register in the ThreadRegistry as
  /// chrono-worker-N with role `worker`.
  explicit ThreadPool(int workers, size_t queue_capacity = 1024,
                      size_t background_headroom = 0,
                      obs::LockSite* queue_site = nullptr);

  /// Drains and joins. Equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false —
  /// without running or retaining the task — if the pool is shut down
  /// (before or while waiting for space).
  bool Submit(std::function<void()> task);

  /// Non-blocking enqueue for best-effort work: false — shedding the task
  /// — if the queue has fewer than background_headroom free slots or the
  /// pool is shut down. Sheds are counted (tasks_shed).
  bool TrySubmit(std::function<void()> task);

  /// Stops accepting tasks, lets workers finish everything already
  /// queued, and joins them. Idempotent; safe to call concurrently with
  /// Submit (submitters past the shutdown point get `false`).
  void Shutdown();

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Tasks currently queued (not yet picked up by a worker).
  size_t queue_depth() const;
  /// High-water mark of queue_depth over the pool's lifetime.
  size_t peak_queue_depth() const;
  /// Tasks that finished running (including ones that threw).
  uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks that exited via an exception (caught and discarded).
  uint64_t tasks_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  /// TrySubmit calls rejected because the queue lacked headroom.
  uint64_t tasks_shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  size_t background_headroom() const { return headroom_; }

  /// Attaches queue-wait and run-time histograms (wall-clock nanoseconds).
  /// Either may be null to leave that dimension uninstrumented. Takes the
  /// queue lock, so attaching mid-traffic is safe; the histograms must
  /// outlive the pool. Recording is lock-free (obs::Histogram contract).
  void AttachMetrics(obs::Histogram* queue_wait_ns, obs::Histogram* run_ns);

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop(int index);

  const size_t capacity_;
  const size_t headroom_;  // queue slots TrySubmit may not use
  /// The queue mutex is a TimedMutex so contention on the pool's one
  /// shared lock shows up in /contention; the condition variables must be
  /// _any because std::condition_variable works only with std::mutex.
  /// Waiting still goes through the wrapper's lock()/unlock(), so wakeup
  /// re-acquisition under load is captured as wait time too.
  mutable obs::TimedMutex mutex_;
  std::mutex join_mutex_;
  std::condition_variable_any not_empty_;  // workers wait here
  std::condition_variable_any not_full_;   // producers wait here
  std::deque<Task> queue_;
  bool shutdown_ = false;
  size_t peak_depth_ = 0;
  obs::Histogram* queue_wait_ns_ = nullptr;  // guarded by mutex_
  obs::Histogram* run_ns_ = nullptr;         // guarded by mutex_
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> shed_{0};
  std::vector<std::thread> threads_;
};

}  // namespace chrono::runtime

#endif  // CHRONOCACHE_RUNTIME_THREAD_POOL_H_
