#ifndef CHRONOCACHE_RUNTIME_THREAD_POOL_H_
#define CHRONOCACHE_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/contention.h"

namespace chrono::obs {
class Histogram;
}  // namespace chrono::obs

namespace chrono::runtime {

/// \brief Fixed-size worker pool over two bounded task lanes — the
/// wall-clock counterpart of the simulator's `Resource` middleware pool.
///
/// Admission is split by intent (§17): the **demand** lane carries work a
/// client is waiting on (blocking Submit, closed-loop backpressure), the
/// **prefetch** lane carries best-effort speculation (non-blocking
/// TrySubmit, shed when its lane is full). Workers drain with strict
/// demand priority — a prefetch task runs only when the demand lane is
/// empty — so under saturation speculation can never delay a waiting
/// client (this replaces the old single-queue headroom heuristic, which
/// still let already-queued prefetches run ahead of newly-arrived demand).
///
/// Tasks may carry a deadline plus an `expired_fn`: a task whose deadline
/// passed while it sat in the queue is rejected in O(1) at dequeue —
/// `expired_fn` runs instead of `fn`, so its completion is still
/// delivered but no backend budget is burned on a client that already
/// gave up. Tasks that throw are swallowed and counted — one bad query
/// must never take a serving thread down.
class ThreadPool {
 public:
  enum class Lane { kDemand = 0, kPrefetch = 1 };
  static constexpr int kLaneCount = 2;

  /// Spawns `workers` threads (minimum 1). `queue_capacity` bounds the
  /// demand lane; `prefetch_capacity` bounds the prefetch lane (0 means
  /// "same as queue_capacity"). `queue_site` (may be null) attributes
  /// queue-mutex contention to a "pool.queue" lock site. Workers register
  /// in the ThreadRegistry as chrono-worker-N with role `worker`.
  explicit ThreadPool(int workers, size_t queue_capacity = 1024,
                      size_t prefetch_capacity = 0,
                      obs::LockSite* queue_site = nullptr);

  /// Drains and joins. Equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a demand task, blocking while the demand lane is full.
  /// Returns false — without running or retaining the task — if the pool
  /// is shut down (before or while waiting for space).
  bool Submit(std::function<void()> task);

  /// Demand submit with an expiry: if `deadline` passes before a worker
  /// dequeues the task, `expired_fn` runs (on the worker) instead of the
  /// task — O(1), no execution, completion still delivered. Exactly one
  /// of the two callbacks runs for every accepted task, including during
  /// shutdown drain.
  bool Submit(std::function<void()> task,
              std::chrono::steady_clock::time_point deadline,
              std::function<void()> expired_fn);

  /// Non-blocking lane-aware enqueue: false — shedding the task — if the
  /// lane is full or the pool is shut down. Sheds are counted
  /// (tasks_shed).
  bool TrySubmit(Lane lane, std::function<void()> task);

  /// Back-compat alias: best-effort prefetch submit.
  bool TrySubmit(std::function<void()> task) {
    return TrySubmit(Lane::kPrefetch, std::move(task));
  }

  /// Stops accepting tasks and joins the workers. Deterministic
  /// drain-or-reject (§17): queued demand tasks all run (`fn`, or
  /// `expired_fn` if their deadline passed — never silently dropped, so
  /// every pending completion is delivered and journal recorded==drained
  /// stays exact even when the queue is full at drain time); queued
  /// prefetch tasks are discarded and counted as shed (they have no
  /// waiting completions). Idempotent; safe to call concurrently with
  /// Submit (submitters past the shutdown point get `false`).
  void Shutdown();

  int workers() const { return static_cast<int>(threads_.size()); }

  /// True once Shutdown() has begun (drain in progress or complete).
  /// Expiry callbacks use this to tell a live rejection from one that
  /// happened while the shutdown drain emptied the demand lane.
  bool shutting_down() const;

  /// Tasks currently queued across both lanes (not yet picked up).
  size_t queue_depth() const;
  /// Tasks currently queued in one lane.
  size_t lane_depth(Lane lane) const;
  /// High-water mark of queue_depth over the pool's lifetime.
  size_t peak_queue_depth() const;
  /// Tasks that finished running (including ones that threw).
  uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks that exited via an exception (caught and discarded).
  uint64_t tasks_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  /// TrySubmit calls rejected because their lane was full, plus prefetch
  /// tasks discarded at Shutdown.
  uint64_t tasks_shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Tasks rejected at dequeue because their deadline had already passed
  /// (expired_fn ran instead of the task).
  uint64_t tasks_expired() const {
    return expired_.load(std::memory_order_relaxed);
  }
  size_t prefetch_capacity() const { return prefetch_capacity_; }

  /// Attaches per-lane queue-wait and run-time histograms (wall-clock
  /// nanoseconds). Any may be null to leave that dimension
  /// uninstrumented. Takes the queue lock, so attaching mid-traffic is
  /// safe; the histograms must outlive the pool. Recording is lock-free
  /// (obs::Histogram contract). The demand-lane wait histogram is the
  /// brownout controller's input signal (§17).
  void AttachMetrics(obs::Histogram* demand_wait_ns,
                     obs::Histogram* prefetch_wait_ns,
                     obs::Histogram* run_ns);

 private:
  struct Task {
    std::function<void()> fn;
    std::function<void()> expired_fn;  // may be empty: no expiry
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // valid iff expired_fn
  };

  void WorkerLoop(int index);

  const size_t capacity_;           // demand lane bound
  const size_t prefetch_capacity_;  // prefetch lane bound
  /// The queue mutex is a TimedMutex so contention on the pool's one
  /// shared lock shows up in /contention; the condition variables must be
  /// _any because std::condition_variable works only with std::mutex.
  /// Waiting still goes through the wrapper's lock()/unlock(), so wakeup
  /// re-acquisition under load is captured as wait time too.
  mutable obs::TimedMutex mutex_;
  std::mutex join_mutex_;
  std::condition_variable_any not_empty_;  // workers wait here
  std::condition_variable_any not_full_;   // demand producers wait here
  std::deque<Task> lanes_[kLaneCount];
  bool shutdown_ = false;
  size_t peak_depth_ = 0;
  obs::Histogram* wait_ns_[kLaneCount] = {nullptr, nullptr};  // by mutex_
  obs::Histogram* run_ns_ = nullptr;                          // by mutex_
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> expired_{0};
  std::vector<std::thread> threads_;
};

}  // namespace chrono::runtime

#endif  // CHRONOCACHE_RUNTIME_THREAD_POOL_H_
