#include "runtime/sharded_cache.h"

#include <algorithm>
#include <functional>

namespace chrono::runtime {

ShardedCache::ShardedCache(size_t capacity_bytes, size_t shards,
                           obs::LockSite* stripe_site) {
  size_t n = std::max<size_t>(shards, 1);
  // Split the budget evenly; distribute the remainder so the shard sum is
  // exactly the requested capacity (the byte-accounting tests check this).
  size_t base = capacity_bytes / n;
  size_t extra = capacity_bytes % n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(base + (i < extra ? 1 : 0),
                                              stripe_site));
  }
}

void ShardedCache::SetEvictionCallback(cache::EvictionCallback callback) {
  for (auto& shard : shards_) {
    std::lock_guard<obs::TimedMutex> lock(shard->mutex);
    shard->cache.SetEvictionCallback(callback);
  }
}

size_t ShardedCache::ShardIndex(const std::string& key) const {
  return std::hash<std::string>{}(key) % shards_.size();
}

void ShardedCache::PublishDelta(const Delta& delta) {
  if (delta.entries != 0)
    entry_count_.fetch_add(delta.entries, std::memory_order_relaxed);
  if (delta.bytes != 0)
    used_bytes_.fetch_add(delta.bytes, std::memory_order_relaxed);
  if (delta.evictions != 0)
    evictions_.fetch_add(delta.evictions, std::memory_order_relaxed);
}

std::optional<cache::CachedResult> ShardedCache::Get(const std::string& key) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::optional<cache::CachedResult> out;
  {
    std::lock_guard<obs::TimedMutex> lock(shard.mutex);
    const cache::CachedResult* hit = shard.cache.Get(key);
    if (hit != nullptr) out = *hit;  // shares the payload, copies metadata
  }
  if (out.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

std::optional<cache::CachedResult> ShardedCache::Peek(
    const std::string& key) const {
  const Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<obs::TimedMutex> lock(shard.mutex);
  const cache::CachedResult* hit = shard.cache.Peek(key);
  if (hit == nullptr) return std::nullopt;
  return *hit;
}

bool ShardedCache::Contains(const std::string& key) const {
  const Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<obs::TimedMutex> lock(shard.mutex);
  return shard.cache.Contains(key);
}

void ShardedCache::Put(const std::string& key, cache::CachedResult value) {
  Shard& shard = *shards_[ShardIndex(key)];
  Delta delta;
  {
    std::lock_guard<obs::TimedMutex> lock(shard.mutex);
    size_t entries = shard.cache.entry_count();
    size_t bytes = shard.cache.used_bytes();
    uint64_t evictions = shard.cache.evictions();
    shard.cache.Put(key, std::move(value));
    delta.entries = static_cast<int64_t>(shard.cache.entry_count()) -
                    static_cast<int64_t>(entries);
    delta.bytes = static_cast<int64_t>(shard.cache.used_bytes()) -
                  static_cast<int64_t>(bytes);
    delta.evictions = shard.cache.evictions() - evictions;
  }
  PublishDelta(delta);
}

bool ShardedCache::Invalidate(const std::string& key) {
  Shard& shard = *shards_[ShardIndex(key)];
  Delta delta;
  bool erased;
  {
    std::lock_guard<obs::TimedMutex> lock(shard.mutex);
    size_t bytes = shard.cache.used_bytes();
    erased = shard.cache.Erase(key);
    delta.entries = erased ? -1 : 0;
    delta.bytes = static_cast<int64_t>(shard.cache.used_bytes()) -
                  static_cast<int64_t>(bytes);
  }
  PublishDelta(delta);
  return erased;
}

void ShardedCache::Clear() {
  for (auto& shard : shards_) {
    Delta delta;
    {
      std::lock_guard<obs::TimedMutex> lock(shard->mutex);
      delta.entries = -static_cast<int64_t>(shard->cache.entry_count());
      delta.bytes = -static_cast<int64_t>(shard->cache.used_bytes());
      shard->cache.Clear();
    }
    PublishDelta(delta);
  }
}

size_t ShardedCache::entry_count() const {
  int64_t v = entry_count_.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<size_t>(v) : 0;
}

size_t ShardedCache::used_bytes() const {
  int64_t v = used_bytes_.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<size_t>(v) : 0;
}

size_t ShardedCache::capacity_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->cache.capacity_bytes();
  }
  return total;
}

uint64_t ShardedCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

uint64_t ShardedCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

uint64_t ShardedCache::evictions() const {
  return evictions_.load(std::memory_order_relaxed);
}

size_t ShardedCache::ShardEntryCount(size_t shard) const {
  std::lock_guard<obs::TimedMutex> lock(shards_[shard]->mutex);
  return shards_[shard]->cache.entry_count();
}

size_t ShardedCache::ShardUsedBytes(size_t shard) const {
  std::lock_guard<obs::TimedMutex> lock(shards_[shard]->mutex);
  return shards_[shard]->cache.used_bytes();
}

uint64_t ShardedCache::ShardEvictions(size_t shard) const {
  std::lock_guard<obs::TimedMutex> lock(shards_[shard]->mutex);
  return shards_[shard]->cache.evictions();
}

}  // namespace chrono::runtime
