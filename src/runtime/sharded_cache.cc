#include "runtime/sharded_cache.h"

#include <algorithm>
#include <functional>

namespace chrono::runtime {

ShardedCache::ShardedCache(size_t capacity_bytes, size_t shards) {
  size_t n = std::max<size_t>(shards, 1);
  // Split the budget evenly; distribute the remainder so the shard sum is
  // exactly the requested capacity (the byte-accounting tests check this).
  size_t base = capacity_bytes / n;
  size_t extra = capacity_bytes % n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(base + (i < extra ? 1 : 0)));
  }
}

void ShardedCache::SetEvictionCallback(cache::EvictionCallback callback) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cache.SetEvictionCallback(callback);
  }
}

size_t ShardedCache::ShardIndex(const std::string& key) const {
  return std::hash<std::string>{}(key) % shards_.size();
}

std::optional<cache::CachedResult> ShardedCache::Get(const std::string& key) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const cache::CachedResult* hit = shard.cache.Get(key);
  if (hit == nullptr) return std::nullopt;
  return *hit;
}

std::optional<cache::CachedResult> ShardedCache::Peek(
    const std::string& key) const {
  const Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const cache::CachedResult* hit = shard.cache.Peek(key);
  if (hit == nullptr) return std::nullopt;
  return *hit;
}

bool ShardedCache::Contains(const std::string& key) const {
  const Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.cache.Contains(key);
}

void ShardedCache::Put(const std::string& key, cache::CachedResult value) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.cache.Put(key, std::move(value));
}

bool ShardedCache::Invalidate(const std::string& key) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.cache.Erase(key);
}

void ShardedCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cache.Clear();
  }
}

size_t ShardedCache::entry_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.entry_count();
  }
  return total;
}

size_t ShardedCache::used_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.used_bytes();
  }
  return total;
}

size_t ShardedCache::capacity_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->cache.capacity_bytes();
  }
  return total;
}

uint64_t ShardedCache::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.hits();
  }
  return total;
}

uint64_t ShardedCache::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.misses();
  }
  return total;
}

uint64_t ShardedCache::evictions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.evictions();
  }
  return total;
}

size_t ShardedCache::ShardEntryCount(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  return shards_[shard]->cache.entry_count();
}

size_t ShardedCache::ShardUsedBytes(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  return shards_[shard]->cache.used_bytes();
}

uint64_t ShardedCache::ShardEvictions(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  return shards_[shard]->cache.evictions();
}

}  // namespace chrono::runtime
