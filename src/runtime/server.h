#ifndef CHRONOCACHE_RUNTIME_SERVER_H_
#define CHRONOCACHE_RUNTIME_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/lru_map.h"
#include "common/result.h"
#include "core/dependency_manager.h"
#include "core/loop_detector.h"
#include "core/param_mapper.h"
#include "core/result_splitter.h"
#include "core/session.h"
#include "core/template_registry.h"
#include "core/transition_graph.h"
#include "db/database.h"
#include "net/circuit_breaker.h"
#include "net/fault_injector.h"
#include "net/retry_policy.h"
#include "obs/audit.h"
#include "obs/contention.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/brownout.h"
#include "runtime/sharded_cache.h"
#include "runtime/thread_pool.h"
#include "sql/result_set.h"
#include "sql/template.h"

namespace chrono::runtime {

using core::ClientId;

/// A result payload shared between the cache, in-flight coalesced waiters
/// and client futures. Immutable after publication: a cache hit is a
/// ref-count bump, never a row copy (DESIGN.md §12).
using SharedResult = std::shared_ptr<const sql::ResultSet>;

/// \brief Tuning knobs for one wall-clock serving node. Mirrors the
/// simulator's MiddlewareConfig where the concepts overlap; times are real
/// microseconds instead of virtual SimTime.
struct ServerConfig {
  int workers = 4;                     // serving thread-pool size
  size_t queue_capacity = 4096;        // bounded task queue (backpressure)
  size_t cache_bytes = 64ull << 20;    // total result-cache budget
  size_t cache_shards = 16;            // lock stripes
  size_t template_cache_entries = 512; // memoized AnalyzeQuery results
  double tau = 0.8;                    // temporal correlation threshold
  uint64_t delta_t_us = 200'000;       // Δt window, wall-clock µs
  uint64_t min_occurrences = 3;        // extraction threshold
  int min_validations = 2;             // mapping confirmation threshold
  size_t extract_every = 4;            // model-mining cadence
  bool enable_learning = true;         // learn + predictively combine
  bool enable_combining = true;        // fire combined prefetches
  bool share_across_clients = true;    // shared vs. per-client cache keys
  /// Simulated one-way-pair WAN round trip to the remote database, slept
  /// (outside every lock) once per database round trip. 0 disables. This
  /// is the paper's deployment premise — the mid-tier cache sits a WAN
  /// away from the database — and it is what worker threads overlap.
  uint64_t db_latency_us = 0;

  /// External metrics registry (must outlive the server); the server owns
  /// a private one when null, so instrumentation is always live. All
  /// stages, the pool, the shards and the database report through this
  /// one registry (DESIGN.md §9).
  obs::MetricsRegistry* registry = nullptr;
  /// Recent-request trace ring size; 0 disables per-request tracing.
  size_t trace_capacity = 256;
  /// Bound SQL text retained per trace (truncated beyond this).
  size_t trace_sql_bytes = 120;

  /// Tail reservoir (DESIGN.md §15): slowest traces retained per sliding
  /// window so p99 outliers survive ring wrap. Disabled with tracing
  /// (trace_capacity == 0) or when tail_top_k == 0.
  size_t tail_top_k = 16;
  /// Absolute retention threshold: any trace at least this slow lands in
  /// the forced ring regardless of the window top-K. 0 = no threshold.
  uint64_t tail_threshold_us = 0;
  /// Tail sliding-window width.
  uint64_t tail_window_us = 60'000'000;
  /// Forced-retention ring size (kFlagTraced + over-threshold traces).
  size_t tail_forced_capacity = 32;

  /// Time-series telemetry ring (/timeseries): samples retained and the
  /// sampling period. timeseries_capacity == 0 disables the sampler.
  size_t timeseries_capacity = 300;
  uint64_t timeseries_interval_ms = 1000;

  /// Prefetch-efficacy journal (DESIGN.md §10): always on by default —
  /// the full prefetch lifecycle plus request outcomes flow into an
  /// EventJournal and fold into a PrefetchAudit. `false` exists only for
  /// the A/B overhead harness (serve_bench --no-journal).
  bool enable_journal = true;
  /// Per-thread journal ring capacity in events.
  size_t journal_buffer_events = 8192;
  /// Journal drainer cadence; 0 = no drainer thread (manual Drain()).
  uint64_t journal_drain_ms = 5;

  // --- Fault tolerance (DESIGN.md §11) ---

  /// Scripted fault schedule applied to every remote-database call
  /// (serve_bench --fault-*). Off by default.
  net::FaultOptions fault;
  /// Deadline budget per remote operation, wall µs; 0 = unlimited. The
  /// budget spans all retry attempts of one demand read.
  uint64_t request_deadline_us = 0;
  /// Per-attempt timeout within the deadline; 0 = whatever remains of the
  /// deadline. A blackout burns one attempt budget, not the whole deadline.
  uint64_t attempt_timeout_us = 0;
  /// Backoff schedule for idempotent demand-read retries. Writes never
  /// auto-retry; prefetch never retries (it is shed instead).
  net::RetryOptions retry;
  bool enable_retries = true;
  /// Circuit breaker thresholds for the remote-database path.
  net::CircuitBreaker::Options breaker;
  /// Serve version-stale cached entries (age-bounded) when a demand fetch
  /// fails at the transport level; 0 disables (--stale-serve-ms).
  uint64_t stale_serve_us = 0;

  // --- Overload control (DESIGN.md §17) ---

  /// Prefetch-lane capacity of the worker pool (the demand lane uses
  /// queue_capacity). Strict demand priority replaces the old headroom
  /// heuristic: speculation queues separately and only runs on an empty
  /// demand lane. SIZE_MAX = default (queue_capacity / 8, minimum 1).
  size_t prefetch_queue_capacity = SIZE_MAX;
  /// Demand queue-wait p99 target the brownout controller holds
  /// (--queue-target-ms); 0 disables adaptive brownout entirely.
  uint64_t queue_target_us = 0;
  /// Brownout sampler cadence and hysteresis (see BrownoutController).
  uint64_t brownout_sample_ms = 100;
  int brownout_up_samples = 2;
  int brownout_down_samples = 5;

  /// Arms per-site lock telemetry (DESIGN.md §16): wait/hold histograms
  /// on the hot locks, exported at /metrics and ranked at /contention.
  /// Disarmed (--no-lock-telemetry), every instrumented lock costs one
  /// relaxed load over a plain mutex — the A/B'd fast path.
  bool lock_telemetry = true;
};

/// \brief Wall-clock serving metrics (relaxed atomics; Snapshot() copies).
struct ServerMetrics {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t cache_hits = 0;          // client reads answered from the cache
  uint64_t cache_rejects = 0;       // present but failed session/security
  uint64_t remote_plain = 0;        // uncombined remote reads
  uint64_t backend_coalesced = 0;   // misses that joined an in-flight fetch
  uint64_t remote_combined = 0;     // combined queries executed
  uint64_t predictions_cached = 0;  // result sets cached ahead of time
  uint64_t prediction_hits = 0;     // misses answered by an inline combine
  uint64_t prediction_fallbacks = 0;  // combined result missed our query
  uint64_t prefetched_hits = 0;     // cache hits on predictively cached rows
  uint64_t prefetches_dropped = 0;  // background tasks rejected (queue full)
  uint64_t errors = 0;              // statements that returned a status
  uint64_t backend_retries = 0;     // demand-read retries after failures
  uint64_t backend_timeouts = 0;    // remote calls abandoned at deadline
  uint64_t stale_serves = 0;        // demand reads answered from stale data
  uint64_t prefetches_shed_breaker = 0;  // prefetch shed: breaker unhealthy
  uint64_t breaker_rejects = 0;     // demand rejected while breaker open
  uint64_t faults_injected = 0;     // injected transport failures
  uint64_t deadline_expired = 0;    // rejected unexecuted at dequeue (§17)
  uint64_t brownout_sheds = 0;      // work dropped by the brownout ladder

  double CacheHitRate() const {
    return reads == 0 ? 0 : static_cast<double>(cache_hits) /
                                static_cast<double>(reads);
  }
};

/// \brief The concurrent serving runtime: a ChronoCache middleware node
/// that serves real threads under wall-clock time, alongside the
/// discrete-event simulator (which remains the vehicle for the paper's §6
/// experiments). One shared database, one lock-striped result cache, one
/// worker pool; the learned models (transition graph, parameter mapper,
/// dependency table) are per-session, exactly as in the paper, and the
/// template registry is shared across all sessions.
///
/// Threading model — lock order is strictly
///   server-level locks  →  per-session lock  →  cache-shard lock
/// where the server-level locks (template cache, registry, session table,
/// version vectors, database RW lock) are never acquired while a session
/// or shard lock is held, at most one of them nests above a session lock
/// (the registry's reader side, during learning/combining), and shard
/// locks are leaves. The database is guarded by a reader/writer lock:
/// read-only statements execute concurrently under reader access (indexes
/// are warmed eagerly so reads are side-effect-free), writes and DDL take
/// the writer side. See DESIGN.md §8. Observability sits outside this
/// order entirely: hot-path metric recording is lock-free, and the
/// exporters only ever pull snapshots (DESIGN.md §9).
class ChronoServer {
 public:
  /// `db` must outlive the server. The server warms the database's
  /// indexes at construction so reader-locked execution never triggers a
  /// lazy index build; populate the database before constructing.
  ChronoServer(db::Database* db, ServerConfig config);
  ~ChronoServer();

  ChronoServer(const ChronoServer&) = delete;
  ChronoServer& operator=(const ChronoServer&) = delete;

  /// Asynchronous client entry point: enqueues the statement on the
  /// worker pool (blocking while the queue is full) and returns a future
  /// for the response. After Shutdown() the future holds an error status.
  /// The payload is a shared immutable result — callers must not mutate
  /// it; concurrent futures may alias the same rows.
  std::future<Result<SharedResult>> Submit(ClientId client, std::string sql,
                                           int security_group = 0);

  /// Callback-style asynchronous entry point for event-driven callers
  /// (the wire frontend): enqueues the statement and invokes `done` from
  /// the worker thread that executed it — exactly once, including after
  /// Shutdown() (then with an error status, from the calling thread).
  /// `done` must not block: the wire frontend hands the response to its
  /// IO thread via an eventfd-signalled completion queue.
  void SubmitAsync(ClientId client, std::string sql, int security_group,
                   std::function<void(Result<SharedResult>)> done);

  /// Wire-frontend timing context for one request (server-clock µs, see
  /// NowMicros): when the IO thread began decoding the frame and when it
  /// dispatched the request to the pool. `traced` marks a client-forced
  /// trace (wire kFlagTraced) that bypasses tail-reservoir admission.
  struct WireTiming {
    uint64_t decode_start_us = 0;
    uint64_t dispatch_us = 0;
    bool traced = false;
    /// Absolute server-clock µs the client's propagated deadline lands
    /// (wire deadline_ms anchored at decode start); 0 = none. Clamps the
    /// §11 retry budget and arms expiry-at-dequeue rejection (§17).
    uint64_t deadline_us = 0;
  };

  /// Wire-path variant of SubmitAsync: the finished request's trace is
  /// handed to `done` still unpublished (null when tracing is off or the
  /// pool rejected the work). The frontend appends its completion-wait /
  /// response-flush spans once the response bytes actually leave the
  /// socket, then hands the trace back via PublishTrace — so a trace's
  /// timeline covers the full wire round trip, not just the worker.
  void SubmitAsync(
      ClientId client, std::string sql, int security_group,
      const WireTiming& wire,
      std::function<void(Result<SharedResult>,
                         std::shared_ptr<obs::RequestTrace>)>
          done);

  /// Publishes a deferred wire-path trace (ring + tail reservoir +
  /// wire-stage histograms). The caller must be done mutating it.
  void PublishTrace(std::shared_ptr<obs::RequestTrace> trace);

  /// Synchronous entry point: runs the full analyze → predict → combine →
  /// decode pipeline in the calling thread. Safe to call from any number
  /// of threads concurrently (the worker pool itself calls this).
  Result<SharedResult> Execute(ClientId client, const std::string& sql,
                               int security_group = 0);

  /// Microseconds since server start — the clock every trace timestamp,
  /// stale-age bound and time-series sample shares.
  uint64_t NowMicros() const;

  /// Stops accepting work, drains the queue, joins the workers.
  void Shutdown();

  ServerMetrics metrics() const;

  /// Node health for /healthz: degraded while the circuit breaker is not
  /// closed or a stale result was served within the last 2 s.
  struct HealthStatus {
    bool ok = true;
    std::string reason;
  };
  HealthStatus Health() const;

  const net::CircuitBreaker& breaker() const { return breaker_; }
  const net::FaultInjector& fault_injector() const { return fault_; }
  const ShardedCache& cache() const { return cache_; }
  const ThreadPool& pool() const { return pool_; }
  const ServerConfig& config() const { return config_; }

  /// §17 overload surface for the wire frontend: the current brownout
  /// level (lock-free) and the Retry-After hint to attach to rejections.
  BrownoutController::Level brownout_level() const {
    return brownout_.level();
  }
  uint32_t brownout_retry_after_ms() const {
    return brownout_.RetryAfterMs();
  }
  /// Journals + counts one overload shed (kOverloadShed* reason). The
  /// wire frontend calls this for pipeline/admission rejections; the
  /// server itself for brownout-shed prefetches.
  void RecordOverloadShed(uint64_t reason, ClientId client,
                          uint32_t retry_after_ms);
  /// The exact status delivered when a queued request's deadline expired
  /// before any worker dequeued it (§17): rejected in O(1), never
  /// executed. The wire frontend uses this to stamp kFlagExpired on the
  /// Error frame it answers with.
  static constexpr const char* kExpiredInQueueMessage =
      "deadline expired while queued; not executed";
  static bool IsExpiredInQueue(const Status& status) {
    return status.code() == Status::Code::kDeadlineExceeded &&
           status.message() == kExpiredInQueueMessage;
  }
  /// Lock-free reads: CacheCounters fields are atomic.
  const CacheCounters& template_cache_counters() const {
    return template_cache_.counters();
  }
  size_t session_count() const;

  /// The metrics registry every layer of this node reports through
  /// (external when ServerConfig::registry was set, otherwise owned).
  obs::MetricsRegistry* registry() const { return metrics_registry_; }
  /// Per-site lock telemetry for this node (the /contention document;
  /// wire frontends get their sites here). Never null.
  obs::ContentionRegistry* contention() const { return contention_.get(); }
  /// Recent-request traces; null when trace_capacity was 0.
  const obs::TraceRing* traces() const { return traces_.get(); }
  /// The prefetch-lifecycle journal (attach file sinks here); null when
  /// enable_journal was false.
  obs::EventJournal* journal() const { return journal_.get(); }
  /// Live prefetch cost/benefit scoreboards fed by the journal drainer;
  /// null when enable_journal was false.
  const obs::PrefetchAudit* audit() const { return audit_.get(); }
  /// Tail-latency reservoir; null when tracing or tail_top_k is disabled.
  const obs::TailReservoir* tail() const { return tail_.get(); }
  /// 1 s telemetry samples; null when timeseries_capacity was 0. Non-const
  /// so tests can drive SampleNow() without waiting out real intervals.
  obs::TimeSeriesRing* timeseries() const { return timeseries_.get(); }

 private:
  /// Per-session serving state: the paper's per-client learned models plus
  /// anything else a single client's request stream mutates. One mutex per
  /// session — a client's own requests serialise (clients are sequential
  /// in a closed loop anyway), different clients never contend here.
  struct SessionState {
    obs::TimedMutex mutex;
    core::TransitionGraph transitions;
    core::ParamMapper mapper;
    core::DependencyManager manager;
    std::map<core::TemplateId, std::vector<sql::Value>> latest_params;
    uint64_t observations = 0;

    SessionState(const ServerConfig& config, obs::LockSite* lock_site);
  };

  /// A combined prefetch ready to execute: the plan plus the session it
  /// was mined from (results feed back into that session's mapper).
  struct PreparedPlan {
    std::shared_ptr<core::CombinedQuery> plan;
    uint64_t plan_id = 0;           // registry for hit attribution
    bool contains_current = false;  // covers the query being served
  };

  /// Per-request observability context, stack-allocated in Execute():
  /// accumulates timed pipeline spans and the outcome/attribution that
  /// become a RequestTrace. Never crosses a thread.
  struct ReqCtx;
  class StageTimer;

  SessionState* SessionFor(ClientId client);
  std::string CacheKey(ClientId client, const std::string& bound_text) const;

  /// Execute() with optional wire timing: when `wire` is non-null the
  /// finished trace is written to *pending (unpublished) instead of being
  /// pushed to the ring.
  Result<SharedResult> ExecuteInternal(
      ClientId client, const std::string& sql, int security_group,
      const WireTiming* wire,
      std::shared_ptr<obs::RequestTrace>* pending);

  /// AnalyzeQuery through the memoizing template cache; registers the
  /// template in the shared registry.
  Result<sql::ParsedQuery> Analyze(const std::string& sql);

  Result<SharedResult> DoWrite(ClientId client,
                               const sql::ParsedQuery& parsed, ReqCtx* ctx);
  Result<SharedResult> DoRead(ClientId client, int security_group,
                              const sql::ParsedQuery& parsed, ReqCtx* ctx);

  /// Learning + graph readiness + combining for one read arrival. Returns
  /// the plans mined ready on this arrival (lock order: registry reader →
  /// session).
  std::vector<PreparedPlan> LearnAndCombine(SessionState* session,
                                            ClientId client,
                                            const sql::ParsedQuery& parsed);

  /// Executes a combined plan (reader-locked database), splits the result
  /// and installs every piece in the cache tagged with `plan_id` for hit
  /// attribution. Returns false on any failure (combined execution is
  /// best-effort — the caller falls back to plain). `ctx` is null when
  /// running as a background prefetch.
  bool ExecuteCombined(ClientId client, int security_group,
                       SessionState* session, const core::CombinedQuery& plan,
                       uint64_t plan_id, ReqCtx* ctx);

  /// One remote-database operation routed through the fault-tolerance
  /// layer (fault injection → breaker admission → deadline/attempt budget
  /// → WAN sleep → execute → retry with backoff for demand reads).
  struct BackendCall {
    bool is_write = false;
    bool is_prefetch = false;  // best-effort: no retries, breaker-shed
    uint64_t tmpl = 0;         // journal attribution
    ClientId client = 0;
    ReqCtx* ctx = nullptr;     // trace annotations (null for background)
  };
  /// `exec` performs the actual (locked) database execution; CallBackend
  /// owns the WAN sleep, so `exec` must not call SimulateWan itself.
  Result<db::ExecOutcome> CallBackend(
      const BackendCall& call,
      const std::function<Result<db::ExecOutcome>()>& exec);

  /// True for transport-level failures (unavailable / deadline exceeded)
  /// as opposed to application errors from a healthy backend.
  static bool IsBackendFailure(const Status& status) {
    return net::RetryPolicy::IsRetryable(status);
  }

  /// Journals + counts one shed prefetch (kind = kShedQueueFull /
  /// kShedBreakerUnhealthy).
  void ShedPrefetch(uint64_t kind, uint64_t plan_id, ClientId client);

  /// Serves `candidate` as an explicitly stale result if stale-serving is
  /// enabled and the entry is within the age bound; null otherwise. The
  /// returned payload aliases the cached entry (no copy).
  SharedResult TryServeStale(
      const std::optional<cache::CachedResult>& candidate, uint64_t tmpl,
      ClientId client, ReqCtx* ctx);

  /// Cache lookup honouring security groups + session semantics. When
  /// `stale_candidate` is non-null and stale-serving is enabled, a
  /// version-rejected entry is copied there before invalidation so the
  /// caller can fall back to it if the demand fetch fails.
  std::optional<cache::CachedResult> CacheGet(
      ClientId client, int security_group, const std::string& bound_text,
      std::optional<cache::CachedResult>* stale_candidate = nullptr);
  /// `prefetch_plan`/`prefetch_src` tag predictively installed entries
  /// (zero for demand fills) so later hits can be attributed. The payload
  /// is adopted as-is: the cache shares it with every future hit.
  void CachePut(ClientId client, int security_group, core::TemplateId tmpl,
                const std::string& bound_text, SharedResult result,
                uint64_t prefetch_plan = 0, uint64_t prefetch_src = 0);

  /// Registers every pull-mode metric (counters mirroring ServerMetrics,
  /// cache/pool/shard gauges) and creates the stage histograms.
  void RegisterMetrics();
  /// Records one journal event if the journal is enabled (lock-free; safe
  /// under any server lock — the journal's own locks are leaves).
  void Journal(obs::JournalEvent event) {
    if (journal_ != nullptr) journal_->Record(event);
  }
  /// Installs the cache eviction callback translating entry removals into
  /// kEntryEvicted / kEntryInvalidated journal events.
  void InstallEvictionJournal();
  /// Bumps the per-edge attributed prediction-hit counter.
  void RecordPrefetchedHit(uint64_t src_tmpl, uint64_t dst_tmpl);
  /// Publishes the finished request to the histograms and the trace ring
  /// (or defers the trace into ctx for the wire path, see ExecuteInternal).
  void FinishRequest(ReqCtx* ctx, ClientId client, bool read_only,
                     const std::string& sql);
  /// Offers a published trace to the tail reservoir (cheap floor
  /// pre-check first, so the steady-state cost is one relaxed load).
  void OfferTail(const std::shared_ptr<const obs::RequestTrace>& trace);

  /// Sleeps the configured WAN latency; never called holding a lock.
  void SimulateWan() const;
  void SleepMicros(uint64_t us) const;

  db::Database* db_;
  ServerConfig config_;
  std::chrono::steady_clock::time_point start_;
  core::GraphExtractor extractor_;  // stateless after construction

  // Declared before every instrumented lock (and before cache_/pool_):
  // the registry/contention pair must outlive the LockSites handed to
  // them, and construction order hands sites out of contention_ in the
  // member-init list below.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* metrics_registry_ = nullptr;
  std::unique_ptr<obs::ContentionRegistry> contention_;

  // readers: SELECT; writers: DML/DDL
  mutable obs::TimedSharedMutex db_mutex_;

  mutable obs::TimedMutex template_mutex_;
  cache::LruMap<std::string, sql::ParsedQuery> template_cache_;

  mutable obs::TimedSharedMutex registry_mutex_;
  core::TemplateRegistry registry_;

  mutable obs::TimedMutex versions_mutex_;
  core::SessionManager versions_;

  mutable obs::TimedMutex sessions_mutex_;
  /// Resolved once at construction: SessionFor creates sessions while
  /// holding sessions_mutex_, and calling ContentionRegistry::Site there
  /// would nest the registry mutex inside it — inverting the order the
  /// metrics snapshot path takes (registry -> gauge callback ->
  /// sessions_mutex_).
  obs::LockSite* session_site_ = nullptr;
  std::unordered_map<ClientId, std::unique_ptr<SessionState>> sessions_;

  ShardedCache cache_;

  /// What a resolved single-flight fetch hands each parked follower: the
  /// immutable payload plus a Vd snapshot of the query's read relations
  /// taken *before* the leader's backend read. Pre-read, the snapshot can
  /// only under-claim freshness — any write committed after it advances Vd
  /// past it, so a follower whose session vector moved (its own write
  /// included) fails `CanUse` and refetches instead of accepting rows that
  /// may predate the write (§5.2 read-your-writes). Followers that accept
  /// absorb the snapshot; they never claim a full Vc = Vd sync — only the
  /// leader actually performed the read.
  struct FlightPayload {
    SharedResult result;
    cache::VersionVector version;
  };

  /// Single-flight table (DESIGN.md §12): one entry per {cache key,
  /// security group} with a plain demand fetch in flight — folding the
  /// group into the key keeps the coalescing path under the same
  /// access-control model CacheGet enforces (§5.2.1). The leader inserts
  /// its shared future before calling the backend and erases the entry
  /// after publishing the payload (a scope guard fails the flight instead
  /// of leaking it if the leader unwinds early); followers copy the future
  /// under the mutex and wait on it with no lock held. `inflight_mutex_`
  /// is a server-level lock acquired on its own — never while any other
  /// lock in the order is held.
  struct InflightFetch {
    std::shared_future<Result<FlightPayload>> result;
    uint64_t waiters = 0;  // followers parked on this fetch so far
  };
  obs::TimedMutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_ptr<InflightFetch>> inflight_;

  /// Test-only back door (runtime_singleflight_test.cc): advances session
  /// version state at a deterministic point inside a coalescing race that
  /// cannot be scheduled reliably through the public API.
  friend struct SingleFlightTestPeer;

  struct {
    std::atomic<uint64_t> reads{0}, writes{0}, cache_hits{0},
        cache_rejects{0}, remote_plain{0}, backend_coalesced{0},
        remote_combined{0},
        predictions_cached{0}, prediction_hits{0}, prediction_fallbacks{0},
        prefetched_hits{0}, prefetches_dropped{0}, errors{0},
        backend_retries{0}, backend_timeouts{0}, stale_serves{0},
        prefetches_shed_breaker{0}, breaker_rejects{0}, deadline_expired{0},
        brownout_sheds{0};
  } metrics_;

  // Fault-tolerance layer (DESIGN.md §11). The breaker mutex and the
  // injector's atomics sit outside the server lock order: backend call
  // sites hold no other lock when touching them, and the breaker's
  // transition listener only records journal events (a leaf).
  net::FaultInjector fault_;
  net::RetryPolicy retry_;
  net::CircuitBreaker breaker_;
  std::atomic<uint64_t> jitter_ordinal_{0};  // deterministic backoff jitter
  std::atomic<uint64_t> last_stale_us_{0};   // NowMicros of last stale serve

  // Observability: the node's registry + contention pair is declared at
  // the top of the member list (it must outlive the instrumented locks).
  // Stage histograms are raw pointers into the registry (stable for its
  // lifetime); the trace ring is owned here. Worker threads touch these
  // only through lock-free Record()/Push() calls.
  std::unique_ptr<obs::TraceRing> traces_;
  std::unique_ptr<obs::TailReservoir> tail_;
  std::unique_ptr<obs::TimeSeriesRing> timeseries_;
  obs::Histogram* stage_hist_[static_cast<int>(obs::Stage::kCount)] = {};
  obs::Histogram* request_read_hist_ = nullptr;
  obs::Histogram* request_write_hist_ = nullptr;
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_plan_id_{1};

  // Prefetch-efficacy journal + live audit. Declaration order matters:
  // audit_ before journal_, so the journal's destructor (final drain into
  // the audit sink) runs while the audit is still alive; both before
  // pool_, so workers are joined before the journal goes away.
  std::unique_ptr<obs::PrefetchAudit> audit_;
  std::unique_ptr<obs::EventJournal> journal_;

  // Overload control (§17). The controller's level is read lock-free on
  // the hot path; the sampler thread diffing the demand-lane wait
  // histogram is started only when queue_target_us > 0 and joined in
  // Shutdown before the pool drains.
  BrownoutController brownout_;
  obs::Histogram* pool_wait_hist_[ThreadPool::kLaneCount] = {};
  obs::Histogram* pool_run_hist_ = nullptr;
  std::mutex brownout_stop_mutex_;
  std::condition_variable brownout_stop_cv_;
  bool brownout_stop_ = false;
  std::thread brownout_thread_;
  void BrownoutLoop();

  // Declared last: destroyed first, so worker threads are joined before
  // any state they touch goes away.
  ThreadPool pool_;
};

}  // namespace chrono::runtime

#endif  // CHRONOCACHE_RUNTIME_SERVER_H_
