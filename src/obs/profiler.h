#ifndef CHRONOCACHE_OBS_PROFILER_H_
#define CHRONOCACHE_OBS_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/threads.h"

namespace chrono::obs {

/// Frames retained per sample (leaf-first at capture time).
inline constexpr size_t kMaxProfileFrames = 48;

/// One CPU sample, written by the SIGPROF handler on the interrupted
/// thread: program counters leaf-first, walked over frame pointers.
struct CpuSample {
  uint16_t depth = 0;
  uint64_t pcs[kMaxProfileFrames];
};

/// \brief Per-thread SPSC sample ring with the EventJournal discipline
/// (DESIGN.md §10): the producer is the signal handler running on the
/// owning thread (plain slot write + release head store — async-signal-
/// safe, never blocking, full ring counted as a drop), the consumer is
/// the profiler's drainer thread. Capacity is rounded up to a power of
/// two. Rings hang off ThreadRegistry entries and are reused across
/// profile windows.
class SampleRing {
 public:
  explicit SampleRing(size_t capacity);

  /// Signal-handler side: no allocation, no locks.
  bool TryPush(const CpuSample& sample);

  /// Drainer side: appends every pending sample to `out`.
  size_t DrainInto(std::vector<CpuSample>* out);

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return mask_ + 1; }

 private:
  const uint64_t mask_;
  std::vector<CpuSample> slots_;
  alignas(64) std::atomic<uint64_t> head_{0};     // producer-owned
  std::atomic<uint64_t> dropped_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};     // drainer-owned
};

/// \brief Deterministic stack trie: samples fold into a tree keyed by
/// 64-bit tokens (program counters, or interned labels for the role /
/// thread roots). Children are ordered maps and the collapsed export
/// sorts its lines, so the same multiset of samples renders byte-identical
/// output regardless of arrival order — the fold-determinism contract the
/// tests pin down. Not thread-safe; CpuProfiler guards it with a mutex.
class StackTrie {
 public:
  StackTrie();

  /// Token for a string label (role/thread roots). High bit set so labels
  /// can never collide with user-space code addresses.
  uint64_t InternLabel(const std::string& label);

  /// Folds one root-first token path, adding `count` to the leaf.
  void Add(const uint64_t* tokens, size_t n, uint64_t count = 1);

  uint64_t sample_count() const { return samples_; }
  size_t node_count() const { return nodes_.size(); }
  void Clear();

  /// Collapsed-stack rendering (flamegraph.pl input): one sorted line per
  /// leaf with self-count, frames joined by ';'. `resolve` maps a token to
  /// its display frame.
  std::string Collapsed(
      const std::function<std::string(uint64_t)>& resolve) const;

  /// Visits every path with nonzero self count (root-first token path,
  /// self count) — the JSON exporter and tests walk the trie with this.
  void ForEachPath(const std::function<void(const std::vector<uint64_t>&,
                                            uint64_t)>& fn) const;

  /// Display string of an interned label token.
  const std::string& LabelFor(uint64_t token) const;

 private:
  struct Node {
    uint64_t token = 0;
    uint64_t self = 0;
    std::map<uint64_t, int> children;  // ordered: deterministic DFS
  };
  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::vector<std::string> labels_;
  std::unordered_map<std::string, uint64_t> label_tokens_;
  uint64_t samples_ = 0;
};

/// Lazy symbolization: dladdr + demangle, falling back to
/// "module+0xoff" for addresses inside an image without a named symbol
/// and "0xaddr" for unresolvable frames. Export-time only — never called
/// from the signal handler.
std::string SymbolizePc(uint64_t pc);

/// \brief Timer-driven sampling CPU profiler (DESIGN.md §16): SIGPROF via
/// setitimer(ITIMER_PROF) fires on whichever thread is burning CPU; the
/// async-signal-safe handler walks frame pointers (bounds-checked against
/// the thread's registered stack) into the thread's SampleRing; a drainer
/// thread folds samples into a StackTrie attributed role;thread;frames.
/// Symbolization is deferred to export. At most one profiler is armed
/// process-wide (Start fails otherwise). Stop disarms the timer but
/// deliberately leaves the (now inert) SIGPROF handler installed, so a
/// signal already in flight can never hit the default action and kill the
/// process — the "no signal leaks" contract start/stop/restart tests pin.
class CpuProfiler : public ThreadRegistry::Observer {
 public:
  struct Options {
    int hz = 99;                     // sampling rate (process CPU time)
    size_t ring_slots = 512;         // per-thread ring capacity
    uint64_t drain_interval_ms = 20; // drainer cadence
  };

  CpuProfiler() : CpuProfiler(Options{}) {}
  explicit CpuProfiler(Options options);
  ~CpuProfiler() override;

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  /// Arms the profiler at `hz` (0 = Options::hz). Fails if this or any
  /// other profiler is already armed, or hz is out of (0, 1000].
  Status Start(int hz = 0);

  /// Disarms the timer, drains every ring, joins the drainer. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int hz() const { return hz_.load(std::memory_order_relaxed); }
  /// Wall-clock span of the current/last window.
  uint64_t duration_ms() const;

  uint64_t samples_captured() const {
    return captured_.load(std::memory_order_relaxed);
  }
  uint64_t samples_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// SIGPROF landed on a thread with no registry entry (or no ring).
  uint64_t samples_unattributed() const {
    return unattributed_.load(std::memory_order_relaxed);
  }
  uint64_t samples_folded() const;

  /// Exports — safe while running (snapshot under the trie mutex).
  std::string CollapsedStacks() const;
  std::string ProfileJson() const;

  /// ThreadRegistry::Observer: threads registering mid-window get a ring.
  void OnThreadRegistered(ThreadRegistry::Entry* entry) override;

 private:
  void DrainLoop();
  void DrainOnce();
  void FoldSamples(ThreadRegistry::Entry* entry,
                   const std::vector<CpuSample>& samples);

  const Options options_;
  std::atomic<int> hz_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_drainer_{false};
  std::thread drainer_;

  std::atomic<uint64_t> captured_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> unattributed_{0};

  std::atomic<uint64_t> window_start_us_{0};
  std::atomic<uint64_t> window_end_us_{0};  // 0 while running

  mutable std::mutex trie_mutex_;
  StackTrie trie_;
  /// Per-thread folded counts for the JSON export (entry -> samples).
  std::map<ThreadRegistry::Entry*, uint64_t> folded_by_entry_;

  friend void ProfilerSignalHandler(int, void*, void*);
};

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_PROFILER_H_
