#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/threads.h"

namespace chrono::obs {

namespace {

/// Walks the union of two sorted cumulative-bucket lists, carrying each
/// side's cumulative count forward across bounds the sparse snapshot
/// omitted (a missing bound means "no observation advanced this bucket",
/// so its cumulative equals the nearest lower present bound's).
template <typename Combine>
HistogramSnapshot CombineBuckets(const HistogramSnapshot& a,
                                 const HistogramSnapshot& b,
                                 Combine&& combine) {
  HistogramSnapshot out;
  size_t ia = 0, ib = 0;
  uint64_t cum_a = 0, cum_b = 0;
  while (ia < a.buckets.size() || ib < b.buckets.size()) {
    double bound;
    if (ia >= a.buckets.size()) {
      bound = b.buckets[ib].upper_bound;
    } else if (ib >= b.buckets.size()) {
      bound = a.buckets[ia].upper_bound;
    } else {
      bound = std::min(a.buckets[ia].upper_bound, b.buckets[ib].upper_bound);
    }
    if (ia < a.buckets.size() && a.buckets[ia].upper_bound == bound) {
      cum_a = a.buckets[ia].cumulative;
      ++ia;
    }
    if (ib < b.buckets.size() && b.buckets[ib].upper_bound == bound) {
      cum_b = b.buckets[ib].cumulative;
      ++ib;
    }
    out.buckets.push_back({bound, combine(cum_a, cum_b)});
  }
  out.count = out.buckets.empty() ? 0 : out.buckets.back().cumulative;
  return out;
}

}  // namespace

HistogramSnapshot MergeHistograms(const HistogramSnapshot& a,
                                  const HistogramSnapshot& b) {
  HistogramSnapshot out = CombineBuckets(
      a, b, [](uint64_t ca, uint64_t cb) { return ca + cb; });
  out.sum = a.sum + b.sum;
  return out;
}

HistogramSnapshot DeltaHistogram(const HistogramSnapshot& cur,
                                 const HistogramSnapshot& prev) {
  HistogramSnapshot out =
      CombineBuckets(cur, prev, [](uint64_t ccur, uint64_t cprev) {
        return ccur > cprev ? ccur - cprev : 0;
      });
  out.sum = cur.sum > prev.sum ? cur.sum - prev.sum : 0;
  // Cumulative-delta monotonicity can wobble when writers race the two
  // snapshots; re-impose it so Percentile never walks backwards.
  uint64_t floor = 0;
  for (auto& bucket : out.buckets) {
    if (bucket.cumulative < floor) bucket.cumulative = floor;
    floor = bucket.cumulative;
  }
  out.count = out.buckets.empty() ? 0 : out.buckets.back().cumulative;
  return out;
}

TimeSeriesRing::TimeSeriesRing(const MetricsRegistry* registry,
                               const Options& options,
                               std::function<uint64_t()> clock)
    : options_([&] {
        Options o = options;
        if (o.capacity == 0) o.capacity = 1;
        if (o.interval_ms == 0) o.interval_ms = 1000;
        return o;
      }()),
      registry_(registry),
      clock_(std::move(clock)) {
  ring_.resize(options_.capacity);
}

TimeSeriesRing::~TimeSeriesRing() { Stop(); }

void TimeSeriesRing::Start() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  // Prime the cumulative baseline so the first periodic sample measures
  // one interval, not everything since process start.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    prev_ = Collect();
  }
  thread_ = std::thread([this] { Loop(); });
}

void TimeSeriesRing::Stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    running_ = false;
  }
}

void TimeSeriesRing::Loop() {
  ThreadLease lease(ThreadRole::kSampler, "chrono-ts-sampler");
  std::unique_lock<std::mutex> lock(wake_mutex_);
  while (!stop_requested_) {
    if (wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                       [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

TimeSeriesRing::Cumulative TimeSeriesRing::Collect() const {
  Cumulative c;
  c.valid = true;
  c.t_us = clock_();
  RegistrySnapshot snap = registry_->Snapshot();
  auto counter = [&](const char* name, const Labels& labels) -> double {
    const MetricSnapshot* m = snap.Find(name, labels);
    return m == nullptr ? 0 : m->value;
  };
  c.requests = counter("chrono_requests_total", {{"op", "read"}}) +
               counter("chrono_requests_total", {{"op", "write"}});
  c.hits = counter("chrono_cache_hits_total", {{"cache", "result"}});
  c.misses = counter("chrono_cache_misses_total", {{"cache", "result"}});
  c.errors = counter("chrono_errors_total", {});
  c.retries = counter("chrono_backend_retries_total", {});
  c.stale = counter("chrono_stale_serves_total", {});
  const MetricSnapshot* read =
      snap.Find("chrono_request_latency_ns", {{"op", "read"}});
  const MetricSnapshot* write =
      snap.Find("chrono_request_latency_ns", {{"op", "write"}});
  static const HistogramSnapshot kEmpty;
  c.latency = MergeHistograms(read != nullptr ? read->histogram : kEmpty,
                              write != nullptr ? write->histogram : kEmpty);
  return c;
}

void TimeSeriesRing::SampleNow() {
  Cumulative cur = Collect();
  std::lock_guard<std::mutex> lock(mutex_);
  if (prev_.valid && cur.t_us > prev_.t_us) {
    double interval_s =
        static_cast<double>(cur.t_us - prev_.t_us) / 1'000'000.0;
    Sample s;
    s.t_us = cur.t_us;
    auto rate = [&](double now, double before) {
      double d = now - before;
      return d > 0 ? d / interval_s : 0.0;
    };
    s.qps = rate(cur.requests, prev_.requests);
    s.errors_ps = rate(cur.errors, prev_.errors);
    s.retries_ps = rate(cur.retries, prev_.retries);
    s.stale_ps = rate(cur.stale, prev_.stale);
    double dh = cur.hits - prev_.hits;
    double dm = cur.misses - prev_.misses;
    s.hit_rate = (dh + dm) > 0 ? dh / (dh + dm) : 0;
    HistogramSnapshot delta = DeltaHistogram(cur.latency, prev_.latency);
    // The latency family records nanoseconds; the sample reports µs.
    s.p50_us = delta.Percentile(0.5) / 1000.0;
    s.p99_us = delta.Percentile(0.99) / 1000.0;
    s.requests_total = static_cast<uint64_t>(cur.requests);
    ring_[next_ % options_.capacity] = s;
    ++next_;
    samples_taken_.fetch_add(1, std::memory_order_relaxed);
  }
  prev_ = std::move(cur);
}

std::vector<TimeSeriesRing::Sample> TimeSeriesRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  uint64_t count = next_ < options_.capacity ? next_ : options_.capacity;
  out.reserve(count);
  for (uint64_t i = next_ - count; i < next_; ++i) {
    out.push_back(ring_[i % options_.capacity]);
  }
  return out;
}

std::string TimeSeriesRing::ToJson() const {
  std::vector<Sample> samples = Snapshot();
  std::string out = "{\"interval_ms\":" + std::to_string(interval_ms()) +
                    ",\"capacity\":" + std::to_string(capacity()) +
                    ",\"samples\":[";
  char buf[256];
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"t_us\":%llu,\"qps\":%.1f,\"hit_rate\":%.4f,"
                  "\"errors_per_s\":%.1f,\"retries_per_s\":%.1f,"
                  "\"stale_per_s\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
                  "\"requests_total\":%llu}",
                  i == 0 ? "" : ",",
                  static_cast<unsigned long long>(s.t_us), s.qps, s.hit_rate,
                  s.errors_ps, s.retries_ps, s.stale_ps, s.p50_us, s.p99_us,
                  static_cast<unsigned long long>(s.requests_total));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace chrono::obs
