#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <signal.h>
#include <sys/time.h>
#include <ucontext.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace chrono::obs {

namespace {

/// The single armed profiler (at most one process-wide: ITIMER_PROF and
/// the SIGPROF disposition are process state). The handler reads it with
/// acquire; Stop clears it and then waits out in-flight handlers.
std::atomic<CpuProfiler*> g_active{nullptr};
std::atomic<int> g_handler_entries{0};

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Async-signal-safe frame-pointer walk of the *interrupted* context.
/// Every dereference is bounds-checked against the thread's registered
/// stack and the chain must strictly grow toward the stack base, so a
/// clobbered frame pointer ends the walk instead of faulting. Leaf-first:
/// pcs[0] is the interrupted instruction.
size_t CaptureStack(void* ucontext_ptr, uintptr_t stack_lo,
                    uintptr_t stack_hi, uint64_t* pcs, size_t max_frames) {
  uintptr_t pc = 0;
  uintptr_t fp = 0;
#if defined(__linux__) && defined(__x86_64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_ptr);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__linux__) && defined(__aarch64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_ptr);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  // No per-arch register access: walk from the handler's own frame. The
  // top frames are signal plumbing, but role/thread attribution (the
  // roots) stays correct.
  (void)ucontext_ptr;
  fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
#endif
  size_t depth = 0;
  if (pc != 0 && depth < max_frames) pcs[depth++] = pc;
  while (depth < max_frames) {
    if (fp == 0 || (fp & (sizeof(uintptr_t) - 1)) != 0) break;
    if (stack_lo == 0 ||
        fp < stack_lo || fp + 2 * sizeof(uintptr_t) > stack_hi) {
      break;
    }
    const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
    uintptr_t next_fp = frame[0];
    uintptr_t ret = frame[1];
    if (ret < 0x1000) break;  // not a plausible code address
    pcs[depth++] = ret;
    if (next_fp <= fp) break;  // frames must move toward the stack base
    fp = next_fp;
  }
  if (depth == 0) {  // nothing walkable: keep the sample, attribute "0x0"
    pcs[depth++] = 0;
  }
  return depth;
}

std::string EscapeJsonString(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Collapsed-stack frames must not contain the two characters the format
/// reserves: ';' joins frames and the last ' ' splits off the count.
std::string SanitizeFrame(const std::string& symbol) {
  std::string out = symbol;
  for (char& c : out) {
    if (c == ';') c = ':';
    if (c == ' ') c = '_';
  }
  return out;
}

constexpr uint64_t kLabelTokenFlag = 1ull << 63;

}  // namespace

// --- SampleRing -----------------------------------------------------------

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

SampleRing::SampleRing(size_t capacity)
    : mask_(RoundUpPow2(capacity < 2 ? 2 : capacity) - 1),
      slots_(mask_ + 1) {}

bool SampleRing::TryPush(const CpuSample& sample) {
  uint64_t head = head_.load(std::memory_order_relaxed);
  uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail > mask_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[head & mask_] = sample;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

size_t SampleRing::DrainInto(std::vector<CpuSample>* out) {
  uint64_t tail = tail_.load(std::memory_order_relaxed);
  uint64_t head = head_.load(std::memory_order_acquire);
  size_t drained = 0;
  while (tail != head) {
    out->push_back(slots_[tail & mask_]);
    ++tail;
    ++drained;
  }
  tail_.store(tail, std::memory_order_release);
  return drained;
}

// --- StackTrie ------------------------------------------------------------

StackTrie::StackTrie() { nodes_.push_back(Node{}); }

uint64_t StackTrie::InternLabel(const std::string& label) {
  auto it = label_tokens_.find(label);
  if (it != label_tokens_.end()) return it->second;
  uint64_t token = kLabelTokenFlag | labels_.size();
  labels_.push_back(label);
  label_tokens_[label] = token;
  return token;
}

void StackTrie::Add(const uint64_t* tokens, size_t n, uint64_t count) {
  int idx = 0;
  for (size_t i = 0; i < n; ++i) {
    auto it = nodes_[idx].children.find(tokens[i]);
    if (it != nodes_[idx].children.end()) {
      idx = it->second;
      continue;
    }
    int child = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{tokens[i], 0, {}});
    nodes_[idx].children.emplace(tokens[i], child);
    idx = child;
  }
  nodes_[idx].self += count;
  samples_ += count;
}

void StackTrie::Clear() {
  nodes_.clear();
  nodes_.push_back(Node{});
  labels_.clear();
  label_tokens_.clear();
  samples_ = 0;
}

std::string StackTrie::Collapsed(
    const std::function<std::string(uint64_t)>& resolve) const {
  std::vector<std::string> lines;
  std::vector<std::string> path;
  std::function<void(int)> dfs = [&](int idx) {
    const Node& node = nodes_[idx];
    if (node.self > 0 && !path.empty()) {
      std::string line = path[0];
      for (size_t i = 1; i < path.size(); ++i) line += ";" + path[i];
      line += " " + std::to_string(node.self);
      lines.push_back(std::move(line));
    }
    for (const auto& [token, child] : node.children) {
      path.push_back(resolve(token));
      dfs(child);
      path.pop_back();
    }
  };
  dfs(0);
  // Sorted lines: the export is a pure function of the folded multiset,
  // independent of sample arrival order (fold-determinism contract).
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

void StackTrie::ForEachPath(
    const std::function<void(const std::vector<uint64_t>&, uint64_t)>& fn)
    const {
  std::vector<uint64_t> path;
  std::function<void(int)> dfs = [&](int idx) {
    const Node& node = nodes_[idx];
    if (node.self > 0 && !path.empty()) fn(path, node.self);
    for (const auto& [token, child] : node.children) {
      path.push_back(token);
      dfs(child);
      path.pop_back();
    }
  };
  dfs(0);
}

const std::string& StackTrie::LabelFor(uint64_t token) const {
  return labels_[token & ~kLabelTokenFlag];
}

// --- Symbolization --------------------------------------------------------

std::string SymbolizePc(uint64_t pc) {
  if (pc == 0) return "0x0";
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (dladdr(reinterpret_cast<void*>(static_cast<uintptr_t>(pc)), &info) !=
      0) {
    if (info.dli_sname != nullptr) {
      int status = -1;
      char* demangled =
          abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      std::string out =
          (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
      std::free(demangled);
      return out;
    }
    if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      base = base != nullptr ? base + 1 : info.dli_fname;
      char buf[512];
      std::snprintf(buf, sizeof(buf), "%s+0x%llx", base,
                    static_cast<unsigned long long>(
                        pc - reinterpret_cast<uintptr_t>(info.dli_fbase)));
      return buf;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

// --- Signal handler -------------------------------------------------------

/// Async-signal-safe: a TLS load, a bounds-checked frame walk, a plain
/// ring-slot write and a handful of lock-free atomics. errno is saved and
/// restored; nothing allocates, blocks or takes a lock.
void ProfilerSignalHandler(int /*signo*/, void* /*info*/, void* ucontext) {
  int saved_errno = errno;
  g_handler_entries.fetch_add(1, std::memory_order_acq_rel);
  CpuProfiler* profiler = g_active.load(std::memory_order_acquire);
  if (profiler != nullptr) {
    ThreadRegistry::Entry* entry = ThreadRegistry::Current();
    SampleRing* ring =
        entry != nullptr ? entry->ring.load(std::memory_order_acquire)
                         : nullptr;
    if (ring == nullptr) {
      profiler->unattributed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      CpuSample sample;
      sample.depth = static_cast<uint16_t>(
          CaptureStack(ucontext, entry->stack_lo, entry->stack_hi,
                       sample.pcs, kMaxProfileFrames));
      if (ring->TryPush(sample)) {
        profiler->captured_.fetch_add(1, std::memory_order_relaxed);
      } else {
        profiler->dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  g_handler_entries.fetch_sub(1, std::memory_order_release);
  errno = saved_errno;
}

namespace {

/// Installed once, kept installed forever (even after Stop): restoring
/// the default disposition would let a SIGPROF already in flight kill the
/// process. Disarmed, the handler is two atomic ops and a return.
void InstallSigprofHandler() {
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = [](int signo, siginfo_t* info, void* uc) {
      ProfilerSignalHandler(signo, info, uc);
    };
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPROF, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

}  // namespace

// --- CpuProfiler ----------------------------------------------------------

CpuProfiler::CpuProfiler(Options options) : options_(options) {}

CpuProfiler::~CpuProfiler() { Stop(); }

void CpuProfiler::OnThreadRegistered(ThreadRegistry::Entry* entry) {
  if (entry->ring.load(std::memory_order_acquire) == nullptr) {
    entry->ring.store(new SampleRing(options_.ring_slots),
                      std::memory_order_release);
  }
}

Status CpuProfiler::Start(int hz) {
  if (hz == 0) hz = options_.hz;
  if (hz <= 0 || hz > 1000) {
    return Status::InvalidArgument("profiler hz must be in (0, 1000]");
  }
  CpuProfiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel)) {
    return Status::Internal(expected == this
                                ? "profiler already running"
                                : "another profiler window is active");
  }
  // The slot is claimed but no timer is armed yet, so no handler runs
  // against half-prepared state.
  hz_.store(hz, std::memory_order_relaxed);
  captured_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  unattributed_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(trie_mutex_);
    trie_.Clear();
    folded_by_entry_.clear();
  }
  // Every registered thread gets a ring; stale samples from a previous
  // window are discarded before this one starts counting.
  std::vector<CpuSample> discard;
  ThreadRegistry::Instance().ForEach([this, &discard](
                                         ThreadRegistry::Entry* entry) {
    OnThreadRegistered(entry);
    discard.clear();
    entry->ring.load(std::memory_order_acquire)->DrainInto(&discard);
  });
  ThreadRegistry::Instance().SetObserver(this);

  window_start_us_.store(NowMicros(), std::memory_order_relaxed);
  window_end_us_.store(0, std::memory_order_relaxed);
  stop_drainer_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  drainer_ = std::thread([this] { DrainLoop(); });

  InstallSigprofHandler();
  struct itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  timer.it_interval.tv_usec = static_cast<suseconds_t>(1'000'000 / hz);
  timer.it_value = timer.it_interval;
  ::setitimer(ITIMER_PROF, &timer, nullptr);
  return Status::OK();
}

void CpuProfiler::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Disarm the timer first, then retire from the active slot; a handler
  // already past the g_active load finishes against this still-live
  // object before we return (g_handler_entries drains to zero).
  struct itimerval zero;
  std::memset(&zero, 0, sizeof(zero));
  ::setitimer(ITIMER_PROF, &zero, nullptr);
  CpuProfiler* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
  while (g_handler_entries.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  ThreadRegistry::Instance().SetObserver(nullptr);
  stop_drainer_.store(true, std::memory_order_release);
  if (drainer_.joinable()) drainer_.join();  // final drain inside
  window_end_us_.store(NowMicros(), std::memory_order_relaxed);
}

uint64_t CpuProfiler::duration_ms() const {
  uint64_t start = window_start_us_.load(std::memory_order_relaxed);
  if (start == 0) return 0;
  uint64_t end = window_end_us_.load(std::memory_order_relaxed);
  if (end == 0) end = NowMicros();
  return (end - start) / 1000;
}

void CpuProfiler::DrainLoop() {
  ThreadLease lease(ThreadRole::kProfiler, "chrono-prof-drain");
  while (!stop_drainer_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.drain_interval_ms));
    DrainOnce();
  }
  DrainOnce();  // the timer is disarmed by now: this empties every ring
}

void CpuProfiler::DrainOnce() {
  // Collect under the registry mutex (DrainInto is lock-free), fold after
  // — the trie mutex is never held under the registry mutex.
  std::vector<std::pair<ThreadRegistry::Entry*, std::vector<CpuSample>>>
      drained;
  ThreadRegistry::Instance().ForEach(
      [&drained](ThreadRegistry::Entry* entry) {
        SampleRing* ring = entry->ring.load(std::memory_order_acquire);
        if (ring == nullptr) return;
        std::vector<CpuSample> samples;
        if (ring->DrainInto(&samples) > 0) {
          drained.emplace_back(entry, std::move(samples));
        }
      });
  for (auto& [entry, samples] : drained) FoldSamples(entry, samples);
}

void CpuProfiler::FoldSamples(ThreadRegistry::Entry* entry,
                              const std::vector<CpuSample>& samples) {
  std::lock_guard<std::mutex> lock(trie_mutex_);
  uint64_t role_token = trie_.InternLabel(ThreadRoleName(entry->role));
  uint64_t thread_token = trie_.InternLabel(entry->name);
  std::vector<uint64_t> path;
  for (const CpuSample& sample : samples) {
    path.clear();
    path.push_back(role_token);
    path.push_back(thread_token);
    // Captured leaf-first; folded root-first so the flame graph reads
    // outermost caller downward.
    for (size_t i = sample.depth; i > 0; --i) {
      path.push_back(sample.pcs[i - 1]);
    }
    trie_.Add(path.data(), path.size());
  }
  folded_by_entry_[entry] += samples.size();
}

uint64_t CpuProfiler::samples_folded() const {
  std::lock_guard<std::mutex> lock(trie_mutex_);
  return trie_.sample_count();
}

std::string CpuProfiler::CollapsedStacks() const {
  std::lock_guard<std::mutex> lock(trie_mutex_);
  std::unordered_map<uint64_t, std::string> cache;
  return trie_.Collapsed([this, &cache](uint64_t token) -> std::string {
    auto it = cache.find(token);
    if (it != cache.end()) return it->second;
    std::string frame = (token & kLabelTokenFlag)
                            ? trie_.LabelFor(token)
                            : SanitizeFrame(SymbolizePc(token));
    cache[token] = frame;
    return frame;
  });
}

std::string CpuProfiler::ProfileJson() const {
  std::lock_guard<std::mutex> lock(trie_mutex_);
  std::string out = "{\"profile\":\"cpu\"";
  out += ",\"hz\":" + std::to_string(hz());
  out += ",\"running\":";
  out += running() ? "true" : "false";
  out += ",\"duration_ms\":" + std::to_string(duration_ms());
  out += ",\"samples\":{\"captured\":" +
         std::to_string(captured_.load(std::memory_order_relaxed));
  out += ",\"folded\":" + std::to_string(trie_.sample_count());
  out += ",\"dropped\":" +
         std::to_string(dropped_.load(std::memory_order_relaxed));
  out += ",\"unattributed\":" +
         std::to_string(unattributed_.load(std::memory_order_relaxed));
  out += "}";
  out += ",\"threads\":[";
  bool first = true;
  for (const auto& [entry, count] : folded_by_entry_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + EscapeJsonString(entry->name) + "\"";
    out += ",\"role\":\"" + std::string(ThreadRoleName(entry->role)) + "\"";
    out += ",\"samples\":" + std::to_string(count) + "}";
  }
  out += "],\"stacks\":[";
  std::unordered_map<uint64_t, std::string> cache;
  first = true;
  trie_.ForEachPath([&](const std::vector<uint64_t>& path, uint64_t count) {
    if (!first) out += ",";
    first = false;
    out += "{\"frames\":[";
    for (size_t i = 0; i < path.size(); ++i) {
      uint64_t token = path[i];
      auto it = cache.find(token);
      if (it == cache.end()) {
        it = cache
                 .emplace(token, (token & kLabelTokenFlag)
                                     ? trie_.LabelFor(token)
                                     : SymbolizePc(token))
                 .first;
      }
      if (i > 0) out += ",";
      out += "\"" + EscapeJsonString(it->second) + "\"";
    }
    out += "],\"count\":" + std::to_string(count) + "}";
  });
  out += "]}";
  return out;
}

}  // namespace chrono::obs
