#ifndef CHRONOCACHE_OBS_METRICS_H_
#define CHRONOCACHE_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace chrono::obs {

/// \brief Label set attached to one metric instance, e.g.
/// {{"cache","template"}}. Kept sorted by key so that (name, labels)
/// identifies a metric and exposition output is deterministic.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter. Increment is one relaxed fetch_add — safe and
/// cheap from any number of threads; never used for synchronisation.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Point-in-time value set by the instrumented code. For values that
/// are cheaper to pull than to push (queue depth, shard occupancy), prefer
/// MetricsRegistry::RegisterCallbackGauge, which reads at snapshot time.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// \brief Merged, immutable view of one histogram (see Histogram below).
/// Buckets are cumulative with the terminal bound +infinity, matching
/// Prometheus exposition. Percentiles interpolate linearly inside the
/// bucket that crosses the requested rank.
struct HistogramSnapshot {
  struct Bucket {
    double upper_bound = 0;     // inclusive; +infinity for the last bucket
    uint64_t cumulative = 0;    // observations <= upper_bound
  };
  uint64_t count = 0;
  double sum = 0;
  std::vector<Bucket> buckets;  // only buckets whose count advanced, + Inf

  /// q in [0, 1]; e.g. 0.5 for the median. 0 when empty.
  double Percentile(double q) const;
  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

/// \brief Lock-striped log-bucketed latency histogram for the serving hot
/// path. Record() is three relaxed fetch_adds on the calling thread's
/// stripe — no mutex, no sample vectors, no allocation. Snapshot() merges
/// the stripes into cumulative buckets.
///
/// Bucket scheme (HdrHistogram-style): values 0..15 get exact unit-width
/// buckets; above that, each power of two is split into 8 linear
/// sub-buckets, so the relative quantile error is bounded by 1/8 = 12.5%
/// (in practice ~6% at the bucket midpoint) across the full uint64 range.
/// The unit is whatever the caller records — this repo records wall-clock
/// nanoseconds for every `*_latency_ns` metric.
class Histogram {
 public:
  static constexpr int kSubBits = 4;                   // 2^4 exact buckets
  static constexpr int kSubBuckets = 1 << kSubBits;    // 16
  static constexpr int kHalf = kSubBuckets / 2;        // 8 per octave
  static constexpr int kBucketCount = kSubBuckets + (64 - kSubBits) * kHalf;

  /// `stripes` trades memory for write-side contention; each stripe is an
  /// independent cache-padded bucket array and threads are assigned to
  /// stripes round-robin on first use.
  explicit Histogram(size_t stripes = 4);

  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;

  /// Bucket index for `value` (exposed for tests).
  static int BucketIndex(uint64_t value);
  /// Inclusive upper bound of bucket `index` (exposed for tests and the
  /// exporters; the final bucket reports +infinity at snapshot time).
  static uint64_t BucketUpperBound(int index);

  size_t stripe_count() const { return stripes_.size(); }

 private:
  // No separate count atomic: Snapshot() derives count from the merged
  // buckets, so `cumulative == count` holds exactly even while writers
  // race the snapshot (and Record is one fetch_add cheaper).
  struct alignas(64) Stripe {
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kBucketCount] = {};
  };

  Stripe& StripeForThisThread();

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<size_t> next_stripe_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// \brief One fully-resolved metric value inside a RegistrySnapshot.
struct MetricSnapshot {
  std::string name;
  std::string help;
  Labels labels;
  MetricType type = MetricType::kCounter;
  double value = 0;              // counters and gauges
  HistogramSnapshot histogram;   // type == kHistogram only
};

/// \brief Point-in-time copy of every registered metric, sorted by
/// (name, labels) so that exporters emit deterministic output.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// First metric matching name (+ labels when given); nullptr if absent.
  const MetricSnapshot* Find(const std::string& name,
                             const Labels& labels = {}) const;
};

/// \brief The process-wide metric namespace: named counters, gauges and
/// histograms, plus pull-mode callbacks for values that live in existing
/// structures (CacheCounters, pool queue depth, shard occupancy).
///
/// Thread safety and lock order: Get* / Register* take the registry mutex
/// (exclusive only when creating); returned pointers are stable for the
/// registry's lifetime, and all hot-path operations on them are lock-free
/// relaxed atomics. Snapshot() holds the registry mutex shared while it
/// runs the registered callbacks, so callbacks may take *leaf* locks
/// (cache-shard or pool mutexes) but must never create metrics or acquire
/// any lock that is held while calling into the registry. Instrumented
/// code never blocks on an exporter: obs locks sit strictly below every
/// server lock (DESIGN.md §9).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. `help` is recorded on first creation; all metrics
  /// sharing a name must share a type (enforced — mismatch returns the
  /// existing metric for Get* but trips an assert in debug builds).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          Labels labels = {});

  /// Pull-mode metrics: `fn` is evaluated inside Snapshot(). The callback
  /// must be safe to call from any thread until the registry is destroyed
  /// or the owner of the captured state calls UnregisterCallbacksOwnedBy.
  void RegisterCallbackCounter(const std::string& name,
                               const std::string& help, Labels labels,
                               std::function<double()> fn,
                               const void* owner = nullptr);
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             Labels labels, std::function<double()> fn,
                             const void* owner = nullptr);

  /// Drops every callback registered with `owner` (called from the owning
  /// object's destructor so Snapshot never runs a dangling callback).
  void UnregisterCallbacksOwnedBy(const void* owner);

  RegistrySnapshot Snapshot() const;

  size_t metric_count() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;  // callback metrics only
    const void* owner = nullptr;
  };

  Entry* FindOrCreate(const std::string& name, const std::string& help,
                      Labels labels, MetricType type);
  static std::string Key(const std::string& name, const Labels& labels);

  mutable std::shared_mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;      // stable addresses
  std::unordered_map<std::string, Entry*> index_;    // Key(name,labels) ->
};

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_METRICS_H_
