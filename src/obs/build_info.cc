#include "obs/build_info.h"

#ifndef CHRONO_VERSION
#define CHRONO_VERSION "unknown"
#endif
#ifndef CHRONO_GIT_SHA
#define CHRONO_GIT_SHA "unknown"
#endif
#ifndef CHRONO_BUILD_TYPE
#define CHRONO_BUILD_TYPE "unknown"
#endif
#ifndef CHRONO_SANITIZER
#define CHRONO_SANITIZER "none"
#endif

namespace chrono::obs {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{CHRONO_VERSION, CHRONO_GIT_SHA,
                              CHRONO_BUILD_TYPE, CHRONO_SANITIZER};
  return info;
}

void RegisterBuildInfo(MetricsRegistry* registry) {
  const BuildInfo& info = GetBuildInfo();
  registry
      ->GetGauge("chrono_build_info",
                 "Build identity of this binary; constant 1 with the "
                 "identity carried in labels",
                 {{"version", info.version},
                  {"git_sha", info.git_sha},
                  {"build", info.build_type},
                  {"sanitizer", info.sanitizer}})
      ->Set(1);
}

}  // namespace chrono::obs
