#include "obs/threads.h"

#include <pthread.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

#include "obs/profiler.h"

namespace chrono::obs {

namespace {

thread_local ThreadRegistry::Entry* tls_entry = nullptr;

/// Best-effort stack bounds for the calling thread; {0,0} when glibc
/// cannot report them (the frame walker then rejects every frame pointer,
/// degrading to leaf-only samples rather than crashing).
void CurrentStackBounds(uintptr_t* lo, uintptr_t* hi) {
  *lo = 0;
  *hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  size_t size = 0;
  if (pthread_attr_getstack(&attr, &addr, &size) == 0 && size > 0) {
    *lo = reinterpret_cast<uintptr_t>(addr);
    *hi = *lo + size;
  }
  pthread_attr_destroy(&attr);
}

}  // namespace

const char* ThreadRoleName(ThreadRole role) {
  switch (role) {
    case ThreadRole::kMain:
      return "main";
    case ThreadRole::kWorker:
      return "worker";
    case ThreadRole::kIo:
      return "io";
    case ThreadRole::kSampler:
      return "sampler";
    case ThreadRole::kDrainer:
      return "drainer";
    case ThreadRole::kClient:
      return "client";
    case ThreadRole::kStats:
      return "stats";
    case ThreadRole::kProfiler:
      return "profiler";
    case ThreadRole::kOther:
      return "other";
  }
  return "other";
}

ThreadRegistry& ThreadRegistry::Instance() {
  static ThreadRegistry* registry = new ThreadRegistry();  // never destroyed
  return *registry;
}

ThreadRegistry::~ThreadRegistry() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    delete entry->ring.exchange(nullptr, std::memory_order_acq_rel);
  }
}

ThreadRegistry::Entry* ThreadRegistry::RegisterCurrent(
    ThreadRole role, const std::string& name) {
  auto owned = std::make_unique<Entry>();
  Entry* entry = owned.get();
  entry->name = name;
  entry->role = role;
  entry->tid = static_cast<uint64_t>(::syscall(SYS_gettid));
  CurrentStackBounds(&entry->stack_lo, &entry->stack_hi);

  // Kernel-side name: pthread_setname_np caps names at 15 chars + NUL;
  // the full name stays in the registry ("chrono-ts-sampler" shows as
  // "chrono-ts-sampl" in top -H but intact in /threads and profiles).
  char short_name[16];
  std::strncpy(short_name, name.c_str(), sizeof(short_name) - 1);
  short_name[sizeof(short_name) - 1] = '\0';
  pthread_setname_np(pthread_self(), short_name);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    entry->index = static_cast<uint32_t>(entries_.size());
    entries_.push_back(std::move(owned));
    if (observer_ != nullptr) observer_->OnThreadRegistered(entry);
  }
  tls_entry = entry;
  return entry;
}

void ThreadRegistry::MarkDead(Entry* entry) {
  if (entry != nullptr) entry->alive.store(false, std::memory_order_release);
}

ThreadRegistry::Entry* ThreadRegistry::Current() { return tls_entry; }

void ThreadRegistry::SetObserver(Observer* observer) {
  std::lock_guard<std::mutex> lock(mutex_);
  observer_ = observer;
}

void ThreadRegistry::ForEach(const std::function<void(Entry*)>& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) fn(entry.get());
}

size_t ThreadRegistry::live_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t live = 0;
  for (const auto& entry : entries_) {
    if (entry->alive.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

size_t ThreadRegistry::total_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string ThreadRegistry::ThreadsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"threads\":[";
  size_t live = 0;
  bool first = true;
  for (const auto& entry : entries_) {
    bool alive = entry->alive.load(std::memory_order_acquire);
    if (alive) ++live;
    if (!first) out += ",";
    first = false;
    out += "{\"index\":" + std::to_string(entry->index);
    out += ",\"name\":\"" + entry->name + "\"";  // fixed internal names
    out += ",\"role\":\"" + std::string(ThreadRoleName(entry->role)) + "\"";
    out += ",\"tid\":" + std::to_string(entry->tid);
    out += ",\"alive\":";
    out += alive ? "true" : "false";
    out += "}";
  }
  out += "],\"live\":" + std::to_string(live);
  out += ",\"total\":" + std::to_string(entries_.size()) + "}";
  return out;
}

ThreadLease::ThreadLease(ThreadRole role, const std::string& name) {
  previous_ = ThreadRegistry::Current();
  entry_ = ThreadRegistry::Instance().RegisterCurrent(role, name);
}

ThreadLease::~ThreadLease() {
  ThreadRegistry::Instance().MarkDead(entry_);
  // Restore the outer registration (nested leases in tests); the signal
  // handler sees either entry, both permanently valid.
  tls_entry = previous_;
}

}  // namespace chrono::obs
