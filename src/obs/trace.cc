#include "obs/trace.h"

#include <algorithm>

namespace chrono::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kAnalyze:
      return "analyze";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kLearnCombine:
      return "learn_combine";
    case Stage::kDbExecute:
      return "db_execute";
    case Stage::kSplitDecode:
      return "split_decode";
    case Stage::kWireDecode:
      return "wire_decode";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kExecute:
      return "execute";
    case Stage::kCompletionWait:
      return "completion_wait";
    case Stage::kResponseFlush:
      return "response_flush";
    case Stage::kCount:
      break;
  }
  return "unknown";
}

const char* AnnotationKindName(AnnotationKind kind) {
  switch (kind) {
    case AnnotationKind::kRetry:
      return "retry";
    case AnnotationKind::kAttemptTimeout:
      return "attempt_timeout";
    case AnnotationKind::kBreakerReject:
      return "breaker_reject";
    case AnnotationKind::kBreakerState:
      return "breaker_state";
    case AnnotationKind::kCoalesced:
      return "coalesced";
    case AnnotationKind::kStaleServe:
      return "stale_serve";
    case AnnotationKind::kFault:
      return "fault";
    case AnnotationKind::kDeadlineClamp:
      return "deadline_clamp";
    case AnnotationKind::kBrownout:
      return "brownout";
  }
  return "unknown";
}

const char* TraceOutcomeName(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kCacheHit:
      return "cache_hit";
    case TraceOutcome::kPredictionHit:
      return "prediction_hit";
    case TraceOutcome::kRemotePlain:
      return "remote_plain";
    case TraceOutcome::kWrite:
      return "write";
    case TraceOutcome::kError:
      return "error";
    case TraceOutcome::kStaleHit:
      return "stale_hit";
    case TraceOutcome::kCoalescedHit:
      return "coalesced_hit";
  }
  return "unknown";
}

bool ParseTraceOutcome(std::string_view name, TraceOutcome* out) {
  for (int i = 0; i < kTraceOutcomeCount; ++i) {
    TraceOutcome candidate = static_cast<TraceOutcome>(i);
    if (name == TraceOutcomeName(candidate)) {
      *out = candidate;
      return true;
    }
  }
  return false;
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

namespace {

/// Holds a slot's spin latch for the enclosing scope. The critical
/// sections are single shared_ptr swaps/copies, so spinning is bounded by
/// nanoseconds of useful work on the other side.
class SlotLatch {
 public:
  explicit SlotLatch(std::atomic<uint32_t>& latch) : latch_(latch) {
    uint32_t expected = 0;
    while (!latch_.compare_exchange_weak(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      expected = 0;
    }
  }
  ~SlotLatch() { latch_.store(0, std::memory_order_release); }

 private:
  std::atomic<uint32_t>& latch_;
};

}  // namespace

void TraceRing::Push(std::shared_ptr<const RequestTrace> trace) {
  uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  {
    SlotLatch held(slot.latch);
    slot.trace.swap(trace);
  }
  // `trace` now holds the displaced entry; it destructs outside the latch.
}

std::vector<std::shared_ptr<const RequestTrace>> TraceRing::Snapshot() const {
  std::vector<std::shared_ptr<const RequestTrace>> out;
  uint64_t end = next_.load(std::memory_order_acquire);
  uint64_t count = end < capacity_ ? end : capacity_;
  out.reserve(count);
  // Walk backwards from the most recently claimed slot. Slots being
  // concurrently overwritten may briefly read empty or newer than `end`;
  // both are fine — every pointer we do read is a complete trace.
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seq = end - 1 - i;
    const Slot& slot = slots_[seq % capacity_];
    std::shared_ptr<const RequestTrace> t;
    {
      SlotLatch held(slot.latch);
      t = slot.trace;
    }
    if (t != nullptr) out.push_back(std::move(t));
  }
  return out;
}

// ---------------------------------------------------------------------------
// TailReservoir

namespace {

/// std::*_heap comparator for a min-heap by total latency: front() is the
/// cheapest retained trace, i.e. the admission floor.
bool SlowerThan(const std::shared_ptr<const RequestTrace>& a,
                const std::shared_ptr<const RequestTrace>& b) {
  return a->total_us > b->total_us;
}

}  // namespace

TailReservoir::TailReservoir(const Options& options)
    : options_([&] {
        Options o = options;
        if (o.top_k == 0) o.top_k = 1;
        if (o.window_us == 0) o.window_us = 1;
        return o;
      }()),
      threshold_us_(options.threshold_us) {
  forced_.resize(options_.forced_capacity);
}

void TailReservoir::RotateLocked(uint64_t now_us) {
  if (now_us < current_.window_start_us + options_.window_us) return;
  if (now_us >= current_.window_start_us + 2 * options_.window_us) {
    // More than a whole window of silence: the old top-K describes traffic
    // too stale to show; drop both generations.
    previous_ = Generation{};
    current_.heap.clear();
  } else {
    previous_ = std::move(current_);
    current_.heap.clear();
  }
  current_.window_start_us = now_us;
  floor_us_.store(0, std::memory_order_relaxed);
}

void TailReservoir::Offer(std::shared_ptr<const RequestTrace> trace,
                          uint64_t now_us) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  const bool force =
      trace->forced ||
      (threshold_us_ != 0 && trace->total_us >= threshold_us_);

  std::lock_guard<std::mutex> lock(mutex_);
  if (current_.window_start_us == 0 && current_.heap.empty()) {
    current_.window_start_us = now_us;
  }
  RotateLocked(now_us);

  bool kept = false;
  if (force && !forced_.empty()) {
    forced_[forced_next_ % forced_.size()] = trace;
    ++forced_next_;
    kept = true;
  }
  if (current_.heap.size() < options_.top_k) {
    current_.heap.push_back(trace);
    std::push_heap(current_.heap.begin(), current_.heap.end(), SlowerThan);
    kept = true;
  } else if (trace->total_us > current_.heap.front()->total_us) {
    std::pop_heap(current_.heap.begin(), current_.heap.end(), SlowerThan);
    current_.heap.back() = trace;
    std::push_heap(current_.heap.begin(), current_.heap.end(), SlowerThan);
    kept = true;
  }
  // The floor only gates admission once the window holds a full K.
  floor_us_.store(current_.heap.size() < options_.top_k
                      ? 0
                      : current_.heap.front()->total_us,
                  std::memory_order_relaxed);
  if (kept) admitted_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::shared_ptr<const RequestTrace>> TailReservoir::Snapshot()
    const {
  std::vector<std::shared_ptr<const RequestTrace>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(current_.heap.size() + previous_.heap.size() +
                forced_.size());
    for (const auto& t : current_.heap) out.push_back(t);
    for (const auto& t : previous_.heap) out.push_back(t);
    for (const auto& t : forced_) {
      if (t != nullptr) out.push_back(t);
    }
  }
  // Dedup by id (a forced trace may also sit in a top-K heap), then order
  // slowest-first for the dossier view.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a->id < b->id; });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const auto& a, const auto& b) {
                          return a->id == b->id;
                        }),
            out.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a->total_us != b->total_us) return a->total_us > b->total_us;
    return a->id < b->id;
  });
  return out;
}

}  // namespace chrono::obs
