#include "obs/trace.h"

namespace chrono::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kAnalyze:
      return "analyze";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kLearnCombine:
      return "learn_combine";
    case Stage::kDbExecute:
      return "db_execute";
    case Stage::kSplitDecode:
      return "split_decode";
    case Stage::kCount:
      break;
  }
  return "unknown";
}

const char* TraceOutcomeName(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kCacheHit:
      return "cache_hit";
    case TraceOutcome::kPredictionHit:
      return "prediction_hit";
    case TraceOutcome::kRemotePlain:
      return "remote_plain";
    case TraceOutcome::kWrite:
      return "write";
    case TraceOutcome::kError:
      return "error";
    case TraceOutcome::kStaleHit:
      return "stale_hit";
    case TraceOutcome::kCoalescedHit:
      return "coalesced_hit";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

namespace {

/// Holds a slot's spin latch for the enclosing scope. The critical
/// sections are single shared_ptr swaps/copies, so spinning is bounded by
/// nanoseconds of useful work on the other side.
class SlotLatch {
 public:
  explicit SlotLatch(std::atomic<uint32_t>& latch) : latch_(latch) {
    uint32_t expected = 0;
    while (!latch_.compare_exchange_weak(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      expected = 0;
    }
  }
  ~SlotLatch() { latch_.store(0, std::memory_order_release); }

 private:
  std::atomic<uint32_t>& latch_;
};

}  // namespace

void TraceRing::Push(std::shared_ptr<const RequestTrace> trace) {
  uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  {
    SlotLatch held(slot.latch);
    slot.trace.swap(trace);
  }
  // `trace` now holds the displaced entry; it destructs outside the latch.
}

std::vector<std::shared_ptr<const RequestTrace>> TraceRing::Snapshot() const {
  std::vector<std::shared_ptr<const RequestTrace>> out;
  uint64_t end = next_.load(std::memory_order_acquire);
  uint64_t count = end < capacity_ ? end : capacity_;
  out.reserve(count);
  // Walk backwards from the most recently claimed slot. Slots being
  // concurrently overwritten may briefly read empty or newer than `end`;
  // both are fine — every pointer we do read is a complete trace.
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seq = end - 1 - i;
    const Slot& slot = slots_[seq % capacity_];
    std::shared_ptr<const RequestTrace> t;
    {
      SlotLatch held(slot.latch);
      t = slot.trace;
    }
    if (t != nullptr) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace chrono::obs
