#ifndef CHRONOCACHE_OBS_THREADS_H_
#define CHRONOCACHE_OBS_THREADS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace chrono::obs {

class SampleRing;  // profiler.h: per-thread CPU-sample ring

/// Role a thread plays in the node, so CPU samples and TSan/top -H output
/// attribute to pool roles instead of anonymous thread ids (DESIGN.md §16).
enum class ThreadRole : uint8_t {
  kMain = 0,
  kWorker,    // ThreadPool serving workers
  kIo,        // wire epoll loop
  kSampler,   // time-series sampler
  kDrainer,   // journal drainer
  kClient,    // bench client threads
  kStats,     // StatsServer accept loop
  kProfiler,  // CPU-profile drainer
  kOther,
};
const char* ThreadRoleName(ThreadRole role);

/// \brief Process-wide registry of named threads. Every spawned thread
/// registers itself (RAII ThreadLease), which also applies the kernel-side
/// `pthread_setname_np` name (truncated to the 15-char limit; the full
/// name survives here). Entries are never deallocated — a finished thread
/// is only marked dead — so the SIGPROF handler can dereference its own
/// entry (found via a TLS pointer) without ever racing a free. The
/// profiler hangs a per-thread SampleRing off each entry; rings are owned
/// by the registry and reused across profile windows.
class ThreadRegistry {
 public:
  struct Entry {
    uint32_t index = 0;
    std::string name;               // full logical name ("chrono-ts-sampler")
    ThreadRole role = ThreadRole::kOther;
    uint64_t tid = 0;               // kernel thread id (gettid)
    uintptr_t stack_lo = 0;         // pthread stack bounds: the frame
    uintptr_t stack_hi = 0;         //   walker's validity window
    std::atomic<bool> alive{true};
    /// CPU-sample ring, installed by CpuProfiler::Start (registry-owned
    /// once set, freed only at registry destruction). Acquire/release:
    /// the signal handler loads it on the sampled thread.
    std::atomic<SampleRing*> ring{nullptr};
  };

  /// Observes registrations so an active profiler can give threads that
  /// start mid-window a ring. Called under the registry mutex — keep it
  /// allocation-cheap and never call back into the registry.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void OnThreadRegistered(Entry* entry) = 0;
  };

  static ThreadRegistry& Instance();

  /// Registers the calling thread (role + name, pthread name applied).
  /// The returned entry stays valid for the process lifetime.
  Entry* RegisterCurrent(ThreadRole role, const std::string& name);
  void MarkDead(Entry* entry);

  /// The calling thread's entry (TLS), or null if never registered.
  /// Async-signal-safe: a plain TLS load.
  static Entry* Current();

  /// Installs/clears the registration observer (profiler attach/detach).
  void SetObserver(Observer* observer);

  /// Visits every entry (dead ones included — their rings may still hold
  /// undrained samples) under the registry mutex.
  void ForEach(const std::function<void(Entry*)>& fn);

  size_t live_count() const;
  size_t total_count() const;

  /// The /threads document: every registered thread with name, role, tid
  /// and liveness.
  std::string ThreadsJson() const;

  ~ThreadRegistry();

 private:
  ThreadRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
  Observer* observer_ = nullptr;  // guarded by mutex_
};

/// RAII registration: construct at the top of a thread's entry function.
/// Restores any previously registered entry on destruction (nested leases
/// in tests) and marks this one dead.
class ThreadLease {
 public:
  ThreadLease(ThreadRole role, const std::string& name);
  ~ThreadLease();

  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;

  ThreadRegistry::Entry* entry() const { return entry_; }

 private:
  ThreadRegistry::Entry* entry_ = nullptr;
  ThreadRegistry::Entry* previous_ = nullptr;
};

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_THREADS_H_
