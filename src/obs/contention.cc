#include "obs/contention.h"

#include <algorithm>

namespace chrono::obs {

LockSite::LockSite(std::string name, const std::atomic<bool>* armed,
                   MetricsRegistry* registry)
    : name_(std::move(name)), armed_(armed) {
  acquisitions_ = registry->GetCounter(
      "chrono_lock_acquisitions_total",
      "Instrumented lock acquisitions while lock telemetry is armed",
      {{"site", name_}});
  contended_ = registry->GetCounter(
      "chrono_lock_contended_total",
      "Lock acquisitions that had to block behind another holder",
      {{"site", name_}});
  wait_ns_ = registry->GetHistogram(
      "chrono_lock_wait_ns",
      "Nanoseconds spent blocked acquiring an instrumented lock",
      {{"site", name_}});
  hold_ns_ = registry->GetHistogram(
      "chrono_lock_hold_ns",
      "Nanoseconds an instrumented lock was held exclusively",
      {{"site", name_}});
}

ContentionRegistry::ContentionRegistry(MetricsRegistry* registry)
    : registry_(registry) {}

LockSite* ContentionRegistry::Site(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  sites_.push_back(
      std::unique_ptr<LockSite>(new LockSite(name, &armed_, registry_)));
  LockSite* site = sites_.back().get();
  by_name_[name] = site;
  return site;
}

std::string ContentionRegistry::ContentionJson() const {
  struct Row {
    const LockSite* site;
    uint64_t acquisitions;
    uint64_t contended;
    HistogramSnapshot wait;
    HistogramSnapshot hold;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rows.reserve(sites_.size());
    for (const auto& site : sites_) {
      rows.push_back({site.get(), site->acquisitions(), site->contended(),
                      site->wait_snapshot(), site->hold_snapshot()});
    }
  }
  // Rank by total wait: the site burning the most blocked nanoseconds
  // leads the document (ties broken by name for a stable order).
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.wait.sum != b.wait.sum) return a.wait.sum > b.wait.sum;
    return a.site->name() < b.site->name();
  });
  double total_wait = 0;
  for (const Row& row : rows) total_wait += row.wait.sum;

  std::string out = "{\"armed\":";
  out += armed() ? "true" : "false";
  out += ",\"total_wait_ns\":" + std::to_string(total_wait);
  out += ",\"sites\":[";
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ",";
    first = false;
    out += "{\"site\":\"" + row.site->name() + "\"";
    out += ",\"acquisitions\":" + std::to_string(row.acquisitions);
    out += ",\"contended\":" + std::to_string(row.contended);
    out += ",\"wait_count\":" + std::to_string(row.wait.count);
    out += ",\"wait_total_ns\":" + std::to_string(row.wait.sum);
    out += ",\"wait_share\":" +
           std::to_string(total_wait == 0 ? 0.0 : row.wait.sum / total_wait);
    out += ",\"wait_p50_ns\":" + std::to_string(row.wait.Percentile(0.50));
    out += ",\"wait_p99_ns\":" + std::to_string(row.wait.Percentile(0.99));
    out += ",\"hold_count\":" + std::to_string(row.hold.count);
    out += ",\"hold_total_ns\":" + std::to_string(row.hold.sum);
    out += ",\"hold_p50_ns\":" + std::to_string(row.hold.Percentile(0.50));
    out += ",\"hold_p99_ns\":" + std::to_string(row.hold.Percentile(0.99));
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace chrono::obs
