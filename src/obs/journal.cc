#include "obs/journal.h"

#include <algorithm>
#include <cstring>

#include "obs/threads.h"

namespace chrono::obs {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::atomic<uint64_t> g_journal_generation{0};

/// Single-entry per-thread cache mapping this thread to its ring in one
/// specific journal. The generation tag makes a recycled journal address
/// miss the cache instead of resurrecting a dead buffer pointer.
struct TlsSlot {
  const void* journal = nullptr;
  uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local TlsSlot t_slot;

}  // namespace

const char* JournalEventTypeName(JournalEventType type) {
  switch (type) {
    case JournalEventType::kPlanMined: return "plan_mined";
    case JournalEventType::kCombinedIssued: return "combined_issued";
    case JournalEventType::kCombinedFetched: return "combined_fetched";
    case JournalEventType::kEntryInstalled: return "entry_installed";
    case JournalEventType::kEntryUsed: return "entry_used";
    case JournalEventType::kEntryEvicted: return "entry_evicted";
    case JournalEventType::kEntryInvalidated: return "entry_invalidated";
    case JournalEventType::kRequest: return "request";
    case JournalEventType::kBackendRetry: return "backend_retry";
    case JournalEventType::kBackendTimeout: return "backend_timeout";
    case JournalEventType::kBreakerTransition: return "breaker_transition";
    case JournalEventType::kStaleServe: return "stale_serve";
    case JournalEventType::kShed: return "shed";
    case JournalEventType::kBackendCoalesced: return "backend_coalesced";
    case JournalEventType::kWireRequest: return "wire_request";
    case JournalEventType::kShedQueue: return "shed_queue";
    case JournalEventType::kDeadlineExpired: return "deadline_expired";
    case JournalEventType::kBrownoutTransition: return "brownout_transition";
  }
  return "?";
}

EventJournal::EventJournal() : EventJournal(Options{}) {}

EventJournal::EventJournal(Options options)
    : capacity_(RoundUpPow2(std::max<size_t>(options.buffer_events, 2))),
      drain_interval_ms_(options.drain_interval_ms),
      generation_(g_journal_generation.fetch_add(1,
                                                 std::memory_order_relaxed) +
                  1),
      epoch_(std::chrono::steady_clock::now()) {
  if (drain_interval_ms_ > 0) {
    drainer_ = std::thread([this] { DrainLoop(); });
  } else {
    stopped_ = true;  // no thread to join; Stop() still runs a final drain
  }
}

EventJournal::~EventJournal() { Stop(); }

void EventJournal::AddSink(JournalSink* sink) {
  std::lock_guard<std::mutex> lock(sinks_mutex_);
  sinks_.push_back(sink);
}

void EventJournal::RemoveSink(JournalSink* sink) {
  std::lock_guard<std::mutex> lock(sinks_mutex_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
               sinks_.end());
}

EventJournal::Buffer* EventJournal::BufferForThisThread() {
  if (t_slot.journal == this && t_slot.generation == generation_) {
    return static_cast<Buffer*>(t_slot.buffer);
  }
  std::lock_guard<std::mutex> lock(register_mutex_);
  Buffer*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    buffers_.push_back(std::make_unique<Buffer>(capacity_));
    slot = buffers_.back().get();
  }
  t_slot = {this, generation_, slot};
  return slot;
}

void EventJournal::Record(JournalEvent event) {
  if (event.ts_us == 0) {
    event.ts_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }
  Buffer* buffer = BufferForThisThread();
  uint64_t head = buffer->head.load(std::memory_order_relaxed);
  uint64_t tail = buffer->tail.load(std::memory_order_acquire);
  if (head - tail > buffer->mask) {  // ring full: drop, never block
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->slots[head & buffer->mask] = event;
  buffer->head.store(head + 1, std::memory_order_release);
}

size_t EventJournal::Drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  scratch_.clear();

  // Snapshot the buffer list (stable unique_ptrs; new threads may append
  // concurrently — they will be seen next drain).
  std::vector<Buffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(register_mutex_);
    buffers.reserve(buffers_.size());
    for (const auto& b : buffers_) buffers.push_back(b.get());
  }
  for (Buffer* buffer : buffers) {
    uint64_t tail = buffer->tail.load(std::memory_order_relaxed);
    uint64_t head = buffer->head.load(std::memory_order_acquire);
    for (uint64_t i = tail; i != head; ++i) {
      scratch_.push_back(buffer->slots[i & buffer->mask]);
    }
    buffer->tail.store(head, std::memory_order_release);
  }
  if (scratch_.empty()) return 0;

  // Per-buffer order is the recording order; across buffers, sort by
  // timestamp so sinks (and journal files) see a near-chronological feed.
  std::stable_sort(scratch_.begin(), scratch_.end(),
                   [](const JournalEvent& x, const JournalEvent& y) {
                     return x.ts_us < y.ts_us;
                   });

  std::vector<JournalSink*> sinks;
  {
    std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks = sinks_;
  }
  for (JournalSink* sink : sinks) {
    sink->OnEvents(scratch_.data(), scratch_.size());
  }
  drained_.fetch_add(scratch_.size(), std::memory_order_relaxed);
  return scratch_.size();
}

void EventJournal::DrainLoop() {
  ThreadLease lease(ThreadRole::kDrainer, "chrono-journal");
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stop_requested_) {
    stop_cv_.wait_for(lock, std::chrono::milliseconds(drain_interval_ms_));
    if (stop_requested_) break;
    lock.unlock();
    Drain();
    lock.lock();
  }
}

void EventJournal::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stop_requested_ && stopped_ && !drainer_.joinable()) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (drainer_.joinable()) drainer_.join();
  Drain();  // final flush: makes recorded == drained exact
  std::lock_guard<std::mutex> lock(stop_mutex_);
  stopped_ = true;
}

uint64_t EventJournal::events_recorded() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  uint64_t total = 0;
  for (const auto& b : buffers_) {
    total += b->head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t EventJournal::events_dropped() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  uint64_t total = 0;
  for (const auto& b : buffers_) {
    total += b->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

size_t EventJournal::buffer_count() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  return buffers_.size();
}

// ---------------------------------------------------------------------------
// File persistence

JournalFileSink::JournalFileSink(FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

std::unique_ptr<JournalFileSink> JournalFileSink::Open(
    const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return nullptr;
  JournalFileHeader header;
  if (std::fwrite(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return nullptr;
  }
  return std::unique_ptr<JournalFileSink>(new JournalFileSink(f, path));
}

JournalFileSink::~JournalFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JournalFileSink::OnEvents(const JournalEvent* events, size_t count) {
  if (file_ == nullptr || count == 0) return;
  written_ += std::fwrite(events, sizeof(JournalEvent), count, file_);
}

void JournalFileSink::Flush() {
  if (file_ != nullptr) std::fflush(file_);
}

Result<std::vector<JournalEvent>> ReadJournalFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open journal file: " + path);
  }
  JournalFileHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1 ||
      std::memcmp(header.magic, "CHRJ", 4) != 0) {
    std::fclose(f);
    return Status::InvalidArgument(path + ": not a ChronoCache journal");
  }
  if (header.version != 1 || header.event_size != sizeof(JournalEvent)) {
    std::fclose(f);
    return Status::InvalidArgument(
        path + ": unsupported journal version/record size");
  }
  std::vector<JournalEvent> events;
  JournalEvent buf[256];
  size_t n;
  while ((n = std::fread(buf, sizeof(JournalEvent), 256, f)) > 0) {
    events.insert(events.end(), buf, buf + n);
  }
  bool trailing_garbage = std::ftell(f) % sizeof(JournalEvent) !=
                          sizeof(JournalFileHeader) % sizeof(JournalEvent);
  std::fclose(f);
  if (trailing_garbage) {
    return Status::InvalidArgument(path + ": truncated trailing record");
  }
  return events;
}

}  // namespace chrono::obs
