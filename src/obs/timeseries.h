#ifndef CHRONOCACHE_OBS_TIMESERIES_H_
#define CHRONOCACHE_OBS_TIMESERIES_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace chrono::obs {

/// \brief Fixed-capacity ring of 1 s (configurable) samples derived from
/// the metrics registry: qps, cache hit rate, error/retry/stale rates and
/// delta-percentiles of request latency over each interval — the
/// "what changed in the last minute" view that cumulative counters and
/// all-time histograms cannot answer without an external scraper.
///
/// A sample is the *difference* between two registry snapshots: counter
/// deltas divided by the interval, and percentiles of the latency
/// histogram restricted to observations recorded inside the interval
/// (cumulative-bucket subtraction). The sampler thread takes one registry
/// snapshot per interval; the instrumented hot path is never touched.
class TimeSeriesRing {
 public:
  struct Options {
    size_t capacity = 300;       // samples retained (5 min at 1 s)
    uint64_t interval_ms = 1000; // sampling period
  };

  struct Sample {
    uint64_t t_us = 0;        // clock() at sample time
    double qps = 0;           // demand requests/s over the interval
    double hit_rate = 0;      // result-cache hit rate over the interval
    double errors_ps = 0;     // request errors/s
    double retries_ps = 0;    // backend retries/s
    double stale_ps = 0;      // stale serves/s
    double p50_us = 0;        // request latency percentiles, this interval
    double p99_us = 0;
    uint64_t requests_total = 0;  // cumulative, for scrape alignment
  };

  /// `clock` supplies sample timestamps in µs; pass the server's
  /// monotonic NowMicros so samples and request traces share a timeline.
  TimeSeriesRing(const MetricsRegistry* registry, const Options& options,
                 std::function<uint64_t()> clock);
  ~TimeSeriesRing();

  TimeSeriesRing(const TimeSeriesRing&) = delete;
  TimeSeriesRing& operator=(const TimeSeriesRing&) = delete;

  /// Starts/stops the sampler thread. Stop() is idempotent and must be
  /// called before anything the registry callbacks read is destroyed.
  void Start();
  void Stop();

  /// Takes one sample immediately (also the sampler thread's body; public
  /// so tests can drive the ring without waiting out real intervals).
  void SampleNow();

  /// Oldest-first copy of the retained samples.
  std::vector<Sample> Snapshot() const;

  /// {"interval_ms":..,"samples":[{"t_us":..,"qps":..,...},...]}
  std::string ToJson() const;

  size_t capacity() const { return options_.capacity; }
  uint64_t interval_ms() const { return options_.interval_ms; }
  uint64_t samples_taken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }

 private:
  /// Cumulative values carried between samples for delta computation.
  struct Cumulative {
    bool valid = false;
    uint64_t t_us = 0;
    double requests = 0;
    double hits = 0;
    double misses = 0;
    double errors = 0;
    double retries = 0;
    double stale = 0;
    HistogramSnapshot latency;  // op=read + op=write merged
  };

  void Loop();
  Cumulative Collect() const;

  const Options options_;
  const MetricsRegistry* const registry_;
  const std::function<uint64_t()> clock_;

  mutable std::mutex mutex_;
  std::vector<Sample> ring_;   // ring_[i % capacity], i < next_
  uint64_t next_ = 0;
  Cumulative prev_;

  std::atomic<uint64_t> samples_taken_{0};
  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool running_ = false;
};

/// Sums two cumulative-bucket histograms (e.g. the op=read and op=write
/// latency families) into one, carrying forward sparse buckets.
HistogramSnapshot MergeHistograms(const HistogramSnapshot& a,
                                  const HistogramSnapshot& b);

/// The observations recorded between `prev` and `cur` (cur − prev by
/// cumulative-bucket subtraction, clamped at zero so a racing writer can
/// never produce a negative bucket). Percentiles of the result describe
/// only that interval.
HistogramSnapshot DeltaHistogram(const HistogramSnapshot& cur,
                                 const HistogramSnapshot& prev);

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_TIMESERIES_H_
