#ifndef CHRONOCACHE_OBS_AUDIT_H_
#define CHRONOCACHE_OBS_AUDIT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace chrono::obs {

/// \brief Prefetch cost/benefit aggregator: a JournalSink that folds the
/// event stream into per-plan and per-transition-edge scoreboards —
/// precision (used ÷ installed), wasted WAN bytes, median time-to-first-use
/// and net latency saved vs. demand-fetch — plus per-template latency
/// digests and a pipeline stage-time profile. This is the data the paper's
/// *adaptive* half needs: which mined plans earn their WAN bytes.
///
/// Plans are keyed by their *root (trigger) template*, not the unique
/// per-instance plan id, so the scoreboard stays bounded by the workload's
/// template count; the instance→root mapping is learned from kPlanMined
/// events (instances whose mining event was dropped fold under "unknown").
/// Edges are keyed "src->dst" ("root" when the entry's template was a
/// text-dependency root of the plan), matching
/// chrono_prediction_hits_total{edge}.
///
/// Thread safety: OnEvents arrives single-threaded from the journal
/// drainer; snapshot() may be called concurrently (StatsServer /prefetch,
/// the bench progress line), so one internal mutex guards all state. When
/// constructed with a registry, folding also drives the
/// chrono_prefetch_{installed,used,wasted_bytes,invalidated}_total counter
/// families, so scraped counters and offline chrono_audit numbers are two
/// views of the same fold and always reconcile.
class PrefetchAudit : public JournalSink {
 public:
  /// `registry` (nullable) receives the chrono_prefetch_*_total counters;
  /// it must outlive the audit.
  explicit PrefetchAudit(MetricsRegistry* registry = nullptr);

  void OnEvents(const JournalEvent* events, size_t count) override;

  /// One scoreboard row (a plan root template or a transition edge).
  struct Score {
    std::string key;                // "<root tmpl>" / "unknown" / "a->b"
    uint64_t mined = 0;             // plan boards only
    uint64_t issued = 0;            // combined queries sent
    uint64_t fetch_ok = 0;          // combined responses that parsed
    uint64_t fetch_failed = 0;
    uint64_t rows_fetched = 0;
    uint64_t wan_bytes = 0;         // combined result bytes over the WAN
    uint64_t db_round_us = 0;       // summed combined round-trip time
    uint64_t installed = 0;
    uint64_t installed_bytes = 0;
    uint64_t used = 0;              // entries that served >= 1 hit
    uint64_t used_bytes = 0;
    uint64_t evicted_unused = 0;
    uint64_t evicted_used = 0;
    uint64_t invalidated = 0;       // total invalidated-by-write
    uint64_t invalidated_unused = 0;
    uint64_t wasted_bytes = 0;      // bytes of entries that died unused
    uint64_t hits = 0;              // requests answered by these entries
    uint64_t hit_latency_us = 0;
    double precision = 0;           // used / installed (0 when none)
    double median_ttfu_us = 0;      // median install → first-use gap
    /// Σ_tmpl hits × mean demand-fetch latency(tmpl) − hit latency sum;
    /// 0 when no demand-fetch baseline exists for any hit template.
    double net_saved_us = 0;
  };

  /// Per-template request-latency breakdown, one row per TraceOutcome.
  struct OutcomeLatency {
    uint64_t count = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p99_us = 0;
  };
  struct TemplateStats {
    uint64_t tmpl = 0;
    uint64_t requests = 0;
    OutcomeLatency outcomes[kTraceOutcomeCount];  // indexed by TraceOutcome
  };

  /// Availability/degradation board folded from the fault-tolerance
  /// events (retries, timeouts, breaker transitions, stale serves, shed
  /// work, coalesced fetches). The same fold drives
  /// chrono_backend_retries_total, chrono_backend_timeouts_total,
  /// chrono_stale_serves_total, chrono_shed_total{kind},
  /// chrono_breaker_transitions_total{to} and
  /// chrono_backend_coalesced_total, so scraped counters reconcile with
  /// the journal by construction.
  struct Availability {
    uint64_t backend_retries = 0;
    uint64_t backoff_us = 0;        // summed backoff waits
    uint64_t backend_timeouts = 0;
    uint64_t write_timeouts = 0;    // subset of timeouts on writes
    uint64_t stale_serves = 0;
    uint64_t stale_age_us = 0;      // summed age of served stale entries
    uint64_t shed_queue = 0;        // prefetch shed: pool queue saturated
    uint64_t shed_breaker = 0;      // prefetch shed: breaker unhealthy
    uint64_t breaker_open = 0;      // transitions into each state
    uint64_t breaker_half_open = 0;
    uint64_t breaker_closed = 0;    // re-closes only (not the initial state)
    uint64_t backend_coalesced = 0; // misses joined an in-flight demand fetch

    bool Any() const {
      return backend_retries | backend_timeouts | stale_serves | shed_queue |
             shed_breaker | breaker_open | breaker_half_open | breaker_closed |
             backend_coalesced;
    }
  };

  /// Overload-control board folded from the §17 events (kShedQueue,
  /// kDeadlineExpired, kBrownoutTransition, and the kJournalFlagLate bit
  /// on kRequest). The same fold drives
  /// chrono_overload_shed_total{reason}, chrono_overload_deadline_expired_total,
  /// chrono_overload_brownout_transitions_total{to} and
  /// chrono_overload_late_executions_total, so the scraped counters and
  /// an offline chrono_audit run reconcile event-for-event.
  struct Overload {
    uint64_t shed_prefetch = 0;    // brownout level >= 1 dropped prefetches
    uint64_t shed_pipeline = 0;    // level >= 2 refused pipelined Querys
    uint64_t shed_admission = 0;   // level >= 3 refused new Querys
    uint64_t deadline_expired = 0; // expired in queue; rejected unexecuted
    uint64_t expired_in_drain = 0; // subset rejected during shutdown drain
    uint64_t expired_lateness_us = 0;  // summed µs past deadline at dequeue
    uint64_t brownout_transitions = 0;
    uint64_t max_level = 0;        // highest brownout level ever entered
    /// §17 invariant violation: requests that started executing after
    /// their client deadline had already passed. Must stay zero — expired
    /// work is rejected at dequeue, never run.
    uint64_t late_executions = 0;

    uint64_t TotalShed() const {
      return shed_prefetch + shed_pipeline + shed_admission;
    }
    bool Any() const {
      return shed_prefetch | shed_pipeline | shed_admission |
             deadline_expired | brownout_transitions | late_executions;
    }
  };

  /// Wire-frontend board folded from kWireRequest events: the network-hop
  /// view of the served requests, so an offline chrono_audit run over a
  /// journal recorded behind TCP (§13) still reconciles with the node's
  /// scraped chrono_wire_* counters.
  struct Wire {
    uint64_t requests = 0;
    uint64_t failed = 0;          // answered with an Error frame
    uint64_t response_bytes = 0;  // summed encoded response frames
    double mean_latency_us = 0;   // frame decoded -> response queued
    double p50_latency_us = 0;
    double p99_latency_us = 0;

    bool Any() const { return requests != 0; }
  };

  static constexpr int kStageSlots = 6;  // 5 pipeline stages + total

  struct Snapshot {
    uint64_t events_folded = 0;
    uint64_t requests = 0;
    uint64_t outcome_counts[kTraceOutcomeCount] = {};
    Availability availability;
    Overload overload;
    Wire wire;
    /// Summed µs per pipeline stage across all requests with latency:
    /// analyze, cache-lookup, learn/combine, db-execute, split/decode,
    /// total (the same order as obs::Stage, total last).
    uint64_t stage_sum_us[kStageSlots] = {};
    uint64_t requests_with_latency = 0;
    std::vector<Score> plans;      // sorted by key
    std::vector<Score> edges;      // sorted by key
    std::vector<TemplateStats> templates;  // sorted by template id

    uint64_t TotalInstalled() const;
    uint64_t TotalUsed() const;
    uint64_t TotalWastedBytes() const;
    uint64_t TotalInvalidated() const;
    /// Σ used ÷ Σ installed across plan boards (0 when none installed).
    double OverallPrecision() const;
  };

  Snapshot snapshot() const;

 private:
  /// Non-atomic latency digest reusing Histogram's log-bucket scheme;
  /// cheap enough to keep one per (template, outcome). Buckets allocate
  /// lazily on first Record.
  struct Digest {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<uint32_t> buckets;

    void Record(uint64_t value);
    double Mean() const;
    double Percentile(double q) const;
  };

  struct Board {
    uint64_t mined = 0, issued = 0, fetch_ok = 0, fetch_failed = 0;
    uint64_t rows_fetched = 0, wan_bytes = 0, db_round_us = 0;
    uint64_t installed = 0, installed_bytes = 0;
    uint64_t used = 0, used_bytes = 0;
    uint64_t evicted_unused = 0, evicted_used = 0;
    uint64_t invalidated = 0, invalidated_unused = 0;
    uint64_t wasted_bytes = 0;
    uint64_t hits = 0, hit_latency_us = 0;
    Digest ttfu_us;
    // hits + hit latency per template, for the demand-fetch baseline.
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> hit_by_tmpl;
  };

  struct TemplateAgg {
    uint64_t requests = 0;
    Digest by_outcome[kTraceOutcomeCount];
  };

  void Fold(const JournalEvent& event);
  std::string PlanKey(uint64_t plan_instance) const;
  static std::string EdgeKey(uint64_t src, uint64_t tmpl);
  /// Cached get-or-create of one chrono_prefetch_* counter instance.
  Counter* CounterFor(const char* family, const char* help,
                      const char* label_key, const std::string& label_value);
  /// Cached get-or-create of an unlabelled availability counter.
  void BumpPlain(const char* family, const char* help, uint64_t delta = 1);
  void BumpFamilies(const char* family, const char* help,
                    const std::string& plan_key, const std::string& edge_key,
                    uint64_t delta);
  static Score RenderBoard(const std::string& key, const Board& board,
                           const std::map<uint64_t, TemplateAgg>& templates,
                           double global_plain_mean_us);

  MetricsRegistry* const registry_;

  mutable std::mutex mutex_;
  uint64_t events_folded_ = 0;
  uint64_t requests_ = 0;
  uint64_t outcome_counts_[kTraceOutcomeCount] = {};
  Availability availability_;
  Overload overload_;
  uint64_t wire_requests_ = 0;
  uint64_t wire_failed_ = 0;
  uint64_t wire_bytes_ = 0;
  Digest wire_latency_us_;
  uint64_t stage_sum_us_[kStageSlots] = {};
  uint64_t requests_with_latency_ = 0;
  std::map<uint64_t, uint64_t> plan_root_;  // plan instance id -> root tmpl
  std::map<std::string, Board> plans_;
  std::map<std::string, Board> edges_;
  std::map<uint64_t, TemplateAgg> templates_;
  std::map<std::string, Counter*> counters_;  // family\0label\0value ->
};

/// Renders a snapshot as the /prefetch endpoint's JSON document.
std::string PrefetchAuditJson(const PrefetchAudit::Snapshot& snapshot);

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_AUDIT_H_
