#include "obs/audit.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"

namespace chrono::obs {

namespace {

const char* kOutcomeNames[kTraceOutcomeCount] = {
    "cache_hit", "prediction_hit", "remote_plain", "write",
    "error",     "stale_hit",      "coalesced_hit"};
const char* kStageNames[PrefetchAudit::kStageSlots] = {
    "analyze", "cache_lookup", "learn_combine",
    "db_execute", "split_decode", "total"};

constexpr int kRemotePlainOutcome =
    static_cast<int>(TraceOutcome::kRemotePlain);

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Digest

void PrefetchAudit::Digest::Record(uint64_t value) {
  if (buckets.empty()) buckets.resize(Histogram::kBucketCount, 0);
  ++buckets[static_cast<size_t>(Histogram::BucketIndex(value))];
  sum += value;
  ++count;
}

double PrefetchAudit::Digest::Mean() const {
  return count == 0 ? 0 : static_cast<double>(sum) / static_cast<double>(count);
}

double PrefetchAudit::Digest::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank) {
      double lower =
          i == 0 ? 0
                 : static_cast<double>(
                       Histogram::BucketUpperBound(static_cast<int>(i) - 1));
      double upper = static_cast<double>(
          Histogram::BucketUpperBound(static_cast<int>(i)));
      double fraction =
          (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
    }
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(Histogram::kBucketCount - 1));
}

// ---------------------------------------------------------------------------
// PrefetchAudit

PrefetchAudit::PrefetchAudit(MetricsRegistry* registry)
    : registry_(registry) {}

void PrefetchAudit::OnEvents(const JournalEvent* events, size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < count; ++i) Fold(events[i]);
}

std::string PrefetchAudit::PlanKey(uint64_t plan_instance) const {
  auto it = plan_root_.find(plan_instance);
  if (it == plan_root_.end() || it->second == 0) return "unknown";
  return std::to_string(it->second);
}

std::string PrefetchAudit::EdgeKey(uint64_t src, uint64_t tmpl) {
  if (src == 0) return "root";
  return std::to_string(src) + "->" + std::to_string(tmpl);
}

Counter* PrefetchAudit::CounterFor(const char* family, const char* help,
                                   const char* label_key,
                                   const std::string& label_value) {
  std::string key;
  key.reserve(48);
  key.append(family).push_back('\0');
  key.append(label_key).push_back('\0');
  key.append(label_value);
  auto it = counters_.find(key);
  if (it != counters_.end()) return it->second;
  Counter* counter =
      registry_->GetCounter(family, help, {{label_key, label_value}});
  counters_.emplace(std::move(key), counter);
  return counter;
}

void PrefetchAudit::BumpPlain(const char* family, const char* help,
                              uint64_t delta) {
  if (registry_ == nullptr || delta == 0) return;
  std::string key;
  key.reserve(48);
  key.append(family).push_back('\0');
  auto it = counters_.find(key);
  Counter* counter;
  if (it != counters_.end()) {
    counter = it->second;
  } else {
    counter = registry_->GetCounter(family, help, {});
    counters_.emplace(std::move(key), counter);
  }
  counter->Increment(delta);
}

void PrefetchAudit::BumpFamilies(const char* family, const char* help,
                                 const std::string& plan_key,
                                 const std::string& edge_key, uint64_t delta) {
  if (registry_ == nullptr || delta == 0) return;
  CounterFor(family, help, "plan", plan_key)->Increment(delta);
  CounterFor(family, help, "edge", edge_key)->Increment(delta);
}

void PrefetchAudit::Fold(const JournalEvent& event) {
  ++events_folded_;
  switch (event.type) {
    case JournalEventType::kPlanMined: {
      plan_root_[event.plan] = event.tmpl;
      ++plans_[PlanKey(event.plan)].mined;
      break;
    }
    case JournalEventType::kCombinedIssued: {
      ++plans_[PlanKey(event.plan)].issued;
      break;
    }
    case JournalEventType::kCombinedFetched: {
      Board& board = plans_[PlanKey(event.plan)];
      if (event.flags & kJournalFlagOk) {
        ++board.fetch_ok;
      } else {
        ++board.fetch_failed;
      }
      board.rows_fetched += event.a;
      board.wan_bytes += event.b;
      board.db_round_us += event.c;
      break;
    }
    case JournalEventType::kEntryInstalled: {
      std::string plan_key = PlanKey(event.plan);
      std::string edge_key = EdgeKey(event.src, event.tmpl);
      for (Board* board : {&plans_[plan_key], &edges_[edge_key]}) {
        ++board->installed;
        board->installed_bytes += event.a;
      }
      BumpFamilies("chrono_prefetch_installed_total",
                   "Prefetched result-cache entries installed.", plan_key,
                   edge_key, 1);
      break;
    }
    case JournalEventType::kEntryUsed: {
      std::string plan_key = PlanKey(event.plan);
      std::string edge_key = EdgeKey(event.src, event.tmpl);
      for (Board* board : {&plans_[plan_key], &edges_[edge_key]}) {
        ++board->used;
        board->used_bytes += event.a;
        board->ttfu_us.Record(event.b);
      }
      BumpFamilies("chrono_prefetch_used_total",
                   "Prefetched entries that served at least one hit.",
                   plan_key, edge_key, 1);
      break;
    }
    case JournalEventType::kEntryEvicted: {
      std::string plan_key = PlanKey(event.plan);
      std::string edge_key = EdgeKey(event.src, event.tmpl);
      bool used = (event.flags & kJournalFlagUsed) != 0;
      for (Board* board : {&plans_[plan_key], &edges_[edge_key]}) {
        if (used) {
          ++board->evicted_used;
        } else {
          ++board->evicted_unused;
          board->wasted_bytes += event.a;
        }
      }
      if (!used) {
        BumpFamilies("chrono_prefetch_wasted_bytes_total",
                     "Bytes of prefetched entries evicted or invalidated "
                     "before any hit.",
                     plan_key, edge_key, event.a);
      }
      break;
    }
    case JournalEventType::kEntryInvalidated: {
      std::string plan_key = PlanKey(event.plan);
      std::string edge_key = EdgeKey(event.src, event.tmpl);
      bool used = (event.flags & kJournalFlagUsed) != 0;
      for (Board* board : {&plans_[plan_key], &edges_[edge_key]}) {
        ++board->invalidated;
        if (!used) {
          ++board->invalidated_unused;
          board->wasted_bytes += event.a;
        }
      }
      BumpFamilies("chrono_prefetch_invalidated_total",
                   "Prefetched entries invalidated by writes.", plan_key,
                   edge_key, 1);
      if (!used) {
        BumpFamilies("chrono_prefetch_wasted_bytes_total",
                     "Bytes of prefetched entries evicted or invalidated "
                     "before any hit.",
                     plan_key, edge_key, event.a);
      }
      break;
    }
    case JournalEventType::kBackendRetry: {
      ++availability_.backend_retries;
      availability_.backoff_us += event.b;
      BumpPlain("chrono_backend_retries_total",
                "Demand-read retries after transport failures.");
      break;
    }
    case JournalEventType::kBackendTimeout: {
      ++availability_.backend_timeouts;
      if (event.flags & kJournalFlagWrite) ++availability_.write_timeouts;
      BumpPlain("chrono_backend_timeouts_total",
                "Remote calls abandoned at their deadline budget.");
      break;
    }
    case JournalEventType::kBreakerTransition: {
      const char* to = "closed";
      switch (event.a) {
        case 0:
          ++availability_.breaker_closed;
          to = "closed";
          break;
        case 1:
          ++availability_.breaker_open;
          to = "open";
          break;
        case 2:
          ++availability_.breaker_half_open;
          to = "half_open";
          break;
      }
      if (registry_ != nullptr) {
        CounterFor("chrono_breaker_transitions_total",
                   "Circuit-breaker state transitions by target state.",
                   "to", to)
            ->Increment(1);
      }
      break;
    }
    case JournalEventType::kStaleServe: {
      ++availability_.stale_serves;
      availability_.stale_age_us += event.a;
      BumpPlain("chrono_stale_serves_total",
                "Demand reads answered from stale cache entries after a "
                "backend failure.");
      break;
    }
    case JournalEventType::kShed: {
      const char* kind;
      if (event.a == kShedQueueFull) {
        ++availability_.shed_queue;
        kind = "prefetch_queue";
      } else {
        ++availability_.shed_breaker;
        kind = "prefetch_breaker";
      }
      if (registry_ != nullptr) {
        CounterFor("chrono_shed_total",
                   "Best-effort work shed instead of queued or retried.",
                   "kind", kind)
            ->Increment(1);
      }
      break;
    }
    case JournalEventType::kBackendCoalesced: {
      ++availability_.backend_coalesced;
      BumpPlain("chrono_backend_coalesced_total",
                "Demand misses that joined another thread's in-flight "
                "backend fetch instead of issuing their own.");
      break;
    }
    case JournalEventType::kShedQueue: {
      const char* reason;
      switch (event.a) {
        case kOverloadShedPipeline:
          ++overload_.shed_pipeline;
          reason = "pipeline";
          break;
        case kOverloadShedAdmission:
          ++overload_.shed_admission;
          reason = "admission";
          break;
        default:
          ++overload_.shed_prefetch;
          reason = "prefetch";
          break;
      }
      if (registry_ != nullptr) {
        CounterFor("chrono_overload_shed_total",
                   "Work refused by the brownout ladder, by shed reason.",
                   "reason", reason)
            ->Increment(1);
      }
      break;
    }
    case JournalEventType::kDeadlineExpired: {
      ++overload_.deadline_expired;
      overload_.expired_lateness_us += event.a;
      if (event.flags & kJournalFlagDrain) ++overload_.expired_in_drain;
      BumpPlain("chrono_overload_deadline_expired_total",
                "Requests whose client deadline expired while queued; "
                "rejected at dequeue without executing.");
      break;
    }
    case JournalEventType::kBrownoutTransition: {
      ++overload_.brownout_transitions;
      overload_.max_level = std::max(overload_.max_level, event.a);
      static const char* kLevelNames[] = {"normal", "shed_prefetch",
                                          "shed_pipeline", "reject_query"};
      const char* to = event.a < 4 ? kLevelNames[event.a] : "unknown";
      if (registry_ != nullptr) {
        CounterFor("chrono_overload_brownout_transitions_total",
                   "Brownout ladder transitions by target level.", "to", to)
            ->Increment(1);
      }
      break;
    }
    case JournalEventType::kWireRequest: {
      // The WireServer drives its own chrono_wire_* registry metrics at
      // record time; folding here only feeds the offline report and the
      // snapshot JSON, so the counters are never double-bumped.
      ++wire_requests_;
      if ((event.flags & kJournalFlagOk) == 0) ++wire_failed_;
      wire_bytes_ += event.b;
      wire_latency_us_.Record(event.a);
      break;
    }
    case JournalEventType::kRequest: {
      ++requests_;
      int outcome = std::min<int>(event.flags & 0x0f, kTraceOutcomeCount - 1);
      ++outcome_counts_[outcome];
      if (event.flags & kJournalFlagLate) {
        ++overload_.late_executions;
        BumpPlain("chrono_overload_late_executions_total",
                  "Requests executed after their client deadline had "
                  "already expired (SS17 violation; must stay zero).");
      }
      bool has_latency = (event.flags & kJournalFlagNoLatency) == 0;
      uint64_t total_us = UnpackHi(event.c);
      if (has_latency) {
        ++requests_with_latency_;
        stage_sum_us_[0] += UnpackLo(event.a);
        stage_sum_us_[1] += UnpackHi(event.a);
        stage_sum_us_[2] += UnpackLo(event.b);
        stage_sum_us_[3] += UnpackHi(event.b);
        stage_sum_us_[4] += UnpackLo(event.c);
        stage_sum_us_[5] += total_us;
      }
      if (event.tmpl != 0) {
        TemplateAgg& agg = templates_[event.tmpl];
        ++agg.requests;
        if (has_latency) agg.by_outcome[outcome].Record(total_us);
      }
      if (event.plan != 0) {
        std::string plan_key = PlanKey(event.plan);
        std::string edge_key = EdgeKey(event.src, event.tmpl);
        for (Board* board : {&plans_[plan_key], &edges_[edge_key]}) {
          ++board->hits;
          auto& per_tmpl = board->hit_by_tmpl[event.tmpl];
          ++per_tmpl.first;
          if (has_latency) {
            board->hit_latency_us += total_us;
            per_tmpl.second += total_us;
          }
        }
      }
      break;
    }
  }
}

PrefetchAudit::Score PrefetchAudit::RenderBoard(
    const std::string& key, const Board& board,
    const std::map<uint64_t, TemplateAgg>& templates,
    double global_plain_mean_us) {
  Score score;
  score.key = key;
  score.mined = board.mined;
  score.issued = board.issued;
  score.fetch_ok = board.fetch_ok;
  score.fetch_failed = board.fetch_failed;
  score.rows_fetched = board.rows_fetched;
  score.wan_bytes = board.wan_bytes;
  score.db_round_us = board.db_round_us;
  score.installed = board.installed;
  score.installed_bytes = board.installed_bytes;
  score.used = board.used;
  score.used_bytes = board.used_bytes;
  score.evicted_unused = board.evicted_unused;
  score.evicted_used = board.evicted_used;
  score.invalidated = board.invalidated;
  score.invalidated_unused = board.invalidated_unused;
  score.wasted_bytes = board.wasted_bytes;
  score.hits = board.hits;
  score.hit_latency_us = board.hit_latency_us;
  if (board.installed > 0) {
    score.precision = static_cast<double>(board.used) /
                      static_cast<double>(board.installed);
  }
  score.median_ttfu_us = board.ttfu_us.Percentile(0.5);
  // Net latency saved vs. demand-fetch: for every template these entries
  // answered, what would the same hits have cost as plain remote reads?
  double saved = 0;
  uint64_t attributed_latency = 0;
  for (const auto& [tmpl, hits_latency] : board.hit_by_tmpl) {
    double baseline = 0;
    auto it = templates.find(tmpl);
    if (it != templates.end() &&
        it->second.by_outcome[kRemotePlainOutcome].count > 0) {
      baseline = it->second.by_outcome[kRemotePlainOutcome].Mean();
    } else {
      baseline = global_plain_mean_us;
    }
    if (baseline <= 0) continue;  // no demand-fetch evidence: don't guess
    saved += static_cast<double>(hits_latency.first) * baseline;
    attributed_latency += hits_latency.second;
  }
  if (saved > 0) {
    score.net_saved_us = saved - static_cast<double>(attributed_latency);
  }
  return score;
}

PrefetchAudit::Snapshot PrefetchAudit::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  out.events_folded = events_folded_;
  out.requests = requests_;
  out.availability = availability_;
  out.overload = overload_;
  out.wire.requests = wire_requests_;
  out.wire.failed = wire_failed_;
  out.wire.response_bytes = wire_bytes_;
  out.wire.mean_latency_us = wire_latency_us_.Mean();
  out.wire.p50_latency_us = wire_latency_us_.Percentile(0.5);
  out.wire.p99_latency_us = wire_latency_us_.Percentile(0.99);
  for (int i = 0; i < kTraceOutcomeCount; ++i) {
    out.outcome_counts[i] = outcome_counts_[i];
  }
  for (int i = 0; i < kStageSlots; ++i) out.stage_sum_us[i] = stage_sum_us_[i];
  out.requests_with_latency = requests_with_latency_;

  uint64_t plain_count = 0, plain_sum = 0;
  for (const auto& [tmpl, agg] : templates_) {
    (void)tmpl;
    plain_count += agg.by_outcome[kRemotePlainOutcome].count;
    plain_sum += agg.by_outcome[kRemotePlainOutcome].sum;
  }
  double global_plain_mean =
      plain_count == 0
          ? 0
          : static_cast<double>(plain_sum) / static_cast<double>(plain_count);

  out.plans.reserve(plans_.size());
  for (const auto& [key, board] : plans_) {
    out.plans.push_back(
        RenderBoard(key, board, templates_, global_plain_mean));
  }
  out.edges.reserve(edges_.size());
  for (const auto& [key, board] : edges_) {
    out.edges.push_back(
        RenderBoard(key, board, templates_, global_plain_mean));
  }
  out.templates.reserve(templates_.size());
  for (const auto& [tmpl, agg] : templates_) {
    TemplateStats stats;
    stats.tmpl = tmpl;
    stats.requests = agg.requests;
    for (int o = 0; o < kTraceOutcomeCount; ++o) {
      const Digest& digest = agg.by_outcome[o];
      stats.outcomes[o].count = digest.count;
      stats.outcomes[o].mean_us = digest.Mean();
      stats.outcomes[o].p50_us = digest.Percentile(0.5);
      stats.outcomes[o].p99_us = digest.Percentile(0.99);
    }
    out.templates.push_back(std::move(stats));
  }
  return out;
}

uint64_t PrefetchAudit::Snapshot::TotalInstalled() const {
  uint64_t total = 0;
  for (const auto& plan : plans) total += plan.installed;
  return total;
}

uint64_t PrefetchAudit::Snapshot::TotalUsed() const {
  uint64_t total = 0;
  for (const auto& plan : plans) total += plan.used;
  return total;
}

uint64_t PrefetchAudit::Snapshot::TotalWastedBytes() const {
  uint64_t total = 0;
  for (const auto& plan : plans) total += plan.wasted_bytes;
  return total;
}

uint64_t PrefetchAudit::Snapshot::TotalInvalidated() const {
  uint64_t total = 0;
  for (const auto& plan : plans) total += plan.invalidated;
  return total;
}

double PrefetchAudit::Snapshot::OverallPrecision() const {
  uint64_t installed = TotalInstalled();
  if (installed == 0) return 0;
  return static_cast<double>(TotalUsed()) / static_cast<double>(installed);
}

// ---------------------------------------------------------------------------
// JSON rendering (the /prefetch endpoint)

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendScore(std::string* out, const PrefetchAudit::Score& s) {
  out->append("{\"key\":\"");
  AppendEscaped(out, s.key);
  out->append("\",\"mined\":").append(std::to_string(s.mined));
  out->append(",\"issued\":").append(std::to_string(s.issued));
  out->append(",\"fetch_ok\":").append(std::to_string(s.fetch_ok));
  out->append(",\"fetch_failed\":").append(std::to_string(s.fetch_failed));
  out->append(",\"rows_fetched\":").append(std::to_string(s.rows_fetched));
  out->append(",\"wan_bytes\":").append(std::to_string(s.wan_bytes));
  out->append(",\"installed\":").append(std::to_string(s.installed));
  out->append(",\"installed_bytes\":")
      .append(std::to_string(s.installed_bytes));
  out->append(",\"used\":").append(std::to_string(s.used));
  out->append(",\"evicted_unused\":")
      .append(std::to_string(s.evicted_unused));
  out->append(",\"evicted_used\":").append(std::to_string(s.evicted_used));
  out->append(",\"invalidated\":").append(std::to_string(s.invalidated));
  out->append(",\"invalidated_unused\":")
      .append(std::to_string(s.invalidated_unused));
  out->append(",\"wasted_bytes\":").append(std::to_string(s.wasted_bytes));
  out->append(",\"hits\":").append(std::to_string(s.hits));
  out->append(",\"precision\":").append(FormatDouble(s.precision));
  out->append(",\"median_ttfu_us\":")
      .append(FormatDouble(s.median_ttfu_us));
  out->append(",\"net_saved_us\":").append(FormatDouble(s.net_saved_us));
  out->push_back('}');
}

}  // namespace

std::string PrefetchAuditJson(const PrefetchAudit::Snapshot& snapshot) {
  std::string out;
  out.reserve(2048);
  out.append("{\"events\":").append(std::to_string(snapshot.events_folded));
  out.append(",\"requests\":").append(std::to_string(snapshot.requests));
  out.append(",\"outcomes\":{");
  for (int i = 0; i < kTraceOutcomeCount; ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    out.append(kOutcomeNames[i]);
    out.append("\":").append(std::to_string(snapshot.outcome_counts[i]));
  }
  out.append("},\"overall\":{\"installed\":")
      .append(std::to_string(snapshot.TotalInstalled()));
  out.append(",\"used\":").append(std::to_string(snapshot.TotalUsed()));
  out.append(",\"precision\":")
      .append(FormatDouble(snapshot.OverallPrecision()));
  out.append(",\"wasted_bytes\":")
      .append(std::to_string(snapshot.TotalWastedBytes()));
  out.append(",\"invalidated\":")
      .append(std::to_string(snapshot.TotalInvalidated()));
  const PrefetchAudit::Availability& av = snapshot.availability;
  out.append("},\"availability\":{\"backend_retries\":")
      .append(std::to_string(av.backend_retries));
  out.append(",\"backoff_us\":").append(std::to_string(av.backoff_us));
  out.append(",\"backend_timeouts\":")
      .append(std::to_string(av.backend_timeouts));
  out.append(",\"write_timeouts\":").append(std::to_string(av.write_timeouts));
  out.append(",\"stale_serves\":").append(std::to_string(av.stale_serves));
  out.append(",\"stale_age_us\":").append(std::to_string(av.stale_age_us));
  out.append(",\"shed_queue\":").append(std::to_string(av.shed_queue));
  out.append(",\"shed_breaker\":").append(std::to_string(av.shed_breaker));
  out.append(",\"breaker_open\":").append(std::to_string(av.breaker_open));
  out.append(",\"breaker_half_open\":")
      .append(std::to_string(av.breaker_half_open));
  out.append(",\"breaker_closed\":")
      .append(std::to_string(av.breaker_closed));
  out.append(",\"backend_coalesced\":")
      .append(std::to_string(av.backend_coalesced));
  const PrefetchAudit::Overload& ov = snapshot.overload;
  out.append("},\"overload\":{\"shed_prefetch\":")
      .append(std::to_string(ov.shed_prefetch));
  out.append(",\"shed_pipeline\":").append(std::to_string(ov.shed_pipeline));
  out.append(",\"shed_admission\":")
      .append(std::to_string(ov.shed_admission));
  out.append(",\"deadline_expired\":")
      .append(std::to_string(ov.deadline_expired));
  out.append(",\"expired_in_drain\":")
      .append(std::to_string(ov.expired_in_drain));
  out.append(",\"expired_lateness_us\":")
      .append(std::to_string(ov.expired_lateness_us));
  out.append(",\"brownout_transitions\":")
      .append(std::to_string(ov.brownout_transitions));
  out.append(",\"max_level\":").append(std::to_string(ov.max_level));
  out.append(",\"late_executions\":")
      .append(std::to_string(ov.late_executions));
  const PrefetchAudit::Wire& wire = snapshot.wire;
  out.append("},\"wire\":{\"requests\":")
      .append(std::to_string(wire.requests));
  out.append(",\"failed\":").append(std::to_string(wire.failed));
  out.append(",\"response_bytes\":")
      .append(std::to_string(wire.response_bytes));
  out.append(",\"mean_latency_us\":")
      .append(FormatDouble(wire.mean_latency_us));
  out.append(",\"p50_latency_us\":")
      .append(FormatDouble(wire.p50_latency_us));
  out.append(",\"p99_latency_us\":")
      .append(FormatDouble(wire.p99_latency_us));
  out.append("},\"stage_sum_us\":{");
  for (int i = 0; i < PrefetchAudit::kStageSlots; ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    out.append(kStageNames[i]);
    out.append("\":").append(std::to_string(snapshot.stage_sum_us[i]));
  }
  out.append("},\"plans\":[");
  for (size_t i = 0; i < snapshot.plans.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendScore(&out, snapshot.plans[i]);
  }
  out.append("],\"edges\":[");
  for (size_t i = 0; i < snapshot.edges.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendScore(&out, snapshot.edges[i]);
  }
  out.append("],\"templates\":[");
  for (size_t i = 0; i < snapshot.templates.size(); ++i) {
    const auto& t = snapshot.templates[i];
    if (i > 0) out.push_back(',');
    out.append("{\"tmpl\":").append(std::to_string(t.tmpl));
    out.append(",\"requests\":").append(std::to_string(t.requests));
    out.append(",\"outcomes\":{");
    bool first = true;
    for (int o = 0; o < kTraceOutcomeCount; ++o) {
      if (t.outcomes[o].count == 0) continue;
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      out.append(kOutcomeNames[o]);
      out.append("\":{\"count\":").append(std::to_string(t.outcomes[o].count));
      out.append(",\"mean_us\":").append(FormatDouble(t.outcomes[o].mean_us));
      out.append(",\"p50_us\":").append(FormatDouble(t.outcomes[o].p50_us));
      out.append(",\"p99_us\":").append(FormatDouble(t.outcomes[o].p99_us));
      out.push_back('}');
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

}  // namespace chrono::obs
