#ifndef CHRONOCACHE_OBS_TRACE_H_
#define CHRONOCACHE_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace chrono::obs {

/// \brief The stages of the serving pipeline a request can pass through,
/// in pipeline order. Names must stay in sync with StageName().
///
/// APPEND-ONLY: values index per-stage histograms and the packed journal
/// kRequest payload. The first five are the in-process pipeline stages;
/// the wire stages (added for socket-mode timelines, DESIGN.md §15) tile
/// the full socket round trip: decode → queue wait → execute (which
/// contains the pipeline stages) → completion-queue wait → response flush.
enum class Stage {
  kAnalyze = 0,      // AnalyzeQuery via the template cache
  kCacheLookup,      // result-cache probe incl. session/security checks
  kLearnCombine,     // model update + dependency-graph combining
  kDbExecute,        // remote database round trip (incl. simulated WAN)
  kSplitDecode,      // combined-result splitting + cache installs
  kWireDecode,       // IO thread: frame bytes → decoded Query
  kQueueWait,        // dispatch → a worker picked the request up
  kExecute,          // worker: the whole Execute() pipeline
  kCompletionWait,   // response encoded → IO thread drains the completion
  kResponseFlush,    // completion drained → last response byte sent
  kCount,
};

const char* StageName(Stage stage);

/// \brief One timed span inside a request: [start_us, start_us + dur_us],
/// microseconds relative to the request's own start.
struct TraceSpan {
  Stage stage = Stage::kAnalyze;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
};

/// \brief How a request was ultimately answered.
enum class TraceOutcome {
  kCacheHit = 0,    // answered from the result cache (see prefetch_plan)
  kPredictionHit,   // miss rescued by an inline covering combined query
  kRemotePlain,     // plain uncombined remote read
  kWrite,           // DML/DDL
  kError,           // statement returned a status
  kStaleHit,        // demand fetch failed; answered from a stale entry
  kCoalescedHit,    // miss joined another thread's in-flight demand fetch
};

/// Number of TraceOutcome values; sizes audit scoreboards and loops.
inline constexpr int kTraceOutcomeCount = 7;

const char* TraceOutcomeName(TraceOutcome outcome);

/// Parses a TraceOutcomeName() string back to its enum value; returns
/// false when `name` matches no outcome. Used by /traces?outcome=.
bool ParseTraceOutcome(std::string_view name, TraceOutcome* out);

/// \brief Why a span was slow: backend events that happened *during* the
/// request, stamped onto its timeline (Chrome "instant" events on export).
/// These mirror the journal events of DESIGN.md §11/§12 so a tail trace
/// carries its own explanation.
enum class AnnotationKind {
  kRetry = 0,        // demand-fetch attempt failed and was retried
  kAttemptTimeout,   // one backend attempt hit the per-attempt cap
  kBreakerReject,    // admission denied by the circuit breaker
  kBreakerState,     // breaker transitioned while this request ran
  kCoalesced,        // parked behind another thread's in-flight fetch
  kStaleServe,       // answered from a version-stale cache entry
  kFault,            // injected fault fired on a backend attempt
  kDeadlineClamp,    // client deadline tightened the retry budget (§17);
                     //   value = remaining client budget µs at clamp time
  kBrownout,         // request served while the brownout ladder was
                     //   elevated; value = the level
};

const char* AnnotationKindName(AnnotationKind kind);

/// One instant event on a request's timeline. `at_us` is relative to the
/// request's own start (same clock as TraceSpan). `value` is kind-specific
/// (attempt number, breaker state, stale age in µs, ...).
struct TraceAnnotation {
  AnnotationKind kind = AnnotationKind::kRetry;
  uint64_t at_us = 0;
  uint64_t value = 0;
};

/// \brief One served request with timed pipeline spans and prediction
/// attribution. Immutable once published to the ring (writers build the
/// whole object, then swap a shared_ptr in).
struct RequestTrace {
  uint64_t id = 0;            // monotonic per server
  uint64_t client = 0;
  uint64_t tmpl = 0;          // template id of the request (0 if none)
  std::string sql;            // bound text, truncated for the ring
  uint64_t start_us = 0;      // server-relative request arrival
  uint64_t total_us = 0;
  TraceOutcome outcome = TraceOutcome::kRemotePlain;
  std::vector<TraceSpan> spans;
  std::vector<TraceAnnotation> annotations;

  /// The client asked for this trace to be retained (wire kFlagTraced):
  /// it bypasses the tail reservoir's admission heuristics.
  bool forced = false;

  // Prediction attribution (zero when the answer was demand-filled): the
  // mined CombinedQuery plan that cached the answer ahead of time, and the
  // transition-graph edge (prefetch_src → tmpl) that predicted it.
  // prefetch_src == 0 with a non-zero plan means the request's template
  // was a root (text-dependency) node of that plan.
  uint64_t prefetch_plan = 0;
  uint64_t prefetch_src = 0;
};

/// \brief Fixed-size ring of recent traces with no global lock: the writer
/// claims a slot with one fetch_add, and each slot is guarded by its own
/// one-word spin latch held only for a shared_ptr swap (a few ns), so
/// concurrent workers on different slots never serialise and a slow
/// /traces reader can only ever delay the one writer that wraps onto the
/// slot it is copying. Capacity is fixed at construction; the ring keeps
/// the most recent `capacity` traces.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Push(std::shared_ptr<const RequestTrace> trace);

  /// Most-recent-first copy of the retained traces. Under concurrent
  /// pushes the result is a per-slot-consistent snapshot (each element is
  /// a complete trace; the set may straddle a wrap).
  std::vector<std::shared_ptr<const RequestTrace>> Snapshot() const;

  size_t capacity() const { return capacity_; }
  /// Total traces ever pushed (>= capacity once the ring has wrapped).
  uint64_t total_pushed() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    // 0 = free, 1 = held. mutable so the const Snapshot() can latch.
    mutable std::atomic<uint32_t> latch{0};
    std::shared_ptr<const RequestTrace> trace;  // guarded by latch
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

/// \brief Keeps the traces the recency ring loses: the top-K slowest
/// requests per sliding window (two rotating generations, so a snapshot
/// always covers between one and two windows of history), plus a bounded
/// ring of *forced* traces — anything over `threshold_us` or explicitly
/// flagged by the client (wire kFlagTraced).
///
/// The hot path calls MightAdmit() first: a single relaxed atomic load of
/// the current generation's admission floor. Under steady load almost
/// every request is faster than the K-th slowest of the window, so the
/// mutex inside Offer() is touched only by actual tail candidates.
class TailReservoir {
 public:
  struct Options {
    size_t top_k = 16;            // slowest traces kept per window
    uint64_t threshold_us = 0;    // 0 = no absolute threshold
    uint64_t window_us = 60'000'000;  // sliding-window width (1 min)
    size_t forced_capacity = 32;  // flagged / over-threshold retention
  };

  explicit TailReservoir(const Options& options);

  /// Cheap pre-check: can a trace of `total_us` possibly be admitted?
  /// False negatives never happen; false positives just take the lock.
  bool MightAdmit(uint64_t total_us, bool forced) const {
    if (forced) return true;
    if (threshold_us_ != 0 && total_us >= threshold_us_) return true;
    return total_us > floor_us_.load(std::memory_order_relaxed);
  }

  /// Offers a published trace. `now_us` drives window rotation and must
  /// be the same clock as trace->start_us (server-relative µs).
  void Offer(std::shared_ptr<const RequestTrace> trace, uint64_t now_us);

  /// All retained traces — current + previous window top-K + forced —
  /// deduplicated by trace id, slowest first.
  std::vector<std::shared_ptr<const RequestTrace>> Snapshot() const;

  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t offered() const { return offered_.load(std::memory_order_relaxed); }
  const Options& options() const { return options_; }

 private:
  struct Generation {
    uint64_t window_start_us = 0;
    // Min-heap by total_us: front() is the admission floor.
    std::vector<std::shared_ptr<const RequestTrace>> heap;
  };

  void RotateLocked(uint64_t now_us);

  const Options options_;
  const uint64_t threshold_us_;

  mutable std::mutex mutex_;
  Generation current_;
  Generation previous_;
  std::vector<std::shared_ptr<const RequestTrace>> forced_;
  size_t forced_next_ = 0;  // ring cursor into forced_

  /// total_us of the current window's K-th slowest trace (0 while the
  /// window has fewer than K traces). Read lock-free by MightAdmit().
  std::atomic<uint64_t> floor_us_{0};
  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> admitted_{0};
};

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_TRACE_H_
