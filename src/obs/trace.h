#ifndef CHRONOCACHE_OBS_TRACE_H_
#define CHRONOCACHE_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace chrono::obs {

/// \brief The stages of the serving pipeline a request can pass through,
/// in pipeline order. Names must stay in sync with StageName().
enum class Stage {
  kAnalyze = 0,      // AnalyzeQuery via the template cache
  kCacheLookup,      // result-cache probe incl. session/security checks
  kLearnCombine,     // model update + dependency-graph combining
  kDbExecute,        // remote database round trip (incl. simulated WAN)
  kSplitDecode,      // combined-result splitting + cache installs
  kCount,
};

const char* StageName(Stage stage);

/// \brief One timed span inside a request: [start_us, start_us + dur_us],
/// microseconds relative to the request's own start.
struct TraceSpan {
  Stage stage = Stage::kAnalyze;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
};

/// \brief How a request was ultimately answered.
enum class TraceOutcome {
  kCacheHit = 0,    // answered from the result cache (see prefetch_plan)
  kPredictionHit,   // miss rescued by an inline covering combined query
  kRemotePlain,     // plain uncombined remote read
  kWrite,           // DML/DDL
  kError,           // statement returned a status
  kStaleHit,        // demand fetch failed; answered from a stale entry
  kCoalescedHit,    // miss joined another thread's in-flight demand fetch
};

/// Number of TraceOutcome values; sizes audit scoreboards and loops.
inline constexpr int kTraceOutcomeCount = 7;

const char* TraceOutcomeName(TraceOutcome outcome);

/// \brief One served request with timed pipeline spans and prediction
/// attribution. Immutable once published to the ring (writers build the
/// whole object, then swap a shared_ptr in).
struct RequestTrace {
  uint64_t id = 0;            // monotonic per server
  uint64_t client = 0;
  uint64_t tmpl = 0;          // template id of the request (0 if none)
  std::string sql;            // bound text, truncated for the ring
  uint64_t start_us = 0;      // server-relative request arrival
  uint64_t total_us = 0;
  TraceOutcome outcome = TraceOutcome::kRemotePlain;
  std::vector<TraceSpan> spans;

  // Prediction attribution (zero when the answer was demand-filled): the
  // mined CombinedQuery plan that cached the answer ahead of time, and the
  // transition-graph edge (prefetch_src → tmpl) that predicted it.
  // prefetch_src == 0 with a non-zero plan means the request's template
  // was a root (text-dependency) node of that plan.
  uint64_t prefetch_plan = 0;
  uint64_t prefetch_src = 0;
};

/// \brief Fixed-size ring of recent traces with no global lock: the writer
/// claims a slot with one fetch_add, and each slot is guarded by its own
/// one-word spin latch held only for a shared_ptr swap (a few ns), so
/// concurrent workers on different slots never serialise and a slow
/// /traces reader can only ever delay the one writer that wraps onto the
/// slot it is copying. Capacity is fixed at construction; the ring keeps
/// the most recent `capacity` traces.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Push(std::shared_ptr<const RequestTrace> trace);

  /// Most-recent-first copy of the retained traces. Under concurrent
  /// pushes the result is a per-slot-consistent snapshot (each element is
  /// a complete trace; the set may straddle a wrap).
  std::vector<std::shared_ptr<const RequestTrace>> Snapshot() const;

  size_t capacity() const { return capacity_; }
  /// Total traces ever pushed (>= capacity once the ring has wrapped).
  uint64_t total_pushed() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    // 0 = free, 1 = held. mutable so the const Snapshot() can latch.
    mutable std::atomic<uint32_t> latch{0};
    std::shared_ptr<const RequestTrace> trace;  // guarded by latch
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_TRACE_H_
