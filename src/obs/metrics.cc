#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <mutex>

namespace chrono::obs {

// ---------------------------------------------------------------------------
// HistogramSnapshot

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation, 1-based.
  double rank = q * static_cast<double>(count);
  if (rank < 1) rank = 1;
  uint64_t prev_cumulative = 0;
  double prev_bound = 0;
  for (const Bucket& b : buckets) {
    if (static_cast<double>(b.cumulative) >= rank) {
      uint64_t in_bucket = b.cumulative - prev_cumulative;
      double upper = b.upper_bound;
      if (!std::isfinite(upper)) {
        // Everything beyond the largest finite bound: report that bound.
        return prev_bound;
      }
      if (in_bucket == 0) return upper;
      double frac = (rank - static_cast<double>(prev_cumulative)) /
                    static_cast<double>(in_bucket);
      return prev_bound + (upper - prev_bound) * frac;
    }
    prev_cumulative = b.cumulative;
    prev_bound = b.upper_bound;
  }
  return prev_bound;
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(size_t stripes) {
  if (stripes == 0) stripes = 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  int width = 64 - std::countl_zero(value);  // bit width, > kSubBits here
  int shift = width - kSubBits;
  // Top kSubBits bits of the value; in [kHalf, kSubBuckets).
  uint64_t top = value >> shift;
  return kSubBuckets + (shift - 1) * kHalf +
         static_cast<int>(top - static_cast<uint64_t>(kHalf));
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  int shift = (index - kSubBuckets) / kHalf + 1;
  int offset = (index - kSubBuckets) % kHalf;
  uint64_t lower = (static_cast<uint64_t>(kHalf + offset)) << shift;
  uint64_t width = 1ull << shift;
  return lower + width - 1;
}

Histogram::Stripe& Histogram::StripeForThisThread() {
  // Round-robin stripe assignment, fixed per thread on first use. The
  // thread-local holds a per-thread counter value, not a pointer, so one
  // thread touching many histograms still spreads across stripes.
  static thread_local size_t tls_slot =
      []() {
        static std::atomic<size_t> next{0};
        return next.fetch_add(1, std::memory_order_relaxed);
      }();
  return *stripes_[tls_slot % stripes_.size()];
}

void Histogram::Record(uint64_t value) {
  Stripe& s = StripeForThisThread();
  s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  uint64_t merged[kBucketCount] = {};
  HistogramSnapshot out;
  for (const auto& stripe : stripes_) {
    out.sum += static_cast<double>(stripe->sum.load(std::memory_order_relaxed));
    for (int i = 0; i < kBucketCount; ++i) {
      merged[i] += stripe->buckets[i].load(std::memory_order_relaxed);
    }
  }
  // Emit only buckets where the cumulative count advances, plus the +Inf
  // terminal bucket; ~500 mostly-empty buckets would bloat the exposition.
  // Before each non-empty bucket that follows a gap, emit its true lower
  // edge as an anchor (same cumulative as the gap) — Percentile() and
  // Prometheus's histogram_quantile both interpolate from the previous
  // emitted bound, so without the anchor a sparse histogram would smear
  // observations down across the skipped empty buckets.
  uint64_t cumulative = 0;
  int last_emitted = -1;
  for (int i = 0; i < kBucketCount; ++i) {
    if (merged[i] == 0) continue;
    if (i > 0 && last_emitted != i - 1) {
      out.buckets.push_back(
          {static_cast<double>(BucketUpperBound(i - 1)), cumulative});
    }
    cumulative += merged[i];
    out.buckets.push_back(
        {static_cast<double>(BucketUpperBound(i)), cumulative});
    last_emitted = i;
  }
  out.count = cumulative;  // by construction, equals the +Inf bucket
  out.buckets.push_back(
      {std::numeric_limits<double>::infinity(), cumulative});
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

std::string MetricsRegistry::Key(const std::string& name,
                                 const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      const std::string& help,
                                                      Labels labels,
                                                      MetricType type) {
  std::sort(labels.begin(), labels.end());
  const std::string key = Key(name, labels);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      assert(it->second->type == type &&
             "metric re-registered with another type");
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(key);  // re-check under the exclusive lock
  if (it != index_.end()) {
    assert(it->second->type == type &&
           "metric re-registered with another type");
    return it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(labels);
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  index_.emplace(key, entries_.back().get());
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help, Labels labels) {
  return FindOrCreate(name, help, std::move(labels), MetricType::kCounter)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help, Labels labels) {
  return FindOrCreate(name, help, std::move(labels), MetricType::kGauge)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         Labels labels) {
  return FindOrCreate(name, help, std::move(labels), MetricType::kHistogram)
      ->histogram.get();
}

void MetricsRegistry::RegisterCallbackCounter(const std::string& name,
                                              const std::string& help,
                                              Labels labels,
                                              std::function<double()> fn,
                                              const void* owner) {
  Entry* e = FindOrCreate(name, help, std::move(labels), MetricType::kCounter);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  e->callback = std::move(fn);
  e->owner = owner;
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help,
                                            Labels labels,
                                            std::function<double()> fn,
                                            const void* owner) {
  Entry* e = FindOrCreate(name, help, std::move(labels), MetricType::kGauge);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  e->callback = std::move(fn);
  e->owner = owner;
}

void MetricsRegistry::UnregisterCallbacksOwnedBy(const void* owner) {
  if (owner == nullptr) return;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (auto& e : entries_) {
    if (e->owner == owner) {
      e->callback = nullptr;
      e->owner = nullptr;
    }
  }
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot out;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    out.metrics.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricSnapshot m;
      m.name = e->name;
      m.help = e->help;
      m.labels = e->labels;
      m.type = e->type;
      if (e->callback) {
        m.value = e->callback();
      } else {
        switch (e->type) {
          case MetricType::kCounter:
            m.value = static_cast<double>(e->counter->value());
            break;
          case MetricType::kGauge:
            m.value = e->gauge->value();
            break;
          case MetricType::kHistogram:
            m.histogram = e->histogram->Snapshot();
            break;
        }
      }
      out.metrics.push_back(std::move(m));
    }
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

size_t MetricsRegistry::metric_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

const MetricSnapshot* RegistrySnapshot::Find(const std::string& name,
                                             const Labels& labels) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name != name) continue;
    if (!labels.empty() && m.labels != labels) continue;
    return &m;
  }
  return nullptr;
}

}  // namespace chrono::obs
