#ifndef CHRONOCACHE_OBS_JOURNAL_H_
#define CHRONOCACHE_OBS_JOURNAL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"

namespace chrono::obs {

/// \brief What one journal record describes. The journal captures the full
/// lifecycle of every prefetch — plan mined → combined query issued →
/// rows/bytes fetched → entries installed → each entry used /
/// evicted-unused / invalidated-by-write — alongside request outcomes, so
/// the PrefetchAudit can reconstruct per-plan cost/benefit offline.
enum class JournalEventType : uint8_t {
  kPlanMined = 1,     // a combined plan became ready (tmpl = trigger)
  kCombinedIssued,    // combined query sent to the database
  kCombinedFetched,   // combined response arrived (flags bit0 = ok)
  kEntryInstalled,    // one split slice installed in the result cache
  kEntryUsed,         // first demand hit on an installed entry
  kEntryEvicted,      // LRU/replace eviction (flags bit0 = was used)
  kEntryInvalidated,  // removed as stale after a write (flags bit0 = used)
  kRequest,           // one served client statement (flags = outcome)
  kBackendRetry,      // demand read backing off before another attempt
  kBackendTimeout,    // remote call abandoned at its deadline budget
  kBreakerTransition, // circuit breaker changed state (a = to, b = from)
  kStaleServe,        // demand fetch failed; served a stale cached entry
  kShed,              // best-effort work shed (a = shed kind)
  kBackendCoalesced,  // demand miss joined another thread's in-flight fetch
  kWireRequest,       // one request answered over the TCP wire frontend
  kShedQueue,         // overload control dropped work (a = shed reason)
  kDeadlineExpired,   // request expired in queue; rejected unexecuted
  kBrownoutTransition, // brownout ladder stepped (a = to, b = from)
};

const char* JournalEventTypeName(JournalEventType type);

/// Flag bits shared by the entry-lifecycle events.
inline constexpr uint8_t kJournalFlagUsed = 1u;  // entry served >= 1 hit
inline constexpr uint8_t kJournalFlagOk = 1u;    // kCombinedFetched success
/// kEntryEvicted reason, stored in flags bits 1-2.
inline constexpr uint8_t kJournalEvictCapacity = 0u << 1;
inline constexpr uint8_t kJournalEvictReplaced = 1u << 1;
/// kRequest: the low flag bits hold the TraceOutcome; this bit marks an
/// event whose stage durations are not wall-clock µs (the simulator
/// journals virtual time and zero latencies) so latency digests skip it.
inline constexpr uint8_t kJournalFlagNoLatency = 1u << 6;
/// kBackendTimeout: set when the abandoned call was a write.
inline constexpr uint8_t kJournalFlagWrite = 1u << 1;

/// kShed payload `a`: why best-effort work was dropped.
inline constexpr uint64_t kShedQueueFull = 0;       // pool queue saturated
inline constexpr uint64_t kShedBreakerUnhealthy = 1; // breaker not closed

/// kShedQueue payload `a`: what the overload ladder dropped (§17).
inline constexpr uint64_t kOverloadShedPrefetch = 0;  // brownout ≥ 1
inline constexpr uint64_t kOverloadShedPipeline = 1;  // brownout ≥ 2
inline constexpr uint64_t kOverloadShedAdmission = 2; // brownout ≥ 3
/// kDeadlineExpired flags bit1: the rejection happened during shutdown
/// drain rather than live serving.
inline constexpr uint8_t kJournalFlagDrain = 1u << 1;
/// kRequest flags bit5: the request carried a client deadline that had
/// already expired when execution started — the §17 invariant is that
/// this never happens (expired work is rejected at dequeue), so the audit
/// reports it as a violation counter that must stay zero.
inline constexpr uint8_t kJournalFlagLate = 1u << 5;

/// \brief One fixed-size binary journal record. Payload fields `a`/`b`/`c`
/// are typed per event (see DESIGN.md §10 for the full schema):
///
///   kPlanMined       a = plan slot count
///   kCombinedIssued  (no payload)
///   kCombinedFetched a = rows scanned, b = result bytes, c = db round µs
///   kEntryInstalled  a = entry bytes
///   kEntryUsed       a = entry bytes, b = time-to-first-use µs
///   kEntryEvicted    a = entry bytes, b = resident µs
///   kEntryInvalidated a = entry bytes, b = resident µs
///   kRequest         a = analyze µs | cache-lookup µs << 32
///                    b = learn/combine µs | db-execute µs << 32
///                    c = split/decode µs | total µs << 32
///   kBackendRetry    a = attempts made so far, b = backoff µs,
///                    c = deadline remaining µs (0 = unlimited)
///   kBackendTimeout  a = attempt budget µs (flags bit1 = write)
///   kBreakerTransition a = new state, b = old state
///                      (net::CircuitBreaker::State numeric values)
///   kStaleServe      a = entry age µs, b = allowed bound µs
///   kShed            a = shed kind (kShedQueueFull / kShedBreakerUnhealthy)
///   kBackendCoalesced a = waiters already parked on the leader's fetch
///                     (flags bit0 = the leader's call succeeded)
///   kWireRequest     a = wire latency µs (frame decoded -> response
///                    queued), b = response frame bytes
///                    (flags bit0 = request succeeded)
///   kShedQueue       a = shed reason (kOverloadShed*), b = brownout
///                    level at the time, c = retry-after hint ms (0 none)
///   kDeadlineExpired a = µs past the deadline at dequeue, b = deadline
///                    budget ms the client sent
///                    (flags bit1 = rejected during shutdown drain)
///   kBrownoutTransition a = new level, b = old level, c = queue-wait
///                    p99 µs that drove the step
///
/// `plan`/`src`/`tmpl` carry prefetch attribution: the combined-plan id,
/// the transition-graph edge source template (0 = plan root), and the
/// entry/request template. All zero when not applicable.
struct JournalEvent {
  uint64_t ts_us = 0;  // journal-relative µs (sim passes virtual time)
  uint64_t plan = 0;
  uint64_t src = 0;
  uint64_t tmpl = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint32_t client = 0;
  JournalEventType type = JournalEventType::kRequest;
  uint8_t flags = 0;
  uint16_t pad = 0;
};
static_assert(sizeof(JournalEvent) == 64, "journal record is one cache line");

/// Packs/unpacks the two 32-bit stage durations of a kRequest payload word.
inline uint64_t PackDurations(uint64_t lo_us, uint64_t hi_us) {
  auto clamp = [](uint64_t v) {
    return v > 0xffffffffull ? 0xffffffffull : v;
  };
  return clamp(lo_us) | (clamp(hi_us) << 32);
}
inline uint32_t UnpackLo(uint64_t packed) {
  return static_cast<uint32_t>(packed & 0xffffffffull);
}
inline uint32_t UnpackHi(uint64_t packed) {
  return static_cast<uint32_t>(packed >> 32);
}

/// \brief Consumer of drained journal events. OnEvents is only ever called
/// from one thread at a time (the drainer, or whoever calls Drain(), under
/// the journal's drain mutex), so sinks need no internal synchronisation
/// against each other — only against their own readers.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual void OnEvents(const JournalEvent* events, size_t count) = 0;
};

/// \brief Always-on, lock-free binary event journal. Each recording thread
/// owns a fixed-size SPSC ring buffer; a background drainer thread flushes
/// the rings into the attached sinks every few milliseconds. The hot path
/// (Record) is a handful of relaxed/release atomics and one 64-byte copy —
/// it never blocks, never allocates after the thread's first event, and
/// when a ring is full the event is *dropped and counted*, not waited on.
///
/// Accounting invariant (asserted by the contention tests): once Stop()
/// (or the destructor) has run the final drain,
///   events_recorded() == events_drained()   and
///   Record() attempts == events_recorded() + events_dropped()
/// hold exactly — a drop never consumes a ring slot.
///
/// Lock order: the registration mutex (first event of a new thread) and
/// the drain mutex are leaf locks below everything in the server — Record
/// may be called while a cache-shard mutex is held (eviction callbacks),
/// and the drainer calls sinks with no journal-external lock held.
class EventJournal {
 public:
  struct Options {
    /// Per-thread ring capacity in events (rounded up to a power of two).
    size_t buffer_events = 8192;
    /// Drainer wake-up cadence. 0 disables the background thread; the
    /// owner must then call Drain() itself (tests do).
    uint64_t drain_interval_ms = 5;
  };

  EventJournal();
  explicit EventJournal(Options options);
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Attaches a sink; safe at any time (the next drain cycle sees it).
  /// The sink must outlive the journal or be detached via RemoveSink.
  void AddSink(JournalSink* sink);
  void RemoveSink(JournalSink* sink);

  /// Records one event. `event.ts_us == 0` is stamped with the journal's
  /// own monotonic clock (µs since construction); a non-zero value is kept
  /// verbatim so the simulator can journal virtual time.
  void Record(JournalEvent event);

  /// Drains every thread buffer into the sinks now; returns the number of
  /// events delivered. Callable from any thread (serialised internally);
  /// used by tests and for a final flush before reading results.
  size_t Drain();

  /// Stops the drainer thread after a final drain. Idempotent; the
  /// destructor calls it. Record() after Stop() still works (events wait
  /// for a manual Drain()).
  void Stop();

  uint64_t events_recorded() const;  // accepted into a ring
  uint64_t events_dropped() const;   // rejected: ring full
  uint64_t events_drained() const {
    return drained_.load(std::memory_order_relaxed);
  }
  size_t buffer_count() const;

 private:
  /// One thread's SPSC ring: the owning thread writes head, the drainer
  /// writes tail. Writer and drainer fields sit on separate cache lines.
  struct alignas(64) Buffer {
    explicit Buffer(size_t capacity)
        : mask(capacity - 1), slots(capacity) {}
    const uint64_t mask;
    std::atomic<uint64_t> head{0};     // writer-owned
    std::atomic<uint64_t> dropped{0};  // writer-owned
    alignas(64) std::atomic<uint64_t> tail{0};  // drainer-owned
    std::vector<JournalEvent> slots;
  };

  Buffer* BufferForThisThread();
  void DrainLoop();

  const size_t capacity_;  // power of two
  const uint64_t drain_interval_ms_;
  const uint64_t generation_;  // distinguishes journals for the TLS cache
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex register_mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::map<std::thread::id, Buffer*> by_thread_;

  std::mutex sinks_mutex_;
  std::vector<JournalSink*> sinks_;

  std::mutex drain_mutex_;  // serialises Drain() bodies
  std::vector<JournalEvent> scratch_;  // guarded by drain_mutex_
  std::atomic<uint64_t> drained_{0};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread drainer_;
};

// ---------------------------------------------------------------------------
// Binary journal persistence (serve_bench --journal-out, tools/chrono_audit)

/// 16-byte file header followed by raw JournalEvent records.
struct JournalFileHeader {
  char magic[4] = {'C', 'H', 'R', 'J'};
  uint32_t version = 1;
  uint32_t event_size = sizeof(JournalEvent);
  uint32_t reserved = 0;
};

/// \brief Sink appending drained events to a binary journal file. Writes
/// happen on the drainer thread; Flush()/the destructor make the file
/// complete for offline analysis.
class JournalFileSink : public JournalSink {
 public:
  /// Opens (truncates) `path` and writes the header; null on I/O failure.
  static std::unique_ptr<JournalFileSink> Open(const std::string& path);
  ~JournalFileSink() override;

  void OnEvents(const JournalEvent* events, size_t count) override;
  void Flush();

  uint64_t events_written() const { return written_; }
  const std::string& path() const { return path_; }

 private:
  JournalFileSink(FILE* file, std::string path);
  FILE* file_;
  std::string path_;
  uint64_t written_ = 0;
};

/// Reads a journal file produced by JournalFileSink; validates the header
/// and record framing (a truncated trailing record is an error).
Result<std::vector<JournalEvent>> ReadJournalFile(const std::string& path);

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_JOURNAL_H_
