#include "obs/stats_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/socket_util.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/threads.h"

namespace chrono::obs {

namespace {

void WriteAll(int fd, const std::string& data) {
  net::SendAll(fd, data.data(), data.size());  // peer gone: nothing to do
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Value of `key` in an RFC-3986-ish query string ("a=1&b=2"); empty when
/// absent. Values are used verbatim — the endpoints only accept numbers
/// and enum names, so percent-decoding is deliberately out of scope.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

}  // namespace

StatsServer::StatsServer(const MetricsRegistry* registry,
                         const TraceRing* traces, const PrefetchAudit* audit,
                         const TailReservoir* tail,
                         const TimeSeriesRing* timeseries)
    : registry_(registry),
      traces_(traces),
      audit_(audit),
      tail_(tail),
      timeseries_(timeseries) {}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("stats server already running");
  }
  Result<int> fd = net::ListenTcp("127.0.0.1", port, /*backlog=*/8, &port_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  started_us_ = MonotonicMicros();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void StatsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Unblock accept(): shutdown + close the listening socket.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
  port_ = 0;
}

void StatsServer::Serve() {
  ThreadLease lease(ThreadRole::kStats, "chrono-stats");
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listening socket is gone
    }
    // A scraper that sends nothing — or stops reading its response —
    // should not wedge the accept loop: bound both socket directions.
    net::SetRecvTimeoutMs(fd, io_timeout_ms_);
    net::SetSendTimeoutMs(fd, io_timeout_ms_);
    HandleConnection(fd);
    ::close(fd);
  }
}

void StatsServer::HandleConnection(int fd) {
  char buf[2048];
  ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  // Request line: METHOD SP PATH SP VERSION.
  std::string request(buf);
  size_t line_end = request.find("\r\n");
  std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                              "malformed request line\n"));
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query_string;
  size_t query = path.find('?');
  if (query != std::string::npos) {
    query_string = path.substr(query + 1);
    path = path.substr(0, query);
  }
  if (method != "GET") {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n"));
    return;
  }

  served_.fetch_add(1, std::memory_order_relaxed);
  if (path == "/metrics") {
    WriteAll(fd, HttpResponse(200, "OK",
                              "text/plain; version=0.0.4; charset=utf-8",
                              ToPrometheusText(registry_->Snapshot())));
  } else if (path == "/metrics.json") {
    WriteAll(fd, HttpResponse(200, "OK", "application/json",
                              ToJson(registry_->Snapshot())));
  } else if (path == "/traces") {
    std::vector<std::shared_ptr<const RequestTrace>> snapshot;
    if (traces_ != nullptr) snapshot = traces_->Snapshot();
    std::string outcome_name = QueryParam(query_string, "outcome");
    if (!outcome_name.empty()) {
      TraceOutcome wanted;
      if (!ParseTraceOutcome(outcome_name, &wanted)) {
        WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                                  "unknown outcome '" + outcome_name +
                                      "'\n"));
        return;
      }
      snapshot.erase(std::remove_if(snapshot.begin(), snapshot.end(),
                                    [&](const auto& t) {
                                      return t == nullptr ||
                                             t->outcome != wanted;
                                    }),
                     snapshot.end());
    }
    std::string n_text = QueryParam(query_string, "n");
    if (!n_text.empty()) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(n_text.c_str(), &end, 10);
      if (end == n_text.c_str() || *end != '\0') {
        WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                                  "n must be a non-negative integer\n"));
        return;
      }
      if (snapshot.size() > n) snapshot.resize(n);
    }
    WriteAll(fd, HttpResponse(200, "OK", "application/json",
                              TracesToJson(snapshot)));
  } else if (path == "/tail") {
    std::string body =
        tail_ == nullptr
            ? std::string("{\"offered\":0,\"admitted\":0,\"traces\":[]}")
            : TailToJson(tail_->Snapshot(), tail_->offered(),
                         tail_->admitted());
    WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
  } else if (path == "/timeseries") {
    std::string body = timeseries_ == nullptr
                           ? std::string("{\"samples\":[]}")
                           : timeseries_->ToJson();
    WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
  } else if (path == "/traces.chrome") {
    // Recency ring + tail reservoir merged (dedup by id): a Perfetto load
    // sees both the recent steady state and the retained outliers.
    std::vector<std::shared_ptr<const RequestTrace>> merged;
    if (traces_ != nullptr) merged = traces_->Snapshot();
    if (tail_ != nullptr) {
      std::set<uint64_t> seen;
      for (const auto& t : merged) {
        if (t != nullptr) seen.insert(t->id);
      }
      for (auto& t : tail_->Snapshot()) {
        if (seen.insert(t->id).second) merged.push_back(std::move(t));
      }
    }
    WriteAll(fd, HttpResponse(200, "OK", "application/json",
                              TracesToChromeJson(merged)));
  } else if (path == "/prefetch") {
    std::string body =
        audit_ == nullptr
            ? std::string("{\"enabled\":false}")
            : PrefetchAuditJson(audit_->snapshot());
    WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
  } else if (path == "/wire") {
    std::string body =
        wire_ ? wire_() : std::string("{\"enabled\":false}");
    WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
  } else if (path == "/healthz") {
    uint64_t uptime_us = MonotonicMicros() - started_us_;
    Health health;
    if (health_) health = health_();
    std::string body = "{\"status\":\"";
    body += health.ok ? "ok" : "degraded";
    body += "\"";
    if (!health.ok) {
      // Reasons are fixed internal strings; no JSON escaping needed.
      body += ",\"reason\":\"" + health.reason + "\"";
    }
    body += ",\"uptime_seconds\":" +
            std::to_string(static_cast<double>(uptime_us) / 1e6) +
            ",\"requests_served\":" +
            std::to_string(served_.load(std::memory_order_relaxed)) + "}";
    if (health.ok) {
      WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
    } else {
      WriteAll(fd, HttpResponse(503, "Service Unavailable",
                                "application/json", body));
    }
  } else if (path == "/threads") {
    WriteAll(fd, HttpResponse(200, "OK", "application/json",
                              ThreadRegistry::Instance().ThreadsJson()));
  } else if (path == "/contention") {
    std::string body =
        contention_ ? contention_() : std::string("{\"enabled\":false}");
    WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
  } else if (path == "/profile") {
    if (profiler_ == nullptr) {
      WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                                "no profiler attached to this node\n"));
      return;
    }
    // Window bounds keep a fat-fingered scrape from pinning SIGPROF
    // delivery for minutes; the accept thread deliberately blocks for the
    // whole window, so concurrent scrapes can't start a second profile.
    long seconds = 2;
    long hz = 99;
    std::string text = QueryParam(query_string, "seconds");
    if (!text.empty()) {
      char* end = nullptr;
      seconds = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || seconds < 1 ||
          seconds > 60) {
        WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                                  "seconds must be in [1, 60]\n"));
        return;
      }
    }
    text = QueryParam(query_string, "hz");
    if (!text.empty()) {
      char* end = nullptr;
      hz = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || hz < 1 || hz > 1000) {
        WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                                  "hz must be in [1, 1000]\n"));
        return;
      }
    }
    std::string format = QueryParam(query_string, "format");
    if (format.empty()) format = "collapsed";
    if (format != "collapsed" && format != "json") {
      WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                                "format must be collapsed or json\n"));
      return;
    }
    Status started = profiler_->Start(static_cast<int>(hz));
    if (!started.ok()) {
      WriteAll(fd, HttpResponse(409, "Conflict", "text/plain",
                                started.message() + "\n"));
      return;
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    profiler_->Stop();
    if (format == "json") {
      WriteAll(fd, HttpResponse(200, "OK", "application/json",
                                profiler_->ProfileJson()));
    } else {
      WriteAll(fd, HttpResponse(200, "OK", "text/plain; charset=utf-8",
                                profiler_->CollapsedStacks()));
    }
  } else {
    WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                              "try /metrics, /metrics.json, /traces, "
                              "/traces.chrome, /tail, /timeseries, "
                              "/prefetch, /wire, /threads, /contention, "
                              "/profile or /healthz\n"));
  }
}

}  // namespace chrono::obs
