#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "obs/audit.h"
#include "obs/export.h"

namespace chrono::obs {

namespace {

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing useful to do
    off += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StatsServer::StatsServer(const MetricsRegistry* registry,
                         const TraceRing* traces, const PrefetchAudit* audit)
    : registry_(registry), traces_(traces), audit_(audit) {}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("stats server already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind port " + std::to_string(port) + ": " + err);
  }
  if (::listen(fd, 8) < 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  started_us_ = MonotonicMicros();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void StatsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // Unblock accept(): shutdown + close the listening socket.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
  port_ = 0;
}

void StatsServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listening socket is gone
    }
    // A scraper that sends nothing — or stops reading its response —
    // should not wedge the accept loop: bound both socket directions.
    timeval tv{};
    tv.tv_sec = io_timeout_ms_ / 1000;
    tv.tv_usec = (io_timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    HandleConnection(fd);
    ::close(fd);
  }
}

void StatsServer::HandleConnection(int fd) {
  char buf[2048];
  ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  // Request line: METHOD SP PATH SP VERSION.
  std::string request(buf);
  size_t line_end = request.find("\r\n");
  std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                              "malformed request line\n"));
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t query = path.find('?');
  if (query != std::string::npos) path = path.substr(0, query);
  if (method != "GET") {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n"));
    return;
  }

  served_.fetch_add(1, std::memory_order_relaxed);
  if (path == "/metrics") {
    WriteAll(fd, HttpResponse(200, "OK",
                              "text/plain; version=0.0.4; charset=utf-8",
                              ToPrometheusText(registry_->Snapshot())));
  } else if (path == "/metrics.json") {
    WriteAll(fd, HttpResponse(200, "OK", "application/json",
                              ToJson(registry_->Snapshot())));
  } else if (path == "/traces") {
    std::string body =
        traces_ == nullptr
            ? std::string("{\"traces\":[]}")
            : TracesToJson(traces_->Snapshot());
    WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
  } else if (path == "/prefetch") {
    std::string body =
        audit_ == nullptr
            ? std::string("{\"enabled\":false}")
            : PrefetchAuditJson(audit_->snapshot());
    WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
  } else if (path == "/healthz") {
    uint64_t uptime_us = MonotonicMicros() - started_us_;
    Health health;
    if (health_) health = health_();
    std::string body = "{\"status\":\"";
    body += health.ok ? "ok" : "degraded";
    body += "\"";
    if (!health.ok) {
      // Reasons are fixed internal strings; no JSON escaping needed.
      body += ",\"reason\":\"" + health.reason + "\"";
    }
    body += ",\"uptime_seconds\":" +
            std::to_string(static_cast<double>(uptime_us) / 1e6) +
            ",\"requests_served\":" +
            std::to_string(served_.load(std::memory_order_relaxed)) + "}";
    if (health.ok) {
      WriteAll(fd, HttpResponse(200, "OK", "application/json", body));
    } else {
      WriteAll(fd, HttpResponse(503, "Service Unavailable",
                                "application/json", body));
    }
  } else {
    WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                              "try /metrics, /metrics.json, /traces, "
                              "/prefetch or /healthz\n"));
  }
}

}  // namespace chrono::obs
