#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

namespace chrono::obs {

namespace {

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Integral values print without a fraction so counter output is exact;
/// everything else uses shortest-round-trip-ish %g.
std::string FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string RenderLabels(const Labels& labels, const char* extra_key = nullptr,
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += std::string(extra_key) + "=\"" + EscapeLabelValue(extra_value) +
           "\"";
  }
  out += '}';
  return out;
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string ToPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  std::string current_family;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name != current_family) {
      current_family = m.name;
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " " + TypeName(m.type) + "\n";
    }
    if (m.type == MetricType::kHistogram) {
      for (const HistogramSnapshot::Bucket& b : m.histogram.buckets) {
        out += m.name + "_bucket" +
               RenderLabels(m.labels, "le", FormatValue(b.upper_bound)) + " " +
               FormatValue(static_cast<double>(b.cumulative)) + "\n";
      }
      out += m.name + "_sum" + RenderLabels(m.labels) + " " +
             FormatValue(m.histogram.sum) + "\n";
      out += m.name + "_count" + RenderLabels(m.labels) + " " +
             FormatValue(static_cast<double>(m.histogram.count)) + "\n";
    } else {
      out += m.name + RenderLabels(m.labels) + " " + FormatValue(m.value) +
             "\n";
    }
  }
  return out;
}

std::string ToJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + EscapeJson(m.name) + "\",\"type\":\"" +
           TypeName(m.type) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += "\"" + EscapeJson(k) + "\":\"" + EscapeJson(v) + "\"";
    }
    out += "}";
    if (m.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = m.histogram;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    ",\"count\":%" PRIu64
                    ",\"sum\":%.6g,\"mean\":%.6g,\"p50\":%.6g,\"p95\":%.6g,"
                    "\"p99\":%.6g,\"p999\":%.6g",
                    h.count, h.sum, h.Mean(), h.Percentile(0.50),
                    h.Percentile(0.95), h.Percentile(0.99),
                    h.Percentile(0.999));
      out += buf;
      out += ",\"buckets\":[";
      bool first_bucket = true;
      for (const HistogramSnapshot::Bucket& b : h.buckets) {
        if (!first_bucket) out += ',';
        first_bucket = false;
        if (std::isinf(b.upper_bound)) {
          std::snprintf(buf, sizeof(buf), "[\"+Inf\",%" PRIu64 "]",
                        b.cumulative);
        } else {
          std::snprintf(buf, sizeof(buf), "[%.0f,%" PRIu64 "]", b.upper_bound,
                        b.cumulative);
        }
        out += buf;
      }
      out += "]";
    } else {
      out += ",\"value\":" + FormatValue(m.value);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

/// The body of one trace object (no enclosing braces), shared between the
/// ring dump and the tail dossier so the two shapes cannot drift.
std::string TraceObjectBody(const RequestTrace& t) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "\"id\":%" PRIu64 ",\"client\":%" PRIu64
                ",\"template\":%" PRIu64 ",\"start_us\":%" PRIu64
                ",\"total_us\":%" PRIu64 ",\"outcome\":\"%s\"",
                t.id, t.client, t.tmpl, t.start_us, t.total_us,
                TraceOutcomeName(t.outcome));
  out += buf;
  out += ",\"sql\":\"" + EscapeJson(t.sql) + "\"";
  if (t.forced) out += ",\"forced\":true";
  if (t.prefetch_plan != 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"prefetch_plan\":%" PRIu64 ",\"prefetch_src\":%" PRIu64,
                  t.prefetch_plan, t.prefetch_src);
    out += buf;
  }
  out += ",\"spans\":[";
  bool first_span = true;
  for (const TraceSpan& s : t.spans) {
    if (!first_span) out += ',';
    first_span = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"stage\":\"%s\",\"start_us\":%" PRIu64
                  ",\"dur_us\":%" PRIu64 "}",
                  StageName(s.stage), s.start_us, s.dur_us);
    out += buf;
  }
  out += "]";
  if (!t.annotations.empty()) {
    out += ",\"annotations\":[";
    bool first_ann = true;
    for (const TraceAnnotation& a : t.annotations) {
      if (!first_ann) out += ',';
      first_ann = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"kind\":\"%s\",\"at_us\":%" PRIu64
                    ",\"value\":%" PRIu64 "}",
                    AnnotationKindName(a.kind), a.at_us, a.value);
      out += buf;
    }
    out += "]";
  }
  return out;
}

}  // namespace

std::string TracesToJson(
    const std::vector<std::shared_ptr<const RequestTrace>>& traces) {
  std::string out = "{\"traces\":[";
  bool first = true;
  for (const auto& t : traces) {
    if (t == nullptr) continue;
    if (!first) out += ',';
    first = false;
    out += "{" + TraceObjectBody(*t) + "}";
  }
  out += "]}";
  return out;
}

std::string TracesToChromeJson(
    const std::vector<std::shared_ptr<const RequestTrace>>& traces) {
  std::string out = "{\"traceEvents\":[";
  char buf[512];
  bool first = true;
  auto emit = [&](const char* text) {
    if (!first) out += ',';
    first = false;
    out += text;
  };
  std::set<uint64_t> named_pids;
  for (const auto& t : traces) {
    if (t == nullptr) continue;
    // One process row per client, named once so Perfetto groups requests
    // by the connection that issued them.
    if (named_pids.insert(t->client).second) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu64
                    ",\"tid\":0,\"args\":{\"name\":\"client %" PRIu64 "\"}}",
                    t->client, t->client);
      emit(buf);
    }
    // The request itself: an enclosing span named by its outcome, args
    // carrying the identifying detail a tail investigation needs.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"request\",\"ph\":\"X\","
                  "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 ",\"pid\":%" PRIu64
                  ",\"tid\":%" PRIu64 ",\"args\":{\"trace_id\":%" PRIu64
                  ",\"template\":%" PRIu64 ",\"sql\":\"",
                  TraceOutcomeName(t->outcome), t->start_us, t->total_us,
                  t->client, t->id, t->id, t->tmpl);
    out += (first ? "" : ",");
    first = false;
    out += buf;
    out += EscapeJson(t->sql) + "\"}}";
    for (const TraceSpan& s : t->spans) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"stage\",\"ph\":\"X\","
                    "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 ",\"pid\":%" PRIu64
                    ",\"tid\":%" PRIu64 "}",
                    StageName(s.stage), t->start_us + s.start_us, s.dur_us,
                    t->client, t->id);
      emit(buf);
    }
    for (const TraceAnnotation& a : t->annotations) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"cat\":\"backend\",\"ph\":\"i\","
                    "\"ts\":%" PRIu64 ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64
                    ",\"s\":\"t\",\"args\":{\"value\":%" PRIu64 "}}",
                    AnnotationKindName(a.kind), t->start_us + a.at_us,
                    t->client, t->id, a.value);
      emit(buf);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TailToJson(
    const std::vector<std::shared_ptr<const RequestTrace>>& traces,
    uint64_t offered, uint64_t admitted) {
  char buf[128];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"offered\":%" PRIu64 ",\"admitted\":%" PRIu64 ",",
                offered, admitted);
  out += buf;
  out += "\"traces\":[";
  bool first = true;
  for (const auto& t : traces) {
    if (t == nullptr) continue;
    if (!first) out += ',';
    first = false;
    out += "{" + TraceObjectBody(*t);
    // Exemplar link: the chrono_request_latency_ns bucket (le bound, in
    // ns — the unit that family records) this trace's total landed in.
    int bucket = Histogram::BucketIndex(t->total_us * 1000);
    uint64_t le = Histogram::BucketUpperBound(bucket);
    std::snprintf(buf, sizeof(buf),
                  ",\"exemplar\":{\"family\":\"chrono_request_latency_ns\","
                  "\"le\":%" PRIu64 "}}",
                  le);
    out += buf;
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Validator

namespace {

struct ParsedSample {
  std::string name;
  Labels labels;  // in file order, le included
  double value = 0;
  size_t line_no = 0;
};

Status Fail(size_t line_no, const std::string& msg) {
  return Status::InvalidArgument("prometheus text line " +
                                 std::to_string(line_no) + ": " + msg);
}

/// Parses `name{k="v",...} value` / `name value`. Returns false on
/// malformed syntax with `error` set.
bool ParseSample(const std::string& line, size_t line_no, ParsedSample* out,
                 std::string* error) {
  out->line_no = line_no;
  size_t pos = 0;
  while (pos < line.size() && (std::isalnum(line[pos]) || line[pos] == '_' ||
                               line[pos] == ':')) {
    ++pos;
  }
  if (pos == 0) {
    *error = "sample does not start with a metric name";
    return false;
  }
  out->name = line.substr(0, pos);
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      size_t eq = line.find('=', pos);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        *error = "malformed label (expected key=\"value\")";
        return false;
      }
      std::string key = line.substr(pos, eq - pos);
      std::string value;
      size_t i = eq + 2;
      bool closed = false;
      for (; i < line.size(); ++i) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          char next = line[++i];
          value += next == 'n' ? '\n' : next;
        } else if (line[i] == '"') {
          closed = true;
          ++i;
          break;
        } else {
          value += line[i];
        }
      }
      if (!closed) {
        *error = "unterminated label value";
        return false;
      }
      out->labels.emplace_back(std::move(key), std::move(value));
      pos = i;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') {
      *error = "unterminated label set";
      return false;
    }
    ++pos;
  }
  while (pos < line.size() && std::isspace(line[pos])) ++pos;
  if (pos >= line.size()) {
    *error = "sample has no value";
    return false;
  }
  std::string value_text = line.substr(pos);
  // Trim a trailing timestamp if present (value [timestamp]).
  size_t space = value_text.find(' ');
  if (space != std::string::npos) value_text = value_text.substr(0, space);
  if (value_text == "+Inf") {
    out->value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (value_text == "-Inf") {
    out->value = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (value_text == "NaN") {
    out->value = std::nan("");
    return true;
  }
  char* end = nullptr;
  out->value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0') {
    *error = "value '" + value_text + "' is not a number";
    return false;
  }
  return true;
}

/// Strips `suffix` from `name` when present; empty string otherwise.
std::string StripSuffix(const std::string& name, const std::string& suffix) {
  if (name.size() <= suffix.size()) return "";
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return "";
  }
  return name.substr(0, name.size() - suffix.size());
}

std::string SeriesKey(const Labels& labels) {
  Labels sorted;
  for (const auto& l : labels) {
    if (l.first != "le") sorted.push_back(l);
  }
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& [k, v] : sorted) key += k + "\x1f" + v + "\x1e";
  return key;
}

}  // namespace

Status ValidatePrometheusText(const std::string& text) {
  std::map<std::string, std::string> family_type;  // name -> type
  std::set<std::string> family_help;
  // Families whose first sample has already streamed past: HELP/TYPE
  // arriving for one of these is out of order (promlint rule — Prometheus
  // requires the comment block to precede the family's samples).
  std::set<std::string> families_with_samples;
  struct HistSeries {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool has_sum = false;
    bool has_count = false;
    double count_value = 0;
    size_t line_no = 0;
  };
  // (family, series key) -> accumulated histogram state.
  std::map<std::pair<std::string, std::string>, HistSeries> histograms;
  size_t samples = 0;

  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type"; other comments ignored.
      if (line.rfind("# HELP ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t space = rest.find(' ');
        std::string name = rest.substr(0, space);
        if (name.empty()) return Fail(line_no, "HELP line without a name");
        if (families_with_samples.count(name) != 0) {
          return Fail(line_no, "HELP for family '" + name +
                                   "' after its first sample");
        }
        family_help.insert(name);
      } else if (line.rfind("# TYPE ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t space = rest.find(' ');
        if (space == std::string::npos) {
          return Fail(line_no, "TYPE line without a type");
        }
        std::string name = rest.substr(0, space);
        std::string type = rest.substr(space + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return Fail(line_no, "unknown metric type '" + type + "'");
        }
        if (family_type.count(name) != 0) {
          return Fail(line_no, "duplicate TYPE for family '" + name + "'");
        }
        if (families_with_samples.count(name) != 0) {
          return Fail(line_no, "TYPE for family '" + name +
                                   "' after its first sample");
        }
        if (type == "counter" && StripSuffix(name, "_total").empty()) {
          return Fail(line_no, "counter '" + name +
                                   "' must end in '_total'");
        }
        family_type[name] = type;
      }
      continue;
    }

    ParsedSample sample;
    std::string error;
    if (!ParseSample(line, line_no, &sample, &error)) {
      return Fail(line_no, error);
    }
    ++samples;

    // Resolve the family this sample belongs to (histogram suffixes fold
    // into their base family).
    std::string family = sample.name;
    std::string suffix;
    for (const char* s : {"_bucket", "_sum", "_count"}) {
      std::string base = StripSuffix(sample.name, s);
      if (!base.empty() && family_type.count(base) != 0 &&
          (family_type[base] == "histogram" ||
           family_type[base] == "summary")) {
        family = base;
        suffix = s;
        break;
      }
    }
    auto type_it = family_type.find(family);
    if (type_it == family_type.end()) {
      return Fail(line_no, "sample '" + sample.name +
                               "' has no preceding # TYPE line");
    }
    if (family_help.count(family) == 0) {
      return Fail(line_no, "sample '" + sample.name +
                               "' has no preceding # HELP line");
    }
    if (type_it->second == "histogram" && suffix.empty()) {
      return Fail(line_no, "histogram family '" + family +
                               "' has a bare sample '" + sample.name + "'");
    }
    families_with_samples.insert(family);

    if (type_it->second == "histogram") {
      HistSeries& series =
          histograms[{family, SeriesKey(sample.labels)}];
      series.line_no = line_no;
      if (suffix == "_bucket") {
        double le = std::nan("");
        for (const auto& [k, v] : sample.labels) {
          if (k != "le") continue;
          if (v == "+Inf") {
            le = std::numeric_limits<double>::infinity();
          } else {
            char* end = nullptr;
            le = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0') {
              return Fail(line_no, "bucket le '" + v + "' is not a number");
            }
          }
        }
        if (std::isnan(le)) {
          return Fail(line_no, "histogram bucket without an le label");
        }
        series.buckets.emplace_back(le, sample.value);
      } else if (suffix == "_sum") {
        series.has_sum = true;
      } else {
        series.has_count = true;
        series.count_value = sample.value;
      }
    }
  }

  if (samples == 0) {
    return Status::InvalidArgument("prometheus text: no samples");
  }

  for (const auto& [key, series] : histograms) {
    const std::string& family = key.first;
    if (series.buckets.empty()) {
      return Fail(series.line_no,
                  "histogram '" + family + "' has no _bucket samples");
    }
    double prev_le = -std::numeric_limits<double>::infinity();
    double prev_cumulative = -1;
    for (const auto& [le, cumulative] : series.buckets) {
      if (le <= prev_le) {
        return Fail(series.line_no, "histogram '" + family +
                                        "' bucket bounds not increasing");
      }
      if (cumulative < prev_cumulative) {
        return Fail(series.line_no,
                    "histogram '" + family +
                        "' cumulative bucket counts decrease");
      }
      prev_le = le;
      prev_cumulative = cumulative;
    }
    if (!std::isinf(series.buckets.back().first)) {
      return Fail(series.line_no, "histogram '" + family +
                                      "' missing terminal le=\"+Inf\" bucket");
    }
    if (!series.has_sum || !series.has_count) {
      return Fail(series.line_no,
                  "histogram '" + family + "' missing _sum or _count");
    }
    if (series.count_value != series.buckets.back().second) {
      return Fail(series.line_no, "histogram '" + family +
                                      "' _count disagrees with +Inf bucket");
    }
  }
  return Status::OK();
}

}  // namespace chrono::obs
