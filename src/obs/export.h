#ifndef CHRONOCACHE_OBS_EXPORT_H_
#define CHRONOCACHE_OBS_EXPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace chrono::obs {

/// Renders a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` per metric family, histograms as
/// cumulative `_bucket{le=...}` series with an `le="+Inf"` terminal bucket
/// plus `_sum` and `_count`. Output is deterministic for a given snapshot
/// (families sorted by name, then label set).
std::string ToPrometheusText(const RegistrySnapshot& snapshot);

/// Renders a registry snapshot as a JSON object:
/// {"metrics":[{"name":...,"type":...,"labels":{...},"value":...} |
///             {..., "count":N,"sum":S,"p50":...,"buckets":[[le,c],...]}]}
std::string ToJson(const RegistrySnapshot& snapshot);

/// Renders traces (as returned by TraceRing::Snapshot, most recent first)
/// as a JSON array of request objects with timed spans, backend-event
/// annotations and prediction attribution.
std::string TracesToJson(
    const std::vector<std::shared_ptr<const RequestTrace>>& traces);

/// Renders traces in the Chrome trace-event JSON format (the
/// {"traceEvents":[...]} envelope Perfetto and chrome://tracing load
/// directly): one complete "X" event per span on pid=client / tid=trace
/// id, the request itself as an enclosing span named by its outcome, and
/// each backend annotation as an instant ("i") event at the moment it
/// happened. Timestamps are absolute server-relative µs (trace start_us +
/// span offset) so traces from one node line up on a shared timeline.
std::string TracesToChromeJson(
    const std::vector<std::shared_ptr<const RequestTrace>>& traces);

/// Renders a tail-reservoir snapshot (slowest first) as JSON. Each entry
/// carries a histogram-exemplar link: the `le` bound of the
/// chrono_request_latency_ns bucket this trace's total latency lands in,
/// so a tail bucket in /metrics can be joined back to a concrete trace
/// id. `offered`/`admitted` are the reservoir's own counters.
std::string TailToJson(
    const std::vector<std::shared_ptr<const RequestTrace>>& traces,
    uint64_t offered, uint64_t admitted);

/// Structural validator for the Prometheus text format, used by the golden
/// tests and by tools/promlint (which CI runs against a live scrape).
/// Checks: every sample belongs to a `# HELP`-ed and `# TYPE`-ed family of
/// a known type; sample values parse as numbers; histogram families have
/// monotonically non-decreasing cumulative buckets ending in `le="+Inf"`,
/// and carry matching `_sum`/`_count` series.
Status ValidatePrometheusText(const std::string& text);

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_EXPORT_H_
