#ifndef CHRONOCACHE_OBS_BUILD_INFO_H_
#define CHRONOCACHE_OBS_BUILD_INFO_H_

#include <string>

#include "obs/metrics.h"

namespace chrono::obs {

/// Compile-time build identity (values injected by CMake onto
/// build_info.cc alone; "unknown"/"none" when absent).
struct BuildInfo {
  std::string version;
  std::string git_sha;
  std::string build_type;
  std::string sanitizer;
};
const BuildInfo& GetBuildInfo();

/// Registers the constant `chrono_build_info` gauge (value 1, identity as
/// labels — the standard Prometheus build-info idiom, promlint-clean) so
/// every scraped artifact is attributable to the binary that produced it.
/// Idempotent per registry.
void RegisterBuildInfo(MetricsRegistry* registry);

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_BUILD_INFO_H_
