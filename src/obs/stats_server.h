#ifndef CHRONOCACHE_OBS_STATS_SERVER_H_
#define CHRONOCACHE_OBS_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace chrono::obs {

class CpuProfiler;
class PrefetchAudit;

/// \brief Minimal POSIX-socket HTTP/1.0 endpoint for scraping a running
/// node: one accept thread serving requests sequentially (a scrape is a
/// few ms of formatting; Prometheus polls on the order of seconds).
///
///   GET /metrics       Prometheus text exposition of the registry
///   GET /metrics.json  JSON snapshot (same data, serve_bench --metrics-out)
///   GET /traces        recent RequestTraces as JSON, newest first;
///                      ?n=K limits the count, ?outcome=NAME filters
///                      (e.g. /traces?n=10&outcome=stale_hit)
///   GET /tail          tail-reservoir dossier (§15): slowest traces per
///                      window + forced retention, slowest first, each
///                      with its latency-histogram exemplar link
///   GET /timeseries    1 s samples of qps/hit-rate/p50/p99/... as JSON
///   GET /traces.chrome recency ring + tail reservoir merged, rendered as
///                      Chrome trace-event JSON (open in Perfetto)
///   GET /prefetch      prefetch-efficacy scoreboards as JSON (§10)
///   GET /wire          connection-frontend aggregates as JSON (§13):
///                      active/accepted/closed-by-{client,idle,error},
///                      bytes, p99 wire latency
///   GET /healthz       readiness: 200 when healthy, 503 with a reason
///                      while degraded (breaker open, stale-serving)
///   GET /threads       thread registry as JSON: every registered thread
///                      with its name, role and liveness (§16)
///   GET /contention    lock-site contention board as JSON, ranked by
///                      total wait time (§16)
///   GET /profile       on-demand CPU profile window (§16):
///                      ?seconds=N (1..60, default 2) &hz=M (1..1000,
///                      default 99) &format=collapsed|json. Blocks the
///                      accept thread for the window — deliberate: one
///                      scraper, one profile at a time — then returns
///                      collapsed stacks (flamegraph.pl-ready text) or
///                      the JSON document. 409 if a window is already
///                      running, 404 when no profiler is attached.
///
/// Off by default everywhere; serve_bench enables it with --stats-port.
/// The server reads the registry and ring through the same snapshot paths
/// tests use — it takes no server locks (DESIGN.md §9), so a slow scraper
/// can never stall the serving hot path. Both socket directions carry a
/// bounded timeout (set_io_timeout_ms) so a stalled peer cannot wedge the
/// accept loop.
class StatsServer {
 public:
  /// `registry` must outlive the server; `traces`, `audit`, `tail` and
  /// `timeseries` may be null (the corresponding endpoints then return
  /// empty documents).
  StatsServer(const MetricsRegistry* registry, const TraceRing* traces,
              const PrefetchAudit* audit = nullptr,
              const TailReservoir* tail = nullptr,
              const TimeSeriesRing* timeseries = nullptr);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  /// accept thread. Fails if already started or the bind fails.
  Status Start(int port);

  /// Stops the accept thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (useful with Start(0)); 0 when not running.
  int port() const { return port_; }
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Per-connection read/write timeout (SO_RCVTIMEO / SO_SNDTIMEO),
  /// default 2000 ms. Call before Start().
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }

  /// Node health as reported by /healthz: ok=false turns the endpoint into
  /// a 503 carrying `reason`, so external probes pull a degraded node out
  /// of rotation while it rides out a flaky backend.
  struct Health {
    bool ok = true;
    std::string reason;
  };
  using HealthCallback = std::function<Health()>;

  /// Installs the health source (e.g. ChronoServer breaker/stale state).
  /// Call before Start(); without one, /healthz always reports healthy.
  void SetHealthCallback(HealthCallback callback) {
    health_ = std::move(callback);
  }

  /// Installs the /wire document source (wire::WireServer::StatsJson).
  /// Call before Start(); without one, /wire reports {"enabled":false}.
  /// The callback must stay valid for the StatsServer's lifetime and be
  /// safe to call from the accept thread.
  using WireCallback = std::function<std::string()>;
  void SetWireCallback(WireCallback callback) { wire_ = std::move(callback); }

  /// Installs the /contention document source
  /// (ContentionRegistry::ContentionJson). Call before Start(); without
  /// one, /contention reports {"enabled":false}.
  using ContentionCallback = std::function<std::string()>;
  void SetContentionCallback(ContentionCallback callback) {
    contention_ = std::move(callback);
  }

  /// Attaches the CPU profiler driven by /profile. Call before Start();
  /// the profiler must outlive the server. Without one, /profile returns
  /// 404. The endpoint owns the window (Start/sleep/Stop) on the accept
  /// thread.
  void SetProfiler(CpuProfiler* profiler) { profiler_ = profiler; }

 private:
  void Serve();
  void HandleConnection(int fd);

  const MetricsRegistry* registry_;
  const TraceRing* traces_;
  const PrefetchAudit* audit_;
  const TailReservoir* tail_;
  const TimeSeriesRing* timeseries_;
  HealthCallback health_;
  WireCallback wire_;
  ContentionCallback contention_;
  CpuProfiler* profiler_ = nullptr;
  int io_timeout_ms_ = 2000;
  uint64_t started_us_ = 0;  // monotonic clock at Start()
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_STATS_SERVER_H_
