#ifndef CHRONOCACHE_OBS_CONTENTION_H_
#define CHRONOCACHE_OBS_CONTENTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace chrono::obs {

/// \brief Per-site lock telemetry (DESIGN.md §16): every instrumented
/// mutex is tagged with a LockSite whose wait/hold histograms and
/// contention counters live in the node's MetricsRegistry —
///   chrono_lock_acquisitions_total{site=...}
///   chrono_lock_contended_total{site=...}
///   chrono_lock_wait_ns{site=...}       (histogram)
///   chrono_lock_hold_ns{site=...}       (histogram)
/// so /metrics exports them for free and /contention ranks sites by wait
/// share. Sites are created once (get-or-create by name) and never freed.
///
/// Cost discipline: a disarmed site (ContentionRegistry::SetArmed(false),
/// serve_bench --no-lock-telemetry) reduces every TimedMutex operation to
/// ONE relaxed atomic load before the plain lock — the A/B'd fast path.
/// Armed, the uncontended path is a try_lock plus two lock-free Records.
class LockSite {
 public:
  const std::string& name() const { return name_; }

  /// One relaxed load — the entire disarmed fast-path cost.
  bool armed() const { return armed_->load(std::memory_order_relaxed); }

  void CountAcquisition() { acquisitions_->Increment(); }
  void RecordWait(uint64_t wait_ns) {
    contended_->Increment();
    wait_ns_->Record(wait_ns);
  }
  void RecordHold(uint64_t hold_ns) { hold_ns_->Record(hold_ns); }

  uint64_t acquisitions() const { return acquisitions_->value(); }
  uint64_t contended() const { return contended_->value(); }
  HistogramSnapshot wait_snapshot() const { return wait_ns_->Snapshot(); }
  HistogramSnapshot hold_snapshot() const { return hold_ns_->Snapshot(); }

 private:
  friend class ContentionRegistry;
  LockSite(std::string name, const std::atomic<bool>* armed,
           MetricsRegistry* registry);

  std::string name_;
  const std::atomic<bool>* armed_;  // the owning registry's arm flag
  Counter* acquisitions_;
  Counter* contended_;
  Histogram* wait_ns_;
  Histogram* hold_ns_;
};

/// Owns the LockSites of one node and the arm flag they all share.
/// `registry` must outlive this object (ChronoServer guarantees it by
/// declaration order).
class ContentionRegistry {
 public:
  explicit ContentionRegistry(MetricsRegistry* registry);

  ContentionRegistry(const ContentionRegistry&) = delete;
  ContentionRegistry& operator=(const ContentionRegistry&) = delete;

  /// Get-or-create; the returned site lives as long as this registry.
  LockSite* Site(const std::string& name);

  void SetArmed(bool armed) {
    armed_.store(armed, std::memory_order_relaxed);
  }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// The /contention document: every site with acquisition/contention
  /// counts and wait/hold stats, ranked by total wait share (worst first).
  std::string ContentionJson() const;

 private:
  MetricsRegistry* registry_;
  std::atomic<bool> armed_{true};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<LockSite>> sites_;  // stable addresses
  std::unordered_map<std::string, LockSite*> by_name_;
};

inline uint64_t LockClockNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// std::mutex wrapper satisfying Lockable, with per-site wait/hold
/// telemetry. Default-constructed or null-site instances behave exactly
/// like std::mutex. The hold timestamp lives in the object and is only
/// touched by the current holder — it is guarded by the mutex itself.
class TimedMutex {
 public:
  TimedMutex() = default;
  explicit TimedMutex(LockSite* site) : site_(site) {}

  TimedMutex(const TimedMutex&) = delete;
  TimedMutex& operator=(const TimedMutex&) = delete;

  void lock() {
    LockSite* site = site_;
    if (site == nullptr || !site->armed()) {
      mutex_.lock();
      return;
    }
    site->CountAcquisition();
    if (mutex_.try_lock()) {  // uncontended: no wait sample
      hold_begin_ns_ = LockClockNs();
      return;
    }
    uint64_t wait_begin = LockClockNs();
    mutex_.lock();
    site->RecordWait(LockClockNs() - wait_begin);
    hold_begin_ns_ = LockClockNs();
  }

  bool try_lock() {
    LockSite* site = site_;
    if (site == nullptr || !site->armed()) return mutex_.try_lock();
    if (!mutex_.try_lock()) return false;
    site->CountAcquisition();
    hold_begin_ns_ = LockClockNs();
    return true;
  }

  void unlock() {
    if (hold_begin_ns_ != 0) {
      site_->RecordHold(LockClockNs() - hold_begin_ns_);
      hold_begin_ns_ = 0;
    }
    mutex_.unlock();
  }

 private:
  std::mutex mutex_;
  LockSite* site_ = nullptr;
  uint64_t hold_begin_ns_ = 0;  // nonzero while a timed hold is open
};

/// std::shared_mutex wrapper (SharedLockable): the exclusive side records
/// wait + hold against `writer_site`; the shared side records wait only
/// against `reader_site` (readers overlap, so a shared hold time has no
/// single owner to attribute it to).
class TimedSharedMutex {
 public:
  TimedSharedMutex() = default;
  TimedSharedMutex(LockSite* writer_site, LockSite* reader_site)
      : writer_site_(writer_site), reader_site_(reader_site) {}

  TimedSharedMutex(const TimedSharedMutex&) = delete;
  TimedSharedMutex& operator=(const TimedSharedMutex&) = delete;

  void lock() {
    LockSite* site = writer_site_;
    if (site == nullptr || !site->armed()) {
      mutex_.lock();
      return;
    }
    site->CountAcquisition();
    if (mutex_.try_lock()) {
      hold_begin_ns_ = LockClockNs();
      return;
    }
    uint64_t wait_begin = LockClockNs();
    mutex_.lock();
    site->RecordWait(LockClockNs() - wait_begin);
    hold_begin_ns_ = LockClockNs();
  }

  bool try_lock() {
    LockSite* site = writer_site_;
    if (site == nullptr || !site->armed()) return mutex_.try_lock();
    if (!mutex_.try_lock()) return false;
    site->CountAcquisition();
    hold_begin_ns_ = LockClockNs();
    return true;
  }

  void unlock() {
    if (hold_begin_ns_ != 0) {
      writer_site_->RecordHold(LockClockNs() - hold_begin_ns_);
      hold_begin_ns_ = 0;
    }
    mutex_.unlock();
  }

  void lock_shared() {
    LockSite* site = reader_site_;
    if (site == nullptr || !site->armed()) {
      mutex_.lock_shared();
      return;
    }
    site->CountAcquisition();
    if (mutex_.try_lock_shared()) return;
    uint64_t wait_begin = LockClockNs();
    mutex_.lock_shared();
    site->RecordWait(LockClockNs() - wait_begin);
  }

  bool try_lock_shared() {
    LockSite* site = reader_site_;
    if (site == nullptr || !site->armed()) return mutex_.try_lock_shared();
    if (!mutex_.try_lock_shared()) return false;
    site->CountAcquisition();
    return true;
  }

  void unlock_shared() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
  LockSite* writer_site_ = nullptr;
  LockSite* reader_site_ = nullptr;
  uint64_t hold_begin_ns_ = 0;  // exclusive holder only (guarded by it)
};

}  // namespace chrono::obs

#endif  // CHRONOCACHE_OBS_CONTENTION_H_
