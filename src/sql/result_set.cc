#include "sql/result_set.h"

#include <algorithm>
#include <cassert>

namespace chrono::sql {

int ResultSet::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

const Value& ResultSet::At(size_t row, const std::string& column) const {
  int idx = ColumnIndex(column);
  assert(idx >= 0);
  return rows_[row][static_cast<size_t>(idx)];
}

size_t ResultSet::ByteSize() const {
  size_t total = sizeof(ResultSet);
  for (const auto& c : columns_) total += c.size() + sizeof(std::string);
  for (const auto& r : rows_) {
    for (const auto& v : r) total += v.ByteSize();
  }
  return total;
}

bool ResultSet::operator==(const ResultSet& other) const {
  if (columns_ != other.columns_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].size() != other.rows_[i].size()) return false;
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      if (rows_[i][j] != other.rows_[i][j]) return false;
    }
  }
  return true;
}

std::string ResultSet::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& r : rows_) {
    std::vector<std::string> line;
    line.reserve(r.size());
    for (size_t i = 0; i < r.size(); ++i) {
      line.push_back(r[i].ToDisplayString());
      if (i < widths.size()) widths[i] = std::max(widths[i], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    out += columns_[i];
    out.append(widths[i] - columns_[i].size() + 2, ' ');
  }
  out += "\n";
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) {
      out += line[i];
      if (i < widths.size()) out.append(widths[i] - line[i].size() + 2, ' ');
    }
    out += "\n";
  }
  return out;
}

}  // namespace chrono::sql
