#include "sql/writer.h"

#include "common/string_util.h"

namespace chrono::sql {

namespace {

const char* BinOpText(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
  }
  return "?";
}

void WriteExprTo(const Expr& expr, std::string* out) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      *out += expr.literal.ToSqlLiteral();
      return;
    case Expr::Kind::kColumnRef:
      if (!expr.table.empty()) {
        *out += expr.table;
        *out += ".";
      }
      *out += expr.column;
      return;
    case Expr::Kind::kParam:
      *out += "?";
      return;
    case Expr::Kind::kUnary:
      if (expr.un_op == UnOp::kNot) {
        *out += "NOT (";
        WriteExprTo(*expr.children[0], out);
        *out += ")";
      } else {
        *out += "-(";
        WriteExprTo(*expr.children[0], out);
        *out += ")";
      }
      return;
    case Expr::Kind::kBinary: {
      bool logical =
          expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr;
      *out += "(";
      WriteExprTo(*expr.children[0], out);
      *out += logical ? " " : " ";
      *out += BinOpText(expr.bin_op);
      *out += " ";
      WriteExprTo(*expr.children[1], out);
      *out += ")";
      return;
    }
    case Expr::Kind::kFuncCall: {
      *out += expr.func_name;
      *out += "(";
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) *out += ", ";
        WriteExprTo(*expr.children[i], out);
      }
      *out += ")";
      return;
    }
    case Expr::Kind::kStar:
      *out += "*";
      return;
    case Expr::Kind::kIsNull:
      *out += "(";
      WriteExprTo(*expr.children[0], out);
      *out += expr.is_not ? " IS NOT NULL)" : " IS NULL)";
      return;
    case Expr::Kind::kInList: {
      *out += "(";
      WriteExprTo(*expr.children[0], out);
      *out += expr.is_not ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < expr.children.size(); ++i) {
        if (i > 1) *out += ", ";
        WriteExprTo(*expr.children[i], out);
      }
      *out += "))";
      return;
    }
    case Expr::Kind::kRowNumber:
      *out += "row_number() OVER ()";
      return;
    case Expr::Kind::kCase: {
      *out += "CASE";
      size_t branch_elems =
          expr.is_not ? expr.children.size() - 1 : expr.children.size();
      for (size_t i = 0; i + 1 < branch_elems; i += 2) {
        *out += " WHEN ";
        WriteExprTo(*expr.children[i], out);
        *out += " THEN ";
        WriteExprTo(*expr.children[i + 1], out);
      }
      if (expr.is_not) {
        *out += " ELSE ";
        WriteExprTo(*expr.children.back(), out);
      }
      *out += " END";
      return;
    }
  }
}

void WriteTableRefTo(const TableRef& ref, std::string* out) {
  switch (ref.kind) {
    case TableRef::Kind::kNone:
      return;
    case TableRef::Kind::kTable:
      *out += ref.table_name;
      break;
    case TableRef::Kind::kSubquery:
      *out += "(";
      *out += WriteSelect(*ref.subquery);
      *out += ")";
      break;
    case TableRef::Kind::kLateralSubquery:
      *out += "LATERAL (";
      *out += WriteSelect(*ref.subquery);
      *out += ")";
      break;
  }
  if (!ref.alias.empty() && ref.alias != ref.table_name) {
    *out += " AS ";
    *out += ref.alias;
  }
}

}  // namespace

std::string WriteExpr(const Expr& expr) {
  std::string out;
  WriteExprTo(expr, &out);
  return out;
}

std::string WriteSelect(const SelectStmt& stmt) {
  std::string out;
  if (!stmt.ctes.empty()) {
    out += "WITH ";
    for (size_t i = 0; i < stmt.ctes.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.ctes[i].name;
      out += " AS (";
      out += WriteSelect(*stmt.ctes[i].query);
      out += ")";
    }
    out += " ";
  }
  out += "SELECT ";
  if (stmt.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      if (!item.star_qualifier.empty()) {
        out += item.star_qualifier;
        out += ".*";
      } else {
        out += "*";
      }
    } else {
      WriteExprTo(*item.expr, &out);
      if (!item.alias.empty()) {
        out += " AS ";
        out += item.alias;
      }
    }
  }
  if (stmt.from.kind != TableRef::Kind::kNone) {
    out += " FROM ";
    WriteTableRefTo(stmt.from, &out);
    for (const auto& join : stmt.joins) {
      switch (join.type) {
        case JoinClause::Type::kCross:
          out += ", ";
          WriteTableRefTo(join.ref, &out);
          break;
        case JoinClause::Type::kInner:
          out += " JOIN ";
          WriteTableRefTo(join.ref, &out);
          out += " ON ";
          WriteExprTo(*join.on, &out);
          break;
        case JoinClause::Type::kLeft:
          out += " LEFT JOIN ";
          WriteTableRefTo(join.ref, &out);
          out += " ON ";
          WriteExprTo(*join.on, &out);
          break;
      }
    }
  }
  if (stmt.where) {
    out += " WHERE ";
    WriteExprTo(*stmt.where, &out);
  }
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      WriteExprTo(*stmt.group_by[i], &out);
    }
  }
  if (stmt.having) {
    out += " HAVING ";
    WriteExprTo(*stmt.having, &out);
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      WriteExprTo(*stmt.order_by[i].expr, &out);
      if (stmt.order_by[i].desc) out += " DESC";
    }
  }
  if (stmt.limit.has_value()) {
    out += " LIMIT ";
    out += std::to_string(*stmt.limit);
  }
  return out;
}

std::string WriteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return WriteSelect(*stmt.select);
    case Statement::Kind::kInsert: {
      std::string out = "INSERT INTO ";
      out += stmt.insert->table;
      if (!stmt.insert->columns.empty()) {
        out += " (";
        out += Join(stmt.insert->columns, ", ");
        out += ")";
      }
      out += " VALUES ";
      for (size_t r = 0; r < stmt.insert->rows.size(); ++r) {
        if (r > 0) out += ", ";
        out += "(";
        const auto& row = stmt.insert->rows[r];
        for (size_t i = 0; i < row.size(); ++i) {
          if (i > 0) out += ", ";
          out += WriteExpr(*row[i]);
        }
        out += ")";
      }
      return out;
    }
    case Statement::Kind::kUpdate: {
      std::string out = "UPDATE ";
      out += stmt.update->table;
      out += " SET ";
      for (size_t i = 0; i < stmt.update->assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += stmt.update->assignments[i].first;
        out += " = ";
        out += WriteExpr(*stmt.update->assignments[i].second);
      }
      if (stmt.update->where) {
        out += " WHERE ";
        out += WriteExpr(*stmt.update->where);
      }
      return out;
    }
    case Statement::Kind::kDelete: {
      std::string out = "DELETE FROM ";
      out += stmt.del->table;
      if (stmt.del->where) {
        out += " WHERE ";
        out += WriteExpr(*stmt.del->where);
      }
      return out;
    }
    case Statement::Kind::kCreateTable: {
      std::string out = "CREATE TABLE ";
      out += stmt.create->table;
      out += " (";
      for (size_t i = 0; i < stmt.create->columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += stmt.create->columns[i].name;
        switch (stmt.create->columns[i].type) {
          case Value::Type::kInt:
            out += " bigint";
            break;
          case Value::Type::kDouble:
            out += " double";
            break;
          case Value::Type::kString:
            out += " text";
            break;
          case Value::Type::kNull:
            out += " text";
            break;
        }
      }
      out += ")";
      return out;
    }
  }
  return "";
}

}  // namespace chrono::sql
