#include "sql/value.h"

#include <cstdio>

namespace chrono::sql {

double Value::AsDouble() const {
  if (type() == Type::kInt) return static_cast<double>(std::get<int64_t>(data_));
  return std::get<double>(data_);
}

bool Value::EqualsSql(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (type() == Type::kString || other.type() == Type::kString) {
    if (type() != Type::kString || other.type() != Type::kString) return false;
    return AsString() == other.AsString();
  }
  return AsDouble() == other.AsDouble();
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (type() == Type::kString && other.type() == Type::kString) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (type() == Type::kString) return 1;   // strings sort after numbers
  if (other.type() == Type::kString) return -1;
  double a = AsDouble();
  double b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) {
    // Numeric cross-type equality (2 == 2.0) keeps test expectations sane.
    if ((type() == Type::kInt && other.type() == Type::kDouble) ||
        (type() == Type::kDouble && other.type() == Type::kInt)) {
      return AsDouble() == other.AsDouble();
    }
    return false;
  }
  return data_ == other.data_;
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case Type::kNull:
      return "NULL";
    case Type::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case Type::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(data_));
      std::string s(buf);
      // Keep a decimal marker so the literal round-trips as a double.
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Type::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string Value::ToDisplayString() const {
  if (type() == Type::kString) return AsString();
  return ToSqlLiteral();
}

size_t Value::ByteSize() const {
  size_t base = sizeof(Value);
  if (type() == Type::kString) base += AsString().size();
  return base;
}

}  // namespace chrono::sql
