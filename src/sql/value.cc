#include "sql/value.h"

#include <cstdio>
#include <cstring>
#include <functional>

namespace chrono::sql {

double Value::AsDouble() const {
  if (type() == Type::kInt) return static_cast<double>(std::get<int64_t>(data_));
  return std::get<double>(data_);
}

bool Value::EqualsSql(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (type() == Type::kString || other.type() == Type::kString) {
    if (type() != Type::kString || other.type() != Type::kString) return false;
    return AsString() == other.AsString();
  }
  return AsDouble() == other.AsDouble();
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (type() == Type::kString && other.type() == Type::kString) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (type() == Type::kString) return 1;   // strings sort after numbers
  if (other.type() == Type::kString) return -1;
  double a = AsDouble();
  double b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) {
    // Numeric cross-type equality (2 == 2.0) keeps test expectations sane.
    if ((type() == Type::kInt && other.type() == Type::kDouble) ||
        (type() == Type::kDouble && other.type() == Type::kInt)) {
      return AsDouble() == other.AsDouble();
    }
    return false;
  }
  return data_ == other.data_;
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case Type::kNull:
      return "NULL";
    case Type::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case Type::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(data_));
      std::string s(buf);
      // Keep a decimal marker so the literal round-trips as a double.
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Type::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string Value::ToDisplayString() const {
  if (type() == Type::kString) return AsString();
  return ToSqlLiteral();
}

size_t Value::ByteSize() const {
  size_t base = sizeof(Value);
  if (type() == Type::kString) base += AsString().size();
  return base;
}

namespace {

inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t ValueHash::operator()(const Value& v) const {
  switch (v.type()) {
    case Value::Type::kNull:
      return 0x6e756c6cu;  // fixed bucket; NULL never compares equal via SQL
    case Value::Type::kInt:
    case Value::Type::kDouble: {
      // Int/double unification: hash the bit pattern of the (unified)
      // double value so that 2 and 2.0 land in one bucket, matching
      // EqualsSql. -0.0 is folded into +0.0 first.
      double d = v.AsDouble();
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return std::hash<uint64_t>{}(bits);
    }
    case Value::Type::kString:
      return std::hash<std::string>{}(v.AsString());
  }
  return 0;
}

bool ValueKeyEq::operator()(const Value& a, const Value& b) const {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.type() == Value::Type::kString || b.type() == Value::Type::kString) {
    return a.type() == Value::Type::kString &&
           b.type() == Value::Type::kString && a.AsString() == b.AsString();
  }
  return a.AsDouble() == b.AsDouble();
}

size_t RowHash::operator()(const Row& row) const {
  size_t seed = row.size();
  ValueHash h;
  for (const auto& v : row) seed = HashCombine(seed, h(v));
  return seed;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  ValueKeyEq eq;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!eq(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace chrono::sql
