#include "sql/template.h"

#include <set>

#include "common/string_util.h"
#include "sql/parser.h"
#include "sql/writer.h"

namespace chrono::sql {

namespace {

void CollectFrom(const SelectStmt& stmt, std::set<std::string>* reads,
                 std::set<std::string>* cte_names) {
  std::set<std::string> local_ctes = *cte_names;
  for (const auto& cte : stmt.ctes) {
    CollectFrom(*cte.query, reads, &local_ctes);
    local_ctes.insert(cte.name);
  }
  auto visit_ref = [&](const TableRef& ref) {
    if (ref.kind == TableRef::Kind::kTable) {
      if (local_ctes.count(ref.table_name) == 0) reads->insert(ref.table_name);
    } else if (ref.subquery) {
      CollectFrom(*ref.subquery, reads, &local_ctes);
    }
  };
  if (stmt.from.kind != TableRef::Kind::kNone) visit_ref(stmt.from);
  for (const auto& join : stmt.joins) visit_ref(join.ref);
}

}  // namespace

Result<ParsedQuery> AnalyzeQuery(std::string_view text) {
  CHRONO_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, Parse(text));

  // Extract literals into parameters, in deterministic traversal order.
  auto templ_ast = stmt->Clone();
  std::vector<Value> params;
  VisitExprs(templ_ast.get(), [&params](Expr* e) {
    if (e->kind == Expr::Kind::kLiteral) {
      Value v = std::move(e->literal);
      e->kind = Expr::Kind::kParam;
      e->param_index = static_cast<int>(params.size());
      e->literal = Value();
      params.push_back(std::move(v));
    }
  });

  auto tmpl = std::make_shared<QueryTemplate>();
  tmpl->canonical_text = WriteStatement(*templ_ast);
  tmpl->id = Fnv1aHash(tmpl->canonical_text);
  tmpl->param_count = static_cast<int>(params.size());
  tmpl->read_only = templ_ast->IsReadOnly();
  tmpl->ast = std::shared_ptr<const Statement>(std::move(templ_ast));

  ParsedQuery out;
  out.bound_text = RenderBoundText(*tmpl, params);
  out.tmpl = std::move(tmpl);
  out.params = std::move(params);
  return out;
}

std::unique_ptr<Statement> BindParams(const Statement& templ,
                                      const std::vector<Value>& params) {
  auto bound = templ.Clone();
  VisitExprs(bound.get(), [&params](Expr* e) {
    if (e->kind == Expr::Kind::kParam && e->param_index >= 0 &&
        static_cast<size_t>(e->param_index) < params.size()) {
      e->literal = params[static_cast<size_t>(e->param_index)];
      e->kind = Expr::Kind::kLiteral;
      e->param_index = -1;
    }
  });
  return bound;
}

std::string RenderBoundText(const QueryTemplate& tmpl,
                            const std::vector<Value>& params) {
  auto bound = BindParams(*tmpl.ast, params);
  return WriteStatement(*bound);
}

TableAccess CollectTableAccess(const Statement& stmt) {
  TableAccess out;
  std::set<std::string> reads;
  std::set<std::string> empty_ctes;
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      CollectFrom(*stmt.select, &reads, &empty_ctes);
      break;
    case Statement::Kind::kInsert:
      out.writes.push_back(stmt.insert->table);
      break;
    case Statement::Kind::kUpdate:
      out.writes.push_back(stmt.update->table);
      reads.insert(stmt.update->table);
      break;
    case Statement::Kind::kDelete:
      out.writes.push_back(stmt.del->table);
      reads.insert(stmt.del->table);
      break;
    case Statement::Kind::kCreateTable:
      out.writes.push_back(stmt.create->table);
      break;
  }
  out.reads.assign(reads.begin(), reads.end());
  return out;
}

}  // namespace chrono::sql
