#ifndef CHRONOCACHE_SQL_WRITER_H_
#define CHRONOCACHE_SQL_WRITER_H_

#include <string>

#include "sql/ast.h"

namespace chrono::sql {

/// Renders an AST back to canonical SQL text. The output is parseable by
/// Parse() and is deterministic for a given tree, which makes it usable as
/// both the combined-query text submitted to the database and the canonical
/// form for query-template fingerprints (`?` placeholders are written for
/// kParam nodes).
std::string WriteExpr(const Expr& expr);
std::string WriteSelect(const SelectStmt& stmt);
std::string WriteStatement(const Statement& stmt);

}  // namespace chrono::sql

#endif  // CHRONOCACHE_SQL_WRITER_H_
