#ifndef CHRONOCACHE_SQL_TEMPLATE_H_
#define CHRONOCACHE_SQL_TEMPLATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace chrono::sql {

/// \brief A constant-agnostic representation of a query (§2 of the paper):
/// the parse tree with every literal replaced by an ordered `?` parameter.
/// Two query submissions that differ only in constants share a template.
struct QueryTemplate {
  uint64_t id = 0;              // FNV-1a hash of canonical_text
  std::string canonical_text;   // deterministic text with ? placeholders
  std::shared_ptr<const Statement> ast;  // parameterised parse tree
  int param_count = 0;
  bool read_only = true;
};

/// \brief One concrete query submission: its template plus the literal
/// values, in template parameter order.
struct ParsedQuery {
  std::shared_ptr<const QueryTemplate> tmpl;
  std::vector<Value> params;
  /// Canonical bound text — the combiner-independent identity of this exact
  /// query instance. Cached result sets are keyed by this string (§4.1.1:
  /// "cached result sets are keyed by the string of the query that would
  /// have generated them").
  std::string bound_text;
};

/// Parses client-submitted SQL and extracts its template: literals become
/// ordered parameters, the canonical text is rendered and hashed.
Result<ParsedQuery> AnalyzeQuery(std::string_view text);

/// Replaces kParam nodes with the given literal values (by param_index).
/// Params beyond the vector's size are left in place.
std::unique_ptr<Statement> BindParams(const Statement& templ,
                                      const std::vector<Value>& params);

/// Deterministic text for a template bound with the given parameters.
std::string RenderBoundText(const QueryTemplate& tmpl,
                            const std::vector<Value>& params);

/// Base relations a statement reads / writes (used by the session-semantics
/// version vectors, §5.2). Reads include tables inside CTEs and subqueries.
struct TableAccess {
  std::vector<std::string> reads;
  std::vector<std::string> writes;
};
TableAccess CollectTableAccess(const Statement& stmt);

}  // namespace chrono::sql

#endif  // CHRONOCACHE_SQL_TEMPLATE_H_
