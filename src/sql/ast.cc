#include "sql/ast.h"

namespace chrono::sql {

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->param_index = param_index;
  out->bin_op = bin_op;
  out->un_op = un_op;
  out->func_name = func_name;
  out->is_not = is_not;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::MakeParam(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kParam;
  e->param_index = index;
  return e;
}

ExprPtr Expr::MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->bin_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::MakeUnary(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->un_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeFuncCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFuncCall;
  e->func_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kStar;
  return e;
}

ExprPtr Expr::MakeIsNull(ExprPtr operand, bool is_not) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kIsNull;
  e->is_not = is_not;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeInList(ExprPtr needle, std::vector<ExprPtr> haystack,
                         bool is_not) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kInList;
  e->is_not = is_not;
  e->children.push_back(std::move(needle));
  for (auto& h : haystack) e->children.push_back(std::move(h));
  return e;
}

ExprPtr Expr::MakeRowNumber() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kRowNumber;
  return e;
}

ExprPtr Expr::MakeCase(std::vector<ExprPtr> branches, ExprPtr otherwise) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCase;
  e->children = std::move(branches);
  if (otherwise) {
    e->is_not = true;  // marks the trailing ELSE child
    e->children.push_back(std::move(otherwise));
  }
  return e;
}

TableRef TableRef::Clone() const {
  TableRef out;
  out.kind = kind;
  out.table_name = table_name;
  out.alias = alias;
  if (subquery) out.subquery = subquery->Clone();
  return out;
}

JoinClause JoinClause::Clone() const {
  JoinClause out;
  out.type = type;
  out.ref = ref.Clone();
  if (on) out.on = on->Clone();
  return out;
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  out.is_star = is_star;
  out.star_qualifier = star_qualifier;
  if (expr) out.expr = expr->Clone();
  out.alias = alias;
  return out;
}

OrderItem OrderItem::Clone() const {
  OrderItem out;
  out.expr = expr->Clone();
  out.desc = desc;
  return out;
}

CteDef CteDef::Clone() const {
  CteDef out;
  out.name = name;
  out.query = query->Clone();
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->ctes.reserve(ctes.size());
  for (const auto& c : ctes) out->ctes.push_back(c.Clone());
  out->distinct = distinct;
  out->items.reserve(items.size());
  for (const auto& i : items) out->items.push_back(i.Clone());
  out->from = from.Clone();
  out->joins.reserve(joins.size());
  for (const auto& j : joins) out->joins.push_back(j.Clone());
  if (where) out->where = where->Clone();
  out->group_by.reserve(group_by.size());
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  out->order_by.reserve(order_by.size());
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  return out;
}

std::unique_ptr<InsertStmt> InsertStmt::Clone() const {
  auto out = std::make_unique<InsertStmt>();
  out->table = table;
  out->columns = columns;
  out->rows.reserve(rows.size());
  for (const auto& r : rows) {
    std::vector<ExprPtr> row;
    row.reserve(r.size());
    for (const auto& e : r) row.push_back(e->Clone());
    out->rows.push_back(std::move(row));
  }
  return out;
}

std::unique_ptr<UpdateStmt> UpdateStmt::Clone() const {
  auto out = std::make_unique<UpdateStmt>();
  out->table = table;
  out->assignments.reserve(assignments.size());
  for (const auto& [col, e] : assignments) {
    out->assignments.emplace_back(col, e->Clone());
  }
  if (where) out->where = where->Clone();
  return out;
}

std::unique_ptr<DeleteStmt> DeleteStmt::Clone() const {
  auto out = std::make_unique<DeleteStmt>();
  out->table = table;
  if (where) out->where = where->Clone();
  return out;
}

std::unique_ptr<CreateTableStmt> CreateTableStmt::Clone() const {
  auto out = std::make_unique<CreateTableStmt>();
  out->table = table;
  out->columns = columns;
  return out;
}

std::unique_ptr<Statement> Statement::Clone() const {
  auto out = std::make_unique<Statement>();
  out->kind = kind;
  if (select) out->select = select->Clone();
  if (insert) out->insert = insert->Clone();
  if (update) out->update = update->Clone();
  if (del) out->del = del->Clone();
  if (create) out->create = create->Clone();
  return out;
}

std::vector<const Expr*> CollectConjuncts(const Expr* expr) {
  std::vector<const Expr*> out;
  if (expr == nullptr) return out;
  if (expr->kind == Expr::Kind::kBinary && expr->bin_op == BinOp::kAnd) {
    auto lhs = CollectConjuncts(expr->children[0].get());
    auto rhs = CollectConjuncts(expr->children[1].get());
    out.insert(out.end(), lhs.begin(), lhs.end());
    out.insert(out.end(), rhs.begin(), rhs.end());
    return out;
  }
  out.push_back(expr);
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (auto& c : conjuncts) {
    if (!out) {
      out = std::move(c);
    } else {
      out = Expr::MakeBinary(BinOp::kAnd, std::move(out), std::move(c));
    }
  }
  return out;
}

void VisitExpr(Expr* expr, const std::function<void(Expr*)>& fn) {
  if (expr == nullptr) return;
  fn(expr);
  for (auto& c : expr->children) VisitExpr(c.get(), fn);
}

void VisitExprs(SelectStmt* stmt, const std::function<void(Expr*)>& fn) {
  if (stmt == nullptr) return;
  for (auto& cte : stmt->ctes) VisitExprs(cte.query.get(), fn);
  for (auto& item : stmt->items) VisitExpr(item.expr.get(), fn);
  if (stmt->from.subquery) VisitExprs(stmt->from.subquery.get(), fn);
  for (auto& join : stmt->joins) {
    if (join.ref.subquery) VisitExprs(join.ref.subquery.get(), fn);
    VisitExpr(join.on.get(), fn);
  }
  VisitExpr(stmt->where.get(), fn);
  for (auto& g : stmt->group_by) VisitExpr(g.get(), fn);
  VisitExpr(stmt->having.get(), fn);
  for (auto& o : stmt->order_by) VisitExpr(o.expr.get(), fn);
}

void VisitExprs(Statement* stmt, const std::function<void(Expr*)>& fn) {
  if (stmt == nullptr) return;
  switch (stmt->kind) {
    case Statement::Kind::kSelect:
      VisitExprs(stmt->select.get(), fn);
      break;
    case Statement::Kind::kInsert:
      for (auto& row : stmt->insert->rows) {
        for (auto& e : row) VisitExpr(e.get(), fn);
      }
      break;
    case Statement::Kind::kUpdate:
      for (auto& [col, e] : stmt->update->assignments) {
        (void)col;
        VisitExpr(e.get(), fn);
      }
      VisitExpr(stmt->update->where.get(), fn);
      break;
    case Statement::Kind::kDelete:
      VisitExpr(stmt->del->where.get(), fn);
      break;
  }
}

}  // namespace chrono::sql
