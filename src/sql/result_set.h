#ifndef CHRONOCACHE_SQL_RESULT_SET_H_
#define CHRONOCACHE_SQL_RESULT_SET_H_

#include <string>
#include <vector>

#include "sql/value.h"

namespace chrono::sql {

/// \brief A materialised query result: named columns plus rows. This is what
/// the database returns, what ChronoCache caches, and what the result-set
/// splitter decodes combined results into.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  std::vector<std::string>* mutable_columns() { return &columns_; }

  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }
  size_t column_count() const { return columns_.size(); }
  bool empty() const { return rows_.empty(); }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }
  const Row& row(size_t i) const { return rows_[i]; }

  /// Index of the named column, or -1 if absent. Name match is exact.
  int ColumnIndex(const std::string& name) const;

  /// Value at (row, named column); asserts the column exists.
  const Value& At(size_t row, const std::string& column) const;

  /// Approximate footprint in bytes, used for cache size accounting.
  size_t ByteSize() const;

  /// Structural equality: same columns (names and order) and same rows.
  bool operator==(const ResultSet& other) const;
  bool operator!=(const ResultSet& other) const { return !(*this == other); }

  /// Debug rendering as an aligned text table.
  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace chrono::sql

#endif  // CHRONOCACHE_SQL_RESULT_SET_H_
