#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/string_util.h"

namespace chrono::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",    "AND",    "OR",     "NOT",   "JOIN",
      "LEFT",   "INNER",  "CROSS",    "ON",     "AS",     "WITH",  "GROUP",
      "BY",     "ORDER",  "ASC",      "DESC",   "LIMIT",  "LATERAL",
      "NULL",   "INSERT", "INTO",     "VALUES", "UPDATE", "SET",   "DELETE",
      "IN",     "IS",     "DISTINCT", "HAVING", "OVER",   "TRUE",  "FALSE",
      "BETWEEN", "CREATE", "TABLE", "CASE", "WHEN", "THEN", "ELSE", "END",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word(input.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        tok.kind = Token::Kind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = Token::Kind::kIdentifier;
        tok.text = ToLower(word);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      std::string text(input.substr(start, i - start));
      if (is_double) {
        tok.kind = Token::Kind::kDouble;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = Token::Kind::kInt;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string contents;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            contents += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        contents += input[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.kind = Token::Kind::kString;
      tok.text = std::move(contents);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Symbols, longest match first.
    auto two = input.substr(i, 2);
    if (two == "<>" || two == "<=" || two == ">=" || two == "!=" ||
        two == "||") {
      tok.kind = Token::Kind::kSymbol;
      tok.text = (two == "!=") ? "<>" : std::string(two);
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingles = "=<>+-*/(),.?;";
    if (kSingles.find(c) != std::string::npos) {
      tok.kind = Token::Kind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      if (tok.text == ";") continue;  // statement terminators are ignored
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace chrono::sql
