#ifndef CHRONOCACHE_SQL_VALUE_H_
#define CHRONOCACHE_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace chrono::sql {

/// \brief A single SQL scalar: NULL, 64-bit integer, double, or string.
/// Dates are represented as integer day numbers by the workloads; the SQL
/// layer treats them as plain integers.
class Value {
 public:
  enum class Type { kNull = 0, kInt, kDouble, kString };

  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const;  // promotes kInt to double
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// True if both values are non-null and equal under SQL `=` semantics
  /// (ints and doubles compare numerically; strings compare exactly).
  bool EqualsSql(const Value& other) const;

  /// Three-way comparison for ORDER BY; NULLs sort first. Returns -1/0/1.
  int Compare(const Value& other) const;

  /// Exact structural equality (NULL == NULL); used by tests and cache keys.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Renders the value as a SQL literal ('quoted' strings, NULL keyword).
  std::string ToSqlLiteral() const;

  /// Renders the value for display (unquoted strings).
  std::string ToDisplayString() const;

  /// Approximate in-memory footprint in bytes (for cache accounting).
  size_t ByteSize() const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> data_;
};

using Row = std::vector<Value>;

/// \brief Hash for Value keys in the query hot path (table indexes, hash
/// joins, GROUP BY/DISTINCT). Numerics hash by the exact bit pattern of
/// their numeric value after int/double unification (-0.0 normalised to
/// +0.0), so the hash depends only on the value's SQL-equality class:
/// ValueKeyEq(a, b) implies ValueHash()(a) == ValueHash()(b). Replaces the
/// former per-probe string materialisation, whose %f-style rendering
/// truncated doubles to 6 significant digits and could collide distinct
/// keys.
struct ValueHash {
  size_t operator()(const Value& v) const;
};

/// \brief Key equality matching Value::EqualsSql for non-null values, with
/// NULLs forming their own bucket (an index must be able to store them;
/// SQL `=` against NULL is filtered out downstream by the executor).
struct ValueKeyEq {
  bool operator()(const Value& a, const Value& b) const;
};

/// Hash / equality over whole rows (GROUP BY keys, DISTINCT dedup).
struct RowHash {
  size_t operator()(const Row& row) const;
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

}  // namespace chrono::sql

#endif  // CHRONOCACHE_SQL_VALUE_H_
