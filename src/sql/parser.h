#ifndef CHRONOCACHE_SQL_PARSER_H_
#define CHRONOCACHE_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace chrono::sql {

/// Parses one SQL statement (SELECT / INSERT / UPDATE / DELETE, with optional
/// WITH prefix on SELECT). Supports the subset ChronoCache's workloads issue
/// and its combiners generate: select-project-join with inner/left/lateral
/// joins, aggregates, GROUP BY/HAVING, ORDER BY, LIMIT, CTEs,
/// ROW_NUMBER() OVER (), IN lists, `?` parameter placeholders, and DML.
Result<std::unique_ptr<Statement>> Parse(std::string_view sql);

/// Convenience wrapper when the statement is known to be a SELECT.
Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql);

}  // namespace chrono::sql

#endif  // CHRONOCACHE_SQL_PARSER_H_
