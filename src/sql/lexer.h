#ifndef CHRONOCACHE_SQL_LEXER_H_
#define CHRONOCACHE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace chrono::sql {

struct Token {
  enum class Kind {
    kIdentifier,  // table/column/function names (stored lower-cased)
    kKeyword,     // recognised SQL keyword (stored upper-cased)
    kInt,
    kDouble,
    kString,      // contents without quotes, '' unescaped
    kSymbol,      // operators and punctuation: = <> <= >= < > + - * / ( ) , . ?
    kEnd,
  };

  Kind kind = Kind::kEnd;
  std::string text;       // normalised text (see Kind comments)
  int64_t int_value = 0;  // kInt
  double double_value = 0;  // kDouble
  size_t offset = 0;      // byte offset in the input, for error messages

  bool IsKeyword(std::string_view kw) const {
    return kind == Kind::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view sym) const {
    return kind == Kind::kSymbol && text == sym;
  }
};

/// Tokenises a SQL string. Keywords are case-insensitive; identifiers are
/// lower-cased so that the rest of the system can compare names directly.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace chrono::sql

#endif  // CHRONOCACHE_SQL_LEXER_H_
