#ifndef CHRONOCACHE_SQL_AST_H_
#define CHRONOCACHE_SQL_AST_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sql/value.h"

namespace chrono::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

enum class UnOp { kNot, kNeg };

/// \brief A SQL scalar expression node. A single tagged struct (rather than a
/// class hierarchy) keeps cloning and structural traversal — which the
/// template extractor and query combiners rely on heavily — simple.
struct Expr {
  enum class Kind {
    kLiteral,    // literal value
    kColumnRef,  // [table.]column
    kParam,      // `?` placeholder inside a query template
    kUnary,      // NOT e, -e
    kBinary,     // e op e
    kFuncCall,   // name(args) — aggregates and scalar functions
    kStar,       // `*` inside COUNT(*)
    kIsNull,     // e IS [NOT] NULL
    kInList,     // e IN (v1, v2, ...)
    kRowNumber,  // ROW_NUMBER() OVER ()
    kCase,       // CASE WHEN c THEN v ... [ELSE v] END; children are
                 // (when, then) pairs followed by the optional else
  };

  Kind kind = Kind::kLiteral;
  Value literal;                    // kLiteral
  std::string table;                // kColumnRef qualifier (may be empty)
  std::string column;               // kColumnRef
  int param_index = -1;             // kParam: position in the template's
                                    // ordered parameter list
  BinOp bin_op = BinOp::kEq;        // kBinary
  UnOp un_op = UnOp::kNot;          // kUnary
  std::string func_name;            // kFuncCall (lower-cased)
  bool is_not = false;              // kIsNull / kInList negation
  std::vector<ExprPtr> children;    // operands / arguments / IN list

  ExprPtr Clone() const;

  // ---- Factory helpers -----------------------------------------------

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumnRef(std::string table, std::string column);
  static ExprPtr MakeParam(int index);
  static ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeUnary(UnOp op, ExprPtr operand);
  static ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args);
  static ExprPtr MakeStar();
  static ExprPtr MakeIsNull(ExprPtr operand, bool is_not);
  static ExprPtr MakeInList(ExprPtr needle, std::vector<ExprPtr> haystack,
                            bool is_not);
  static ExprPtr MakeRowNumber();
  /// `branches` alternates condition, value; `otherwise` may be null.
  static ExprPtr MakeCase(std::vector<ExprPtr> branches, ExprPtr otherwise);
};

struct SelectStmt;

/// \brief One entry in a FROM clause: a base table, a derived table
/// (subquery), or a LATERAL derived table that may reference columns of
/// earlier FROM entries.
struct TableRef {
  enum class Kind { kNone, kTable, kSubquery, kLateralSubquery };

  Kind kind = Kind::kNone;
  std::string table_name;  // kTable
  std::string alias;       // effective name; defaults to table_name
  std::unique_ptr<SelectStmt> subquery;  // kSubquery / kLateralSubquery

  TableRef() = default;
  TableRef Clone() const;

  /// Name this relation is referred to by in expressions.
  const std::string& EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }
};

struct JoinClause {
  enum class Type { kInner, kLeft, kCross };

  Type type = Type::kInner;
  TableRef ref;
  ExprPtr on;  // null for kCross; LEFT JOIN LATERAL ... ON TRUE has literal

  JoinClause Clone() const;
};

struct SelectItem {
  bool is_star = false;          // `*` or `alias.*`
  std::string star_qualifier;    // non-empty for `alias.*`
  ExprPtr expr;                  // when !is_star
  std::string alias;             // output column name override

  SelectItem Clone() const;
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;

  OrderItem Clone() const;
};

struct CteDef {
  std::string name;
  std::unique_ptr<SelectStmt> query;

  CteDef Clone() const;
};

/// \brief A SELECT statement, including an optional WITH-clause prefix.
struct SelectStmt {
  std::vector<CteDef> ctes;
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;  // kind == kNone when the query has no FROM clause
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  std::unique_ptr<SelectStmt> Clone() const;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;           // empty = all, in schema order
  std::vector<std::vector<ExprPtr>> rows;

  std::unique_ptr<InsertStmt> Clone() const;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;

  std::unique_ptr<UpdateStmt> Clone() const;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;

  std::unique_ptr<DeleteStmt> Clone() const;
};

/// \brief CREATE TABLE t (col TYPE, ...). Types: INT/BIGINT (integer),
/// DOUBLE/FLOAT/DECIMAL (floating), TEXT/VARCHAR/STRING (string).
struct CreateTableStmt {
  struct Column {
    std::string name;
    Value::Type type = Value::Type::kInt;
  };
  std::string table;
  std::vector<Column> columns;

  std::unique_ptr<CreateTableStmt> Clone() const;
};

/// \brief Any parsed SQL statement.
struct Statement {
  enum class Kind { kSelect, kInsert, kUpdate, kDelete, kCreateTable };

  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create;

  std::unique_ptr<Statement> Clone() const;

  bool IsReadOnly() const { return kind == Kind::kSelect; }
};

/// Splits an AND-conjunction tree into its conjunct list (used by the
/// combiner to strip/reattach filter predicates). The returned pointers
/// alias nodes owned by `expr`.
std::vector<const Expr*> CollectConjuncts(const Expr* expr);

/// Rebuilds an AND tree from owned conjuncts; returns null for empty input.
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// Visits every expression in the statement (select list, where, group by,
/// having, order by, nested subqueries/CTEs) in a deterministic left-to-right
/// order. `fn` may mutate nodes but not reshape the tree.
void VisitExprs(SelectStmt* stmt, const std::function<void(Expr*)>& fn);
void VisitExprs(Statement* stmt, const std::function<void(Expr*)>& fn);
void VisitExpr(Expr* expr, const std::function<void(Expr*)>& fn);

}  // namespace chrono::sql

#endif  // CHRONOCACHE_SQL_AST_H_
