#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"

namespace chrono::sql {

namespace {

/// Recursive-descent parser over the token stream. Methods return
/// Result<...>; the cursor only advances on successful matches.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> ParseStatement() {
    auto stmt = std::make_unique<Statement>();
    if (Check("SELECT") || Check("WITH")) {
      stmt->kind = Statement::Kind::kSelect;
      CHRONO_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
    } else if (Check("INSERT")) {
      stmt->kind = Statement::Kind::kInsert;
      CHRONO_ASSIGN_OR_RETURN(stmt->insert, ParseInsert());
    } else if (Check("UPDATE")) {
      stmt->kind = Statement::Kind::kUpdate;
      CHRONO_ASSIGN_OR_RETURN(stmt->update, ParseUpdate());
    } else if (Check("DELETE")) {
      stmt->kind = Statement::Kind::kDelete;
      CHRONO_ASSIGN_OR_RETURN(stmt->del, ParseDelete());
    } else if (Check("CREATE")) {
      stmt->kind = Statement::Kind::kCreateTable;
      CHRONO_ASSIGN_OR_RETURN(stmt->create, ParseCreateTable());
    } else {
      return Err("expected SELECT, WITH, INSERT, UPDATE or DELETE");
    }
    if (Peek().kind != Token::Kind::kEnd) {
      return Err("unexpected trailing tokens");
    }
    return stmt;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    auto stmt = std::make_unique<SelectStmt>();
    if (Match("WITH")) {
      while (true) {
        CteDef cte;
        CHRONO_ASSIGN_OR_RETURN(cte.name, ExpectIdentifier());
        CHRONO_RETURN_NOT_OK(Expect("AS"));
        CHRONO_RETURN_NOT_OK(ExpectSymbol("("));
        CHRONO_ASSIGN_OR_RETURN(cte.query, ParseSelectStmt());
        CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
        stmt->ctes.push_back(std::move(cte));
        if (!MatchSymbol(",")) break;
      }
    }
    CHRONO_RETURN_NOT_OK(Expect("SELECT"));
    stmt->distinct = Match("DISTINCT");
    while (true) {
      SelectItem item;
      CHRONO_ASSIGN_OR_RETURN(item, ParseSelectItem());
      stmt->items.push_back(std::move(item));
      if (!MatchSymbol(",")) break;
    }
    if (Match("FROM")) {
      CHRONO_ASSIGN_OR_RETURN(stmt->from, ParseTableRef(/*allow_lateral=*/false));
      while (true) {
        if (MatchSymbol(",")) {
          JoinClause join;
          join.type = JoinClause::Type::kCross;
          CHRONO_ASSIGN_OR_RETURN(join.ref, ParseTableRef(true));
          stmt->joins.push_back(std::move(join));
          continue;
        }
        bool left = false;
        if (Check("LEFT")) {
          left = true;
          Advance();
          CHRONO_RETURN_NOT_OK(Expect("JOIN"));
        } else if (Check("INNER")) {
          Advance();
          CHRONO_RETURN_NOT_OK(Expect("JOIN"));
        } else if (Check("JOIN")) {
          Advance();
        } else if (Check("CROSS")) {
          Advance();
          CHRONO_RETURN_NOT_OK(Expect("JOIN"));
          JoinClause join;
          join.type = JoinClause::Type::kCross;
          CHRONO_ASSIGN_OR_RETURN(join.ref, ParseTableRef(true));
          stmt->joins.push_back(std::move(join));
          continue;
        } else {
          break;
        }
        JoinClause join;
        join.type = left ? JoinClause::Type::kLeft : JoinClause::Type::kInner;
        CHRONO_ASSIGN_OR_RETURN(join.ref, ParseTableRef(true));
        CHRONO_RETURN_NOT_OK(Expect("ON"));
        CHRONO_ASSIGN_OR_RETURN(join.on, ParseExpr());
        stmt->joins.push_back(std::move(join));
      }
    }
    if (Match("WHERE")) {
      CHRONO_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (Check("GROUP")) {
      Advance();
      CHRONO_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        ExprPtr e;
        CHRONO_ASSIGN_OR_RETURN(e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (!MatchSymbol(",")) break;
      }
    }
    if (Match("HAVING")) {
      CHRONO_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (Check("ORDER")) {
      Advance();
      CHRONO_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        OrderItem item;
        CHRONO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Match("DESC")) {
          item.desc = true;
        } else {
          Match("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!MatchSymbol(",")) break;
      }
    }
    if (Match("LIMIT")) {
      const Token& t = Peek();
      if (t.kind != Token::Kind::kInt) return Err("expected integer after LIMIT");
      stmt->limit = t.int_value;
      Advance();
    }
    return stmt;
  }

 private:
  // ---- token plumbing -------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool Check(std::string_view kw) const { return Peek().IsKeyword(kw); }
  bool Match(std::string_view kw) {
    if (Check(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool CheckSymbol(std::string_view sym) const { return Peek().IsSymbol(sym); }
  bool MatchSymbol(std::string_view sym) {
    if (CheckSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(std::string_view kw) {
    if (!Match(kw)) {
      return Status::ParseError("expected " + std::string(kw) + " near '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!MatchSymbol(sym)) {
      return Status::ParseError("expected '" + std::string(sym) + "' near '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    const Token& t = Peek();
    if (t.kind != Token::Kind::kIdentifier) {
      return Err("expected identifier, found '" + t.text + "'");
    }
    std::string name = t.text;
    Advance();
    return name;
  }
  Status Err(std::string msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset));
  }

  // ---- grammar ---------------------------------------------------------

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (CheckSymbol("*")) {
      Advance();
      item.is_star = true;
      return item;
    }
    // alias.* form
    if (Peek().kind == Token::Kind::kIdentifier && Peek(1).IsSymbol(".") &&
        Peek(2).IsSymbol("*")) {
      item.is_star = true;
      item.star_qualifier = Peek().text;
      Advance();
      Advance();
      Advance();
      return item;
    }
    CHRONO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (Match("AS")) {
      CHRONO_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
    } else if (Peek().kind == Token::Kind::kIdentifier) {
      // Bare alias (SELECT a b FROM t).
      item.alias = Peek().text;
      Advance();
    }
    return item;
  }

  Result<TableRef> ParseTableRef(bool allow_lateral) {
    TableRef ref;
    if (allow_lateral && Match("LATERAL")) {
      CHRONO_RETURN_NOT_OK(ExpectSymbol("("));
      ref.kind = TableRef::Kind::kLateralSubquery;
      CHRONO_ASSIGN_OR_RETURN(ref.subquery, ParseSelectStmt());
      CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
    } else if (CheckSymbol("(")) {
      Advance();
      ref.kind = TableRef::Kind::kSubquery;
      CHRONO_ASSIGN_OR_RETURN(ref.subquery, ParseSelectStmt());
      CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
    } else {
      ref.kind = TableRef::Kind::kTable;
      CHRONO_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier());
    }
    if (Match("AS")) {
      CHRONO_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().kind == Token::Kind::kIdentifier) {
      ref.alias = Peek().text;
      Advance();
    }
    if (ref.kind != TableRef::Kind::kTable && ref.alias.empty()) {
      return Err("derived table requires an alias");
    }
    return ref;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ExprPtr lhs;
    CHRONO_ASSIGN_OR_RETURN(lhs, ParseAnd());
    while (Match("OR")) {
      ExprPtr rhs;
      CHRONO_ASSIGN_OR_RETURN(rhs, ParseAnd());
      lhs = Expr::MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ExprPtr lhs;
    CHRONO_ASSIGN_OR_RETURN(lhs, ParseNot());
    while (Match("AND")) {
      ExprPtr rhs;
      CHRONO_ASSIGN_OR_RETURN(rhs, ParseNot());
      lhs = Expr::MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Match("NOT")) {
      ExprPtr operand;
      CHRONO_ASSIGN_OR_RETURN(operand, ParseNot());
      return Expr::MakeUnary(UnOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ExprPtr lhs;
    CHRONO_ASSIGN_OR_RETURN(lhs, ParseAdditive());
    // IS [NOT] NULL
    if (Match("IS")) {
      bool neg = Match("NOT");
      CHRONO_RETURN_NOT_OK(Expect("NULL"));
      return Expr::MakeIsNull(std::move(lhs), neg);
    }
    // [NOT] IN (...) / BETWEEN a AND b
    bool neg = false;
    if (Check("NOT") && (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN"))) {
      neg = true;
      Advance();
    }
    if (Match("IN")) {
      CHRONO_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprPtr> list;
      while (true) {
        ExprPtr e;
        CHRONO_ASSIGN_OR_RETURN(e, ParseExpr());
        list.push_back(std::move(e));
        if (!MatchSymbol(",")) break;
      }
      CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
      return Expr::MakeInList(std::move(lhs), std::move(list), neg);
    }
    if (Match("BETWEEN")) {
      ExprPtr lo;
      CHRONO_ASSIGN_OR_RETURN(lo, ParseAdditive());
      CHRONO_RETURN_NOT_OK(Expect("AND"));
      ExprPtr hi;
      CHRONO_ASSIGN_OR_RETURN(hi, ParseAdditive());
      // Desugar: lhs >= lo AND lhs <= hi (negated with NOT wrapper).
      ExprPtr ge = Expr::MakeBinary(BinOp::kGe, lhs->Clone(), std::move(lo));
      ExprPtr le = Expr::MakeBinary(BinOp::kLe, std::move(lhs), std::move(hi));
      ExprPtr both =
          Expr::MakeBinary(BinOp::kAnd, std::move(ge), std::move(le));
      if (neg) return Expr::MakeUnary(UnOp::kNot, std::move(both));
      return both;
    }
    static const std::pair<const char*, BinOp> kOps[] = {
        {"=", BinOp::kEq},  {"<>", BinOp::kNe}, {"<=", BinOp::kLe},
        {">=", BinOp::kGe}, {"<", BinOp::kLt},  {">", BinOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (MatchSymbol(sym)) {
        ExprPtr rhs;
        CHRONO_ASSIGN_OR_RETURN(rhs, ParseAdditive());
        return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    ExprPtr lhs;
    CHRONO_ASSIGN_OR_RETURN(lhs, ParseMultiplicative());
    while (true) {
      BinOp op;
      if (MatchSymbol("+")) {
        op = BinOp::kAdd;
      } else if (MatchSymbol("-")) {
        op = BinOp::kSub;
      } else if (MatchSymbol("||")) {
        // String concatenation desugars to concat(lhs, rhs).
        ExprPtr rhs;
        CHRONO_ASSIGN_OR_RETURN(rhs, ParseMultiplicative());
        std::vector<ExprPtr> args;
        args.push_back(std::move(lhs));
        args.push_back(std::move(rhs));
        lhs = Expr::MakeFuncCall("concat", std::move(args));
        continue;
      } else {
        break;
      }
      ExprPtr rhs;
      CHRONO_ASSIGN_OR_RETURN(rhs, ParseMultiplicative());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    ExprPtr lhs;
    CHRONO_ASSIGN_OR_RETURN(lhs, ParseUnary());
    while (true) {
      BinOp op;
      if (MatchSymbol("*")) {
        op = BinOp::kMul;
      } else if (MatchSymbol("/")) {
        op = BinOp::kDiv;
      } else {
        break;
      }
      ExprPtr rhs;
      CHRONO_ASSIGN_OR_RETURN(rhs, ParseUnary());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchSymbol("-")) {
      ExprPtr operand;
      CHRONO_ASSIGN_OR_RETURN(operand, ParseUnary());
      return Expr::MakeUnary(UnOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case Token::Kind::kInt: {
        auto e = Expr::MakeLiteral(Value::Int(t.int_value));
        Advance();
        return e;
      }
      case Token::Kind::kDouble: {
        auto e = Expr::MakeLiteral(Value::Double(t.double_value));
        Advance();
        return e;
      }
      case Token::Kind::kString: {
        auto e = Expr::MakeLiteral(Value::String(t.text));
        Advance();
        return e;
      }
      case Token::Kind::kKeyword: {
        if (t.text == "CASE") {
          Advance();
          std::vector<ExprPtr> branches;
          while (Match("WHEN")) {
            ExprPtr cond;
            CHRONO_ASSIGN_OR_RETURN(cond, ParseExpr());
            CHRONO_RETURN_NOT_OK(Expect("THEN"));
            ExprPtr value;
            CHRONO_ASSIGN_OR_RETURN(value, ParseExpr());
            branches.push_back(std::move(cond));
            branches.push_back(std::move(value));
          }
          if (branches.empty()) return Err("CASE requires at least one WHEN");
          ExprPtr otherwise;
          if (Match("ELSE")) {
            CHRONO_ASSIGN_OR_RETURN(otherwise, ParseExpr());
          }
          CHRONO_RETURN_NOT_OK(Expect("END"));
          return Expr::MakeCase(std::move(branches), std::move(otherwise));
        }
        if (t.text == "NULL") {
          Advance();
          return Expr::MakeLiteral(Value::Null());
        }
        if (t.text == "TRUE") {
          Advance();
          return Expr::MakeLiteral(Value::Int(1));
        }
        if (t.text == "FALSE") {
          Advance();
          return Expr::MakeLiteral(Value::Int(0));
        }
        return Err("unexpected keyword '" + t.text + "' in expression");
      }
      case Token::Kind::kSymbol: {
        if (t.text == "(") {
          Advance();
          ExprPtr inner;
          CHRONO_ASSIGN_OR_RETURN(inner, ParseExpr());
          CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        if (t.text == "?") {
          Advance();
          return Expr::MakeParam(next_param_index_++);
        }
        return Err("unexpected symbol '" + t.text + "' in expression");
      }
      case Token::Kind::kIdentifier: {
        std::string first = t.text;
        // Function call?
        if (Peek(1).IsSymbol("(")) {
          Advance();  // name
          Advance();  // (
          if (first == "row_number") {
            CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
            CHRONO_RETURN_NOT_OK(Expect("OVER"));
            CHRONO_RETURN_NOT_OK(ExpectSymbol("("));
            CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
            return Expr::MakeRowNumber();
          }
          std::vector<ExprPtr> args;
          if (!CheckSymbol(")")) {
            // COUNT(*) special case.
            if (CheckSymbol("*")) {
              Advance();
              args.push_back(Expr::MakeStar());
            } else {
              while (true) {
                ExprPtr e;
                CHRONO_ASSIGN_OR_RETURN(e, ParseExpr());
                args.push_back(std::move(e));
                if (!MatchSymbol(",")) break;
              }
            }
          }
          CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
          return Expr::MakeFuncCall(first, std::move(args));
        }
        Advance();
        if (MatchSymbol(".")) {
          std::string col;
          CHRONO_ASSIGN_OR_RETURN(col, ExpectIdentifier());
          return Expr::MakeColumnRef(first, col);
        }
        return Expr::MakeColumnRef("", first);
      }
      case Token::Kind::kEnd:
        return Err("unexpected end of input in expression");
    }
    return Err("unexpected token in expression");
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    CHRONO_RETURN_NOT_OK(Expect("INSERT"));
    CHRONO_RETURN_NOT_OK(Expect("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    CHRONO_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    if (MatchSymbol("(")) {
      while (true) {
        std::string col;
        CHRONO_ASSIGN_OR_RETURN(col, ExpectIdentifier());
        stmt->columns.push_back(std::move(col));
        if (!MatchSymbol(",")) break;
      }
      CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    CHRONO_RETURN_NOT_OK(Expect("VALUES"));
    while (true) {
      CHRONO_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      while (true) {
        ExprPtr e;
        CHRONO_ASSIGN_OR_RETURN(e, ParseExpr());
        row.push_back(std::move(e));
        if (!MatchSymbol(",")) break;
      }
      CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
      if (!MatchSymbol(",")) break;
    }
    return stmt;
  }

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    CHRONO_RETURN_NOT_OK(Expect("UPDATE"));
    auto stmt = std::make_unique<UpdateStmt>();
    CHRONO_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    CHRONO_RETURN_NOT_OK(Expect("SET"));
    while (true) {
      std::string col;
      CHRONO_ASSIGN_OR_RETURN(col, ExpectIdentifier());
      CHRONO_RETURN_NOT_OK(ExpectSymbol("="));
      ExprPtr e;
      CHRONO_ASSIGN_OR_RETURN(e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
      if (!MatchSymbol(",")) break;
    }
    if (Match("WHERE")) {
      CHRONO_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTable() {
    CHRONO_RETURN_NOT_OK(Expect("CREATE"));
    CHRONO_RETURN_NOT_OK(Expect("TABLE"));
    auto stmt = std::make_unique<CreateTableStmt>();
    CHRONO_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    CHRONO_RETURN_NOT_OK(ExpectSymbol("("));
    while (true) {
      CreateTableStmt::Column col;
      CHRONO_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      std::string type_name;
      CHRONO_ASSIGN_OR_RETURN(type_name, ExpectIdentifier());
      if (type_name == "int" || type_name == "bigint" ||
          type_name == "integer") {
        col.type = Value::Type::kInt;
      } else if (type_name == "double" || type_name == "float" ||
                 type_name == "decimal" || type_name == "real") {
        col.type = Value::Type::kDouble;
      } else if (type_name == "text" || type_name == "varchar" ||
                 type_name == "string" || type_name == "char") {
        col.type = Value::Type::kString;
      } else {
        return Err("unknown column type '" + type_name + "'");
      }
      // Optional length suffix, e.g. varchar(32).
      if (MatchSymbol("(")) {
        if (Peek().kind != Token::Kind::kInt) {
          return Err("expected integer length");
        }
        Advance();
        CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      stmt->columns.push_back(std::move(col));
      if (!MatchSymbol(",")) break;
    }
    CHRONO_RETURN_NOT_OK(ExpectSymbol(")"));
    return stmt;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    CHRONO_RETURN_NOT_OK(Expect("DELETE"));
    CHRONO_RETURN_NOT_OK(Expect("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    CHRONO_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    if (Match("WHERE")) {
      CHRONO_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_index_ = 0;
};

}  // namespace

Result<std::unique_ptr<Statement>> Parse(std::string_view sql) {
  CHRONO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql) {
  CHRONO_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, Parse(sql));
  if (stmt->kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("statement is not a SELECT");
  }
  return std::move(stmt->select);
}

}  // namespace chrono::sql
