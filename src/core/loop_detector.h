#ifndef CHRONOCACHE_CORE_LOOP_DETECTOR_H_
#define CHRONOCACHE_CORE_LOOP_DETECTOR_H_

#include <vector>

#include "core/dependency_graph.h"
#include "core/param_mapper.h"
#include "core/template_registry.h"
#include "core/transition_graph.h"

namespace chrono::core {

/// Tarjan's strongly-connected-components algorithm [41] over an explicit
/// edge list. Returns components in reverse topological order; every node
/// appears in exactly one component (singletons included).
std::vector<std::vector<TemplateId>> StronglyConnectedComponents(
    const std::vector<TemplateId>& nodes,
    const std::vector<std::pair<TemplateId, TemplateId>>& edges);

/// \brief Extracts dependency graphs from a client's query transition graph
/// and confirmed parameter mappings — both the simple chains of §2.1 and
/// the loop structures of §2.2 (SCCs over the τ-pruned graph whose nodes
/// each take a mapping from a source query outside the component).
class GraphExtractor {
 public:
  struct Options {
    double tau = 0.8;
    /// Minimum occurrences of the destination template before extraction;
    /// keeps one-off coincidental matches out of the dependency table.
    uint64_t min_occurrences = 3;
    /// Disable to model Apollo/Scalpel variants that cannot exploit loops.
    bool enable_loops = true;
    /// Disable to model Scalpel variants without per-loop-constant support:
    /// a loop whose member needs an unmapped constant is rejected outright.
    bool enable_loop_constants = true;
    /// Safety cap on graph size.
    size_t max_nodes = 8;
  };

  explicit GraphExtractor(Options options) : options_(options) {}

  /// Extracts all currently visible dependency graphs for one client.
  std::vector<DependencyGraph> Extract(const TransitionGraph& transitions,
                                       const ParamMapper& mapper,
                                       const TemplateRegistry& registry) const;

 private:
  void ExtractSimple(const TransitionGraph& transitions,
                     const ParamMapper& mapper,
                     const TemplateRegistry& registry,
                     std::vector<DependencyGraph>* out) const;
  void ExtractLoops(const TransitionGraph& transitions,
                    const ParamMapper& mapper,
                    const TemplateRegistry& registry,
                    std::vector<DependencyGraph>* out) const;

  Options options_;
};

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_LOOP_DETECTOR_H_
