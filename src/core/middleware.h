#ifndef CHRONOCACHE_CORE_MIDDLEWARE_H_
#define CHRONOCACHE_CORE_MIDDLEWARE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/lru_cache.h"
#include "cache/lru_map.h"
#include "core/combiner_lateral.h"
#include "core/dependency_manager.h"
#include "core/loop_detector.h"
#include "core/param_mapper.h"
#include "core/result_splitter.h"
#include "core/session.h"
#include "core/template_registry.h"
#include "core/transition_graph.h"
#include "db/database.h"
#include "net/fault_injector.h"
#include "net/latency_model.h"
#include "net/retry_policy.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/resource.h"

namespace chrono::core {

/// \brief The systems compared in the paper's evaluation (§6), implemented
/// as configurations of the same middleware — exactly the paper's
/// apples-to-apples methodology.
enum class SystemMode {
  kLru,       // plain LRU result cache, no prediction
  kApollo,    // online learning, sequential (uncombined) predictions, no loops
  kScalpelE,  // combining + loops, no per-loop constants, per-client cache
  kScalpelCC, // Scalpel-E plus ChronoCache's shared client caching
  kChrono,    // the full system
};

const char* SystemModeName(SystemMode mode);

/// \brief Tuning and ablation knobs for one middleware node.
struct MiddlewareConfig {
  SystemMode mode = SystemMode::kChrono;
  double tau = 0.8;                           // temporal correlation threshold
  SimTime delta_t = 200 * kMicrosPerMilli;    // Δt correlation window
  size_t cache_bytes = 64ull << 20;
  size_t template_cache_entries = 512;        // memoized AnalyzeQuery results
  int node_id = 0;
  bool multi_node = false;                    // §5.2 multi-node session rule
  int workers = 8;                            // middleware worker pool
  uint64_t min_occurrences = 3;               // extraction threshold
  int min_validations = 2;                    // mapping confirmation threshold
  size_t extract_every = 4;                   // model-mining cadence
  bool enable_subsumption = true;             // §3 redundancy elimination
  bool enable_redundancy_check = true;        // §5.1 cached-prediction skip

  // Fault tolerance. Idempotent demand reads retry transport failures with
  // full-jitter exponential backoff in virtual time; writes and prefetch
  // never auto-retry. Backoff jitter is derived deterministically from
  // retry_seed so repeated runs replay byte-identical.
  net::RetryOptions retry;
  bool enable_retries = true;
  uint64_t retry_seed = 42;

  // Capability switches derived from `mode` by Finalize(); individual
  // flags can be overridden afterwards for ablation studies.
  bool enable_learning = true;
  bool enable_loops = true;
  bool enable_loop_constants = true;
  bool enable_combining = true;
  bool share_across_clients = true;

  /// Applies the capability profile of `mode` to the switches.
  void Finalize();
};

/// \brief The simulated remote database server: the shared SQL engine
/// fronted by a WAN link and a finite worker pool. Statements execute at
/// dispatch time (virtual order) and are charged service time proportional
/// to rows touched.
class RemoteDbServer {
 public:
  RemoteDbServer(EventQueue* events, db::Database* database,
                 const net::LatencyModel& latency, int workers);

  using DbCallback = std::function<void(SimTime, Result<db::ExecOutcome>)>;

  /// A request payload: the wire text plus, optionally, the parse tree it
  /// was rendered from. When `ast` is present the server executes it
  /// directly — the combined queries built by the combiners never get
  /// re-parsed (`sql` remains the wire-protocol/debugging form).
  struct DbRequest {
    std::string sql;
    std::shared_ptr<const sql::Statement> ast;
  };

  /// Submits SQL text from a middleware node; `done` fires when the
  /// response arrives back at the node (WAN + queue + service).
  void Submit(std::string sql_text, DbCallback done);
  void Submit(DbRequest request, DbCallback done);

  /// Forces AST-carrying requests through the text round-trip (parse of
  /// `sql`) instead of the handoff path. Used by tests to cross-validate
  /// the two execution paths.
  void set_text_roundtrip(bool v) { text_roundtrip_ = v; }

  /// Attaches a fault injector consulted once per submission (non-owning;
  /// must outlive the server, or be detached with nullptr). An injected
  /// failure costs the caller a full WAN round trip and delivers
  /// Status::Unavailable; a latency spike stretches the statement's
  /// service time at dispatch.
  void SetFaultInjector(net::FaultInjector* injector) { fault_ = injector; }

  uint64_t requests() const { return requests_; }
  uint64_t rows_scanned() const { return rows_scanned_; }
  /// Requests executed via a handed-off AST (no server-side parse).
  uint64_t ast_handoffs() const { return ast_handoffs_; }
  SimTime busy_time() const { return busy_time_; }

 private:
  struct Job {
    DbRequest request;
    DbCallback done;
    double service_multiplier = 1.0;  // >1 under an injected latency spike
  };
  void TryDispatch();

  EventQueue* events_;
  db::Database* database_;
  net::LatencyModel latency_;
  int workers_;
  int busy_ = 0;
  bool text_roundtrip_ = false;
  net::FaultInjector* fault_ = nullptr;  // non-owning; null = healthy
  std::deque<Job> waiting_;
  uint64_t requests_ = 0;
  uint64_t rows_scanned_ = 0;
  uint64_t ast_handoffs_ = 0;
  SimTime busy_time_ = 0;
};

/// \brief Per-node middleware metrics surfaced to the experiment harness.
struct MiddlewareMetrics {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t cache_hits = 0;          // client reads answered from the cache
  uint64_t cache_rejects = 0;       // present but failed session/security
  uint64_t remote_plain = 0;        // uncombined remote reads
  uint64_t remote_combined = 0;     // combined queries submitted
  uint64_t predictions_cached = 0;  // result sets cached ahead of time
  uint64_t prediction_fallbacks = 0;  // combined result missed our query
  uint64_t redundant_skips = 0;     // §5.1 suppressed combinations
  uint64_t inflight_joins = 0;      // §5.1 duplicate-request coalescing
  uint64_t sequential_prefetches = 0;  // Apollo-style predictions
  uint64_t cascaded_fires = 0;      // graphs fired by split_mark_text_avail
  uint64_t backend_retries = 0;     // demand-read retries after failures

  double CacheHitRate() const {
    return reads == 0 ? 0 : static_cast<double>(cache_hits) /
                                static_cast<double>(reads);
  }
};

/// \brief One ChronoCache middleware node (Fig. 2): accepts client query
/// text, learns the client's query patterns online, predictively combines
/// and prefetches query results, and serves results from the edge cache
/// under session semantics. Runs entirely in virtual time on the shared
/// EventQueue.
class Middleware {
 public:
  using ResponseCallback =
      std::function<void(SimTime now, const Result<sql::ResultSet>&)>;

  Middleware(EventQueue* events, RemoteDbServer* remote,
             const net::LatencyModel& latency, MiddlewareConfig config);
  ~Middleware();

  /// Client entry point: submit one SQL statement. `done` fires when the
  /// response reaches the client (includes all edge/WAN latency).
  void SubmitQuery(ClientId client, int security_group, std::string sql_text,
                   ResponseCallback done);

  const MiddlewareMetrics& metrics() const { return metrics_; }
  const cache::LruCache& cache() const { return *cache_; }
  const MiddlewareConfig& config() const { return config_; }
  SessionManager* sessions() { return &sessions_; }

  /// Template (AnalyzeQuery memoization) cache hit/miss counters.
  const CacheCounters& template_cache_counters() const {
    return template_cache_.counters();
  }

  /// Registers pull-mode counters/gauges mirroring MiddlewareMetrics and
  /// the template/result caches under the same metric names the runtime
  /// ChronoServer uses, so the simulator and the wall-clock node export
  /// the same shapes. The simulator is single-threaded: snapshot the
  /// registry between simulation steps, not concurrently with them. The
  /// registry must outlive this middleware (callbacks are unregistered in
  /// the destructor).
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// Mirrors the runtime server's prefetch-lifecycle journal events —
  /// plan mined, combined issued/fetched, entries installed / used /
  /// evicted / invalidated, request outcomes — with *virtual* timestamps,
  /// so chrono_audit reads simulator journals exactly like serve_bench
  /// ones. Request events carry kJournalFlagNoLatency (virtual stage
  /// times are not wall-clock). The journal must outlive the middleware;
  /// the simulator is single-threaded, so a drain_interval_ms of 0 with
  /// manual Drain() between steps is the natural configuration.
  void AttachJournal(obs::EventJournal* journal);

  /// Dependency-graph count across clients (learning progress probe).
  size_t TotalGraphs() const;

  /// Graphviz renderings of one client's learned dependency graphs, with
  /// nodes labelled by their template text (inspection/debugging surface).
  std::vector<std::string> DumpDependencyGraphs(ClientId client) const;

 private:
  struct ClientState {
    std::unique_ptr<TransitionGraph> transitions;
    ParamMapper mapper;
    DependencyManager manager;
    std::map<TemplateId, std::vector<sql::Value>> latest_params;
    uint64_t observations = 0;

    ClientState(const MiddlewareConfig& config);
  };

  struct PendingRequest {
    ClientId client;
    ResponseCallback done;
  };

  /// Bookkeeping for an in-flight request key: what query it stands for.
  struct InflightInfo {
    TemplateId tmpl = 0;
    std::string bound_text;
    int security_group = 0;
  };

  ClientState* StateFor(ClientId client);
  std::string CacheKey(ClientId client, const std::string& bound_text) const;

  void Process(SimTime now, ClientId client, int security_group,
               std::string sql_text, ResponseCallback done);
  void HandleWrite(ClientId client, sql::ParsedQuery parsed,
                   ResponseCallback done);
  void HandleRead(SimTime now, ClientId client, int security_group,
                  sql::ParsedQuery parsed, ResponseCallback done);

  /// Fires one ready dependency graph (combined strategy). Returns true if
  /// a combined query was launched and will satisfy `wait_key` (when
  /// non-empty the arriving client waits for it). `cascade_depth` tracks
  /// Algorithm 1's split_mark_text_avail recursion: prefetched results may
  /// make further graphs ready (§5 asynchronous execution), bounded to
  /// avoid self-sustaining cascades.
  bool FireGraph(ClientId client, int security_group,
                 const DependencyGraph& graph, const std::string& wait_key,
                 int cascade_depth = 0);

  /// Algorithm 1 line 7: a prefetched result's text/params arrived — mark
  /// readiness and fire any graphs it completed.
  void SplitMarkTextAvail(ClientId client, int security_group,
                          TemplateId tmpl,
                          const std::vector<sql::Value>& params,
                          int cascade_depth);

  /// Apollo-style sequential prediction: uncombined background queries.
  void FireSequential(ClientId client, int security_group,
                      const DependencyGraph& graph);

  /// §5.1: true if every result the graph would prefetch is already cached.
  bool PredictionsCached(ClientId client, int security_group,
                         const DependencyGraph& graph);

  /// Answers (or re-issues) the waiters parked under an in-flight key
  /// after a combined query completes.
  void ResolveInflight(const std::string& key);

  /// Executes `sql` remotely and caches it under `key` for the client.
  void RemotePlain(ClientId client, int security_group, TemplateId tmpl,
                   std::string bound_text, ResponseCallback done);

  /// One attempt (1-based) of the plain demand fetch for `key`. Transport
  /// failures of this idempotent read reschedule the fetch after a
  /// full-jitter backoff while the waiters stay parked under the in-flight
  /// key; retries exhausted (or retries disabled) delivers the error.
  void IssuePlainFetch(ClientId client, int security_group, TemplateId tmpl,
                       std::string bound_text, std::string key, int attempts);

  /// Ships the shared immutable payload to the client (the one copy into
  /// the client's Result happens at the LAN edge delivery, never here).
  void Respond(ClientId client, TemplateId tmpl,
               std::shared_ptr<const sql::ResultSet> result,
               const ResponseCallback& done);

  /// Cache write with session/security tagging. `prefetch_plan`/
  /// `prefetch_src` tag predictively installed entries (zero for demand
  /// fills) for hit attribution and the lifecycle journal. The payload is
  /// adopted as-is: the caller's shared_ptr and the cached entry alias
  /// one immutable ResultSet.
  void CachePut(ClientId client, int security_group, TemplateId tmpl,
                const std::string& bound_text,
                std::shared_ptr<const sql::ResultSet> result,
                uint64_t prefetch_plan = 0, uint64_t prefetch_src = 0);

  /// Cache read honouring session semantics + security groups. Returns
  /// nullptr on miss or rejection.
  const cache::CachedResult* CacheGet(ClientId client, int security_group,
                                      const std::string& bound_text);

  void Learn(SimTime now, ClientId client, const sql::ParsedQuery& parsed);

  /// Records one journal event stamped with the current virtual time (no
  /// journal attached: no-op). ts 0 would make the journal substitute its
  /// wall clock, so virtual time 0 is nudged to 1.
  void Journal(obs::JournalEvent event);
  /// kRequest emission helper shared by the response sites.
  void JournalRequest(ClientId client, TemplateId tmpl,
                      obs::TraceOutcome outcome, uint64_t prefetch_plan = 0,
                      uint64_t prefetch_src = 0);

  EventQueue* events_;
  RemoteDbServer* remote_;
  net::LatencyModel latency_;
  MiddlewareConfig config_;
  // Memoized AnalyzeQuery: repeated query texts skip lexing, parsing, and
  // template extraction entirely (the per-query middleware hot path).
  cache::LruMap<std::string, sql::ParsedQuery> template_cache_;
  std::unique_ptr<cache::LruCache> cache_;
  Resource mw_pool_;
  SessionManager sessions_;
  TemplateRegistry registry_;
  GraphExtractor extractor_;
  std::unordered_map<ClientId, std::unique_ptr<ClientState>> clients_;
  // §5.1 duplicate-request coalescing: cache key -> waiters.
  std::unordered_map<std::string, std::vector<PendingRequest>> inflight_;
  std::unordered_map<std::string, InflightInfo> inflight_tmpl_;
  // Sequential (Apollo-style) predictions deferred until the in-flight
  // query they bind from completes: cache key -> (security group, graph).
  std::unordered_map<std::string, std::vector<std::pair<int, DependencyGraph>>>
      deferred_seq_;
  MiddlewareMetrics metrics_;
  obs::MetricsRegistry* metrics_registry_ = nullptr;  // null until attached
  obs::EventJournal* journal_ = nullptr;              // null until attached
  uint64_t next_plan_id_ = 1;
  net::RetryPolicy retry_;        // schedule for idempotent demand reads
  uint64_t retry_ordinal_ = 0;    // deterministic backoff-jitter counter
};

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_MIDDLEWARE_H_
