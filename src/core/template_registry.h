#ifndef CHRONOCACHE_CORE_TEMPLATE_REGISTRY_H_
#define CHRONOCACHE_CORE_TEMPLATE_REGISTRY_H_

#include <memory>
#include <unordered_map>

#include "core/transition_graph.h"
#include "sql/template.h"

namespace chrono::core {

/// \brief Shared store of query templates seen by a middleware node, keyed
/// by template id. Templates are immutable once registered.
class TemplateRegistry {
 public:
  /// Registers (or re-uses) the template; returns its id.
  TemplateId Register(std::shared_ptr<const sql::QueryTemplate> tmpl) {
    TemplateId id = tmpl->id;
    templates_.emplace(id, std::move(tmpl));
    return id;
  }

  /// Returns the template or nullptr.
  const sql::QueryTemplate* Find(TemplateId id) const {
    auto it = templates_.find(id);
    return it == templates_.end() ? nullptr : it->second.get();
  }

  size_t size() const { return templates_.size(); }

 private:
  std::unordered_map<TemplateId, std::shared_ptr<const sql::QueryTemplate>>
      templates_;
};

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_TEMPLATE_REGISTRY_H_
