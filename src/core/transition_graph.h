#ifndef CHRONOCACHE_CORE_TRANSITION_GRAPH_H_
#define CHRONOCACHE_CORE_TRANSITION_GRAPH_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"

namespace chrono::core {

using TemplateId = uint64_t;

/// \brief A client's query transition graph (§2, after Apollo): nodes are
/// query templates; a directed edge (A, B) is labelled with the probability
/// that B is submitted within Δt of an occurrence of A. Probabilities are
/// estimated online as (#occurrences of A followed by ≥1 B within Δt) /
/// (#occurrences of A), matching the worked example in Fig. 3 (the Q2→Q2
/// self-edge has probability 99/100 after a 100-iteration loop).
class TransitionGraph {
 public:
  /// `delta_t` is the temporal-correlation window; `window_cap` bounds the
  /// retained occurrence history (memory guard for bursty clients).
  explicit TransitionGraph(SimTime delta_t, size_t window_cap = 64);

  /// Records a query submission at virtual time `now`.
  void Observe(TemplateId tmpl, SimTime now);

  /// P(to within Δt | from), or 0 if `from` was never seen.
  double Probability(TemplateId from, TemplateId to) const;

  uint64_t Occurrences(TemplateId tmpl) const;

  /// Successor templates with edge probability >= tau.
  std::vector<TemplateId> CorrelatedSuccessors(TemplateId from,
                                               double tau) const;

  /// Predecessor templates `p` such that P(tmpl | p) >= tau.
  std::vector<TemplateId> CorrelatedPredecessors(TemplateId tmpl,
                                                 double tau) const;

  /// All nodes ever observed.
  std::vector<TemplateId> Nodes() const;

  /// Directed edges with probability >= tau (the τ-pruned graph that loop
  /// detection runs Tarjan's algorithm over, §2.2).
  std::vector<std::pair<TemplateId, TemplateId>> TauEdges(double tau) const;

 private:
  struct Occurrence {
    TemplateId tmpl;
    SimTime time;
    std::vector<TemplateId> counted;  // successors already credited
  };

  SimTime delta_t_;
  size_t window_cap_;
  std::deque<Occurrence> recent_;
  std::unordered_map<TemplateId, uint64_t> occurrences_;
  // edge counts: from -> (to -> count)
  std::unordered_map<TemplateId, std::unordered_map<TemplateId, uint64_t>>
      edges_;
  // reverse adjacency for predecessor queries
  std::unordered_map<TemplateId, std::vector<TemplateId>> preds_;
};

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_TRANSITION_GRAPH_H_
