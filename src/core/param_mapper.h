#ifndef CHRONOCACHE_CORE_PARAM_MAPPER_H_
#define CHRONOCACHE_CORE_PARAM_MAPPER_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/transition_graph.h"
#include "sql/result_set.h"

namespace chrono::core {

/// \brief Per-client discovery and validation of parameter mappings (§2.1):
/// does the result set of a prior query Qi contain the values used as input
/// parameters of a later query Qj?
///
/// The mapper records the last result set returned for each template and,
/// on each query arrival, matches the query's parameters against columns of
/// recorded results. Loop structures advance a per-(src,dst) row cursor so
/// the i-th issue of Qj after Qi is matched against the i-th row of Qi's
/// result (§2.1). Mappings that ever fail re-validation are blacklisted
/// permanently as coincidental matches; mappings validated at least
/// `min_validations` times are reported as confirmed.
class ParamMapper {
 public:
  struct Mapping {
    TemplateId src = 0;
    std::string src_column;
    int dst_param = 0;
  };

  explicit ParamMapper(int min_validations = 2)
      : min_validations_(min_validations) {}

  /// Records the result set returned for `tmpl` and resets loop cursors
  /// that iterate over it.
  void ObserveResult(TemplateId tmpl, const sql::ResultSet& result);

  /// Processes a query arrival: validates existing candidate mappings into
  /// `dst` and discovers new ones against all recorded result sets.
  void ObserveQuery(TemplateId dst, const std::vector<sql::Value>& params);

  /// Confirmed (validated, non-blacklisted) mappings into `dst`.
  std::vector<Mapping> ConfirmedMappings(TemplateId dst) const;

  /// Parameter positions of `dst` with at least one confirmed mapping.
  std::vector<int> CoveredParams(TemplateId dst) const;

  bool HasResult(TemplateId src) const {
    return last_results_.count(src) > 0;
  }
  const sql::ResultSet* LastResult(TemplateId src) const;

  /// Introspection for tests: number of blacklisted candidates for dst.
  int BlacklistedCount(TemplateId dst) const;

 private:
  struct Candidate {
    TemplateId src = 0;
    int src_column = 0;  // column index in src's result set
    std::string src_column_name;
    int dst_param = 0;
    int validations = 0;
    bool blacklisted = false;
  };

  struct PairKey {
    TemplateId src;
    TemplateId dst;
    bool operator<(const PairKey& o) const {
      if (src != o.src) return src < o.src;
      return dst < o.dst;
    }
  };

  int min_validations_;
  std::unordered_map<TemplateId, sql::ResultSet> last_results_;
  std::map<PairKey, size_t> cursors_;  // next row of src for dst's next issue
  std::unordered_map<TemplateId, std::vector<Candidate>> candidates_;  // by dst
};

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_PARAM_MAPPER_H_
