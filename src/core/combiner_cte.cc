#include "core/combiner_cte.h"

#include <algorithm>
#include <set>

#include "sql/writer.h"

namespace chrono::core {

using sql::BinOp;
using sql::Expr;
using sql::ExprPtr;
using sql::JoinClause;
using sql::SelectStmt;
using sql::TableRef;
using sql::Value;

Result<std::vector<std::string>> TemplateOutputNames(const SelectStmt& stmt) {
  std::vector<std::string> names;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const auto& item = stmt.items[i];
    if (item.is_star) {
      return Status::Unsupported("star select list cannot be combined");
    }
    if (!item.alias.empty()) {
      names.push_back(item.alias);
    } else if (item.expr->kind == Expr::Kind::kColumnRef) {
      names.push_back(item.expr->column);
    } else if (item.expr->kind == Expr::Kind::kFuncCall) {
      names.push_back(item.expr->func_name);
    } else if (item.expr->kind == Expr::Kind::kRowNumber) {
      names.push_back("row_number");
    } else {
      names.push_back("col" + std::to_string(i + 1));
    }
  }
  return names;
}

std::vector<ExprPtr> DecomposeConjuncts(ExprPtr where) {
  std::vector<ExprPtr> out;
  if (!where) return out;
  if (where->kind == Expr::Kind::kBinary && where->bin_op == BinOp::kAnd) {
    auto lhs = DecomposeConjuncts(std::move(where->children[0]));
    auto rhs = DecomposeConjuncts(std::move(where->children[1]));
    for (auto& e : lhs) out.push_back(std::move(e));
    for (auto& e : rhs) out.push_back(std::move(e));
    return out;
  }
  out.push_back(std::move(where));
  return out;
}

void RewriteParams(SelectStmt* stmt,
                   const std::function<void(Expr*)>& replace) {
  sql::VisitExprs(stmt, [&replace](Expr* e) {
    if (e->kind == Expr::Kind::kParam) replace(e);
  });
}

namespace {

bool ContainsParam(const Expr* expr, const std::set<int>& positions) {
  if (expr == nullptr) return false;
  if (expr->kind == Expr::Kind::kParam &&
      positions.count(expr->param_index) > 0) {
    return true;
  }
  for (const auto& c : expr->children) {
    if (ContainsParam(c.get(), positions)) return true;
  }
  return false;
}

bool HasAggregate(const Expr* expr) {
  if (expr == nullptr) return false;
  if (expr->kind == Expr::Kind::kFuncCall &&
      (expr->func_name == "count" || expr->func_name == "sum" ||
       expr->func_name == "avg" || expr->func_name == "min" ||
       expr->func_name == "max")) {
    return true;
  }
  for (const auto& c : expr->children) {
    if (HasAggregate(c.get())) return true;
  }
  return false;
}

/// Is this template's query plain SPJ over base tables?
bool IsPlainSpj(const SelectStmt& stmt) {
  if (!stmt.ctes.empty() || stmt.distinct || !stmt.group_by.empty() ||
      stmt.having || !stmt.order_by.empty() || stmt.limit.has_value()) {
    return false;
  }
  if (stmt.from.kind != TableRef::Kind::kTable) return false;
  for (const auto& join : stmt.joins) {
    if (join.ref.kind != TableRef::Kind::kTable) return false;
  }
  for (const auto& item : stmt.items) {
    if (item.is_star) return false;
    if (HasAggregate(item.expr.get())) return false;
    if (item.expr->kind == Expr::Kind::kRowNumber) return false;
  }
  return true;
}

/// Is `a` an ancestor of `b` (or equal) in the graph's edge relation?
bool IsAncestor(const DependencyGraph& g, TemplateId a, TemplateId b) {
  if (a == b) return true;
  std::vector<TemplateId> work{a};
  std::set<TemplateId> seen;
  while (!work.empty()) {
    TemplateId cur = work.back();
    work.pop_back();
    if (!seen.insert(cur).second) continue;
    for (const auto& e : g.edges) {
      if (e.src != cur) continue;
      if (e.dst == b) return true;
      work.push_back(e.dst);
    }
  }
  return false;
}

}  // namespace

bool CteJoinCombiner::CanHandle(const CombineInput& in) {
  const DependencyGraph& g = *in.graph;
  if (g.DependencyQueries().size() != 1) return false;
  for (TemplateId node : g.nodes) {
    const sql::QueryTemplate* tmpl = in.registry->Find(node);
    if (tmpl == nullptr || tmpl->ast->kind != sql::Statement::Kind::kSelect) {
      return false;
    }
    if (!IsPlainSpj(*tmpl->ast->select)) return false;
    // Parents must form a chain (comparable under the ancestor order);
    // parallel parents need the lateral strategy's row-number join (§4.2).
    std::vector<TemplateId> parents;
    for (const auto& e : g.edges) {
      if (e.dst == node) parents.push_back(e.src);
    }
    for (size_t i = 0; i < parents.size(); ++i) {
      for (size_t j = i + 1; j < parents.size(); ++j) {
        if (!IsAncestor(g, parents[i], parents[j]) &&
            !IsAncestor(g, parents[j], parents[i])) {
          return false;
        }
      }
    }
  }
  return true;
}

Result<CombinedQuery> CteJoinCombiner::Combine(const CombineInput& in) {
  const DependencyGraph& g = *in.graph;
  const TemplateRegistry& registry = *in.registry;

  std::vector<TemplateId> topo = g.TopologicalOrder();
  if (topo.empty()) return Status::InvalidArgument("cyclic dependency graph");

  std::map<TemplateId, size_t> slot_of;
  for (size_t k = 0; k < topo.size(); ++k) slot_of[topo[k]] = k;

  CombinedQuery out;
  // The combined query is assembled directly as an AST; the text form is
  // rendered from it once at the end. The middleware executes the AST, so
  // the combined query is never re-parsed.
  auto outer = std::make_unique<SelectStmt>();
  int next_out_col = 0;

  // Per-slot output aliases (original select items), for join references.
  std::vector<std::vector<std::string>> out_aliases(topo.size());
  std::vector<std::vector<std::string>> out_names(topo.size());

  for (size_t k = 0; k < topo.size(); ++k) {
    TemplateId node = topo[k];
    const sql::QueryTemplate* qt = registry.Find(node);
    if (qt == nullptr) return Status::Internal("template missing from registry");
    auto sel = qt->ast->select->Clone();
    const std::string cte_name = "q" + std::to_string(k + 1);

    CHRONO_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            TemplateOutputNames(*sel));
    out_names[k] = names;

    // Incoming mappings: param position -> (src template, src column).
    std::map<int, std::pair<TemplateId, std::string>> mapped;
    std::vector<int> parent_slots;
    for (const auto& e : g.edges) {
      if (e.dst != node) continue;
      for (const auto& b : e.bindings) {
        mapped.emplace(b.dst_param, std::make_pair(e.src, b.src_column));
      }
      parent_slots.push_back(static_cast<int>(slot_of[e.src]));
    }
    std::sort(parent_slots.begin(), parent_slots.end());
    parent_slots.erase(std::unique(parent_slots.begin(), parent_slots.end()),
                       parent_slots.end());

    std::set<int> mapped_positions;
    for (const auto& [pos, src] : mapped) {
      (void)src;
      mapped_positions.insert(pos);
    }

    // Strip mapped-parameter conjuncts from WHERE; they become join
    // conditions (Algorithm 2 lines 12-14).
    struct JoinCond {
      std::string own_table;
      std::string own_column;
      TemplateId src;
      std::string src_column;
      int param_pos;
    };
    std::vector<JoinCond> join_conds;
    std::vector<ExprPtr> kept;
    for (auto& conj : DecomposeConjuncts(std::move(sel->where))) {
      bool stripped = false;
      if (conj->kind == Expr::Kind::kBinary && conj->bin_op == BinOp::kEq) {
        Expr* lhs = conj->children[0].get();
        Expr* rhs = conj->children[1].get();
        if (lhs->kind != Expr::Kind::kColumnRef) std::swap(lhs, rhs);
        if (lhs->kind == Expr::Kind::kColumnRef &&
            rhs->kind == Expr::Kind::kParam &&
            mapped_positions.count(rhs->param_index) > 0) {
          const auto& [src, src_col] = mapped.at(rhs->param_index);
          join_conds.push_back(JoinCond{lhs->table, lhs->column, src, src_col,
                                        rhs->param_index});
          stripped = true;
        }
      }
      if (!stripped) {
        if (ContainsParam(conj.get(), mapped_positions)) {
          return Status::Unsupported(
              "mapped parameter not strippable as a top-level equality "
              "conjunct");
        }
        kept.push_back(std::move(conj));
      }
    }
    sel->where = sql::CombineConjuncts(std::move(kept));

    // Bind remaining parameters with the latest observed constants.
    const std::vector<Value>* latest = nullptr;
    auto lp_it = in.latest_params->find(node);
    if (lp_it != in.latest_params->end()) latest = &lp_it->second;
    Status bind_status = Status::OK();
    RewriteParams(sel.get(), [&](Expr* e) {
      if (mapped_positions.count(e->param_index) > 0) {
        // Every mapped parameter should have been stripped with its
        // conjunct; one surviving elsewhere means the query shape is not
        // CTE-combinable.
        bind_status = Status::Unsupported(
            "mapped parameter outside a strippable conjunct");
        return;
      }
      if (latest == nullptr ||
          static_cast<size_t>(e->param_index) >= latest->size()) {
        bind_status = Status::InvalidArgument(
            "no observed constant for parameter " +
            std::to_string(e->param_index));
        return;
      }
      e->literal = (*latest)[static_cast<size_t>(e->param_index)];
      e->kind = Expr::Kind::kLiteral;
      e->param_index = -1;
    });
    CHRONO_RETURN_NOT_OK(bind_status);

    // Rewrite the select list with unique aliases (outer references).
    for (size_t i = 0; i < sel->items.size(); ++i) {
      std::string alias = cte_name + "c" + std::to_string(i);
      sel->items[i].alias = alias;
      out_aliases[k].push_back(alias);
    }

    // Candidate key: one rowid per base table the query accesses (§4.1).
    std::vector<std::string> ck_aliases;
    {
      std::vector<std::string> table_aliases;
      table_aliases.push_back(sel->from.EffectiveName());
      for (const auto& join : sel->joins) {
        table_aliases.push_back(join.ref.EffectiveName());
      }
      for (size_t j = 0; j < table_aliases.size(); ++j) {
        std::string alias = cte_name + "ck" + std::to_string(j);
        sql::SelectItem item;
        item.expr = Expr::MakeColumnRef(table_aliases[j], "__rowid");
        item.alias = alias;
        sel->items.push_back(std::move(item));
        ck_aliases.push_back(std::move(alias));
      }
    }

    // Join-condition columns must be exposed by this CTE (line 16).
    std::vector<std::string> jc_aliases;
    for (size_t m = 0; m < join_conds.size(); ++m) {
      const JoinCond& jc = join_conds[m];
      // Reuse an original select item if it is exactly this column ref.
      std::string found;
      for (size_t i = 0; i < out_names[k].size(); ++i) {
        const Expr* e = qt->ast->select->items[i].expr.get();
        if (e->kind == Expr::Kind::kColumnRef && e->column == jc.own_column &&
            (e->table.empty() || jc.own_table.empty() ||
             e->table == jc.own_table)) {
          found = out_aliases[k][i];
          break;
        }
      }
      if (found.empty()) {
        found = cte_name + "jc" + std::to_string(m);
        sql::SelectItem item;
        item.expr = Expr::MakeColumnRef(jc.own_table, jc.own_column);
        item.alias = found;
        sel->items.push_back(std::move(item));
      }
      jc_aliases.push_back(std::move(found));
    }

    // Emit the CTE.
    outer->ctes.push_back(sql::CteDef{cte_name, std::move(sel)});

    // Outer FROM / join clause.
    if (k == 0) {
      outer->from.kind = TableRef::Kind::kTable;
      outer->from.table_name = cte_name;
    } else {
      JoinClause join;
      join.type = JoinClause::Type::kLeft;
      join.ref.kind = TableRef::Kind::kTable;
      join.ref.table_name = cte_name;
      if (join_conds.empty()) {
        join.on = Expr::MakeBinary(BinOp::kEq,
                                   Expr::MakeLiteral(Value::Int(1)),
                                   Expr::MakeLiteral(Value::Int(1)));
      } else {
        std::vector<ExprPtr> on_conjuncts;
        for (size_t m = 0; m < join_conds.size(); ++m) {
          const JoinCond& jc = join_conds[m];
          size_t src_slot = slot_of.at(jc.src);
          // Locate the source's output column by original name.
          int src_idx = -1;
          for (size_t i = 0; i < out_names[src_slot].size(); ++i) {
            if (out_names[src_slot][i] == jc.src_column) {
              src_idx = static_cast<int>(i);
              break;
            }
          }
          if (src_idx < 0) {
            return Status::Unsupported("mapping column " + jc.src_column +
                                       " not in source select list");
          }
          on_conjuncts.push_back(Expr::MakeBinary(
              BinOp::kEq, Expr::MakeColumnRef(cte_name, jc_aliases[m]),
              Expr::MakeColumnRef(
                  "q" + std::to_string(src_slot + 1),
                  out_aliases[src_slot][static_cast<size_t>(src_idx)])));
        }
        join.on = sql::CombineConjuncts(std::move(on_conjuncts));
      }
      outer->joins.push_back(std::move(join));
    }

    // Outer select list + decode slot.
    DecodeSlot slot;
    slot.tmpl = node;
    slot.result_names = out_names[k];
    slot.parents = parent_slots;
    for (const auto& alias : out_aliases[k]) {
      sql::SelectItem item;
      item.expr = Expr::MakeColumnRef(cte_name, alias);
      item.alias = alias;
      outer->items.push_back(std::move(item));
      slot.result_cols.push_back(next_out_col++);
    }
    for (const auto& alias : ck_aliases) {
      sql::SelectItem item;
      item.expr = Expr::MakeColumnRef(cte_name, alias);
      item.alias = alias;
      outer->items.push_back(std::move(item));
      slot.ck_cols.push_back(next_out_col++);
    }
    // Parameter plan for per-iteration cache keys.
    slot.bound_params.assign(static_cast<size_t>(qt->param_count),
                             Value::Null());
    if (latest != nullptr) {
      for (size_t p = 0; p < slot.bound_params.size() && p < latest->size();
           ++p) {
        slot.bound_params[p] = (*latest)[p];
      }
    }
    for (const auto& [pos, src] : mapped) {
      const auto& [src_tmpl, src_col] = src;
      size_t src_slot = slot_of.at(src_tmpl);
      int src_idx = -1;
      for (size_t i = 0; i < out_names[src_slot].size(); ++i) {
        if (out_names[src_slot][i] == src_col) {
          src_idx = static_cast<int>(i);
          break;
        }
      }
      if (src_idx < 0) {
        return Status::Unsupported("mapping column " + src_col +
                                   " not in source select list");
      }
      slot.mapped_params.emplace_back(
          pos, out.slots[src_slot].result_cols[static_cast<size_t>(src_idx)]);
    }
    out.slots.push_back(std::move(slot));
  }

  auto stmt = std::make_unique<sql::Statement>();
  stmt->kind = sql::Statement::Kind::kSelect;
  stmt->select = std::move(outer);
  out.sql = sql::WriteStatement(*stmt);
  out.ast = std::move(stmt);
  return out;
}

}  // namespace chrono::core
