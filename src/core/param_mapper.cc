#include "core/param_mapper.h"

#include <algorithm>
#include <set>

namespace chrono::core {

void ParamMapper::ObserveResult(TemplateId tmpl, const sql::ResultSet& result) {
  last_results_[tmpl] = result;
  // A fresh source result restarts every loop that iterates over it.
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (it->first.src == tmpl) {
      it = cursors_.erase(it);
    } else {
      ++it;
    }
  }
}

void ParamMapper::ObserveQuery(TemplateId dst,
                               const std::vector<sql::Value>& params) {
  auto& cands = candidates_[dst];

  // Pass 1: validate existing candidates against the cursor row of their
  // source's last result. A single mismatch blacklists the candidate
  // forever (§2.1: "deemed spurious ... never used in the future").
  for (auto& cand : cands) {
    if (cand.blacklisted) continue;
    auto rs_it = last_results_.find(cand.src);
    if (rs_it == last_results_.end()) continue;
    const sql::ResultSet& rs = rs_it->second;
    size_t row = 0;
    auto cur_it = cursors_.find(PairKey{cand.src, dst});
    if (cur_it != cursors_.end()) row = cur_it->second;
    if (row >= rs.row_count()) continue;  // loop ran past the result: no info
    if (cand.src_column >= static_cast<int>(rs.column_count())) continue;
    if (cand.dst_param >= static_cast<int>(params.size())) {
      cand.blacklisted = true;
      continue;
    }
    const sql::Value& have = rs.row(row)[static_cast<size_t>(cand.src_column)];
    const sql::Value& want = params[static_cast<size_t>(cand.dst_param)];
    if (have.EqualsSql(want)) {
      ++cand.validations;
    } else {
      cand.blacklisted = true;
    }
  }

  // Pass 2: discover new candidates from every recorded result set.
  for (const auto& [src, rs] : last_results_) {
    if (src == dst) continue;
    size_t row = 0;
    auto cur_it = cursors_.find(PairKey{src, dst});
    if (cur_it != cursors_.end()) row = cur_it->second;
    if (row < rs.row_count()) {
      for (int p = 0; p < static_cast<int>(params.size()); ++p) {
        const sql::Value& want = params[static_cast<size_t>(p)];
        if (want.is_null()) continue;
        for (int c = 0; c < static_cast<int>(rs.column_count()); ++c) {
          if (!rs.row(row)[static_cast<size_t>(c)].EqualsSql(want)) continue;
          bool exists = false;
          for (const auto& cand : cands) {
            if (cand.src == src && cand.src_column == c && cand.dst_param == p) {
              exists = true;
              break;
            }
          }
          if (exists) continue;
          Candidate cand;
          cand.src = src;
          cand.src_column = c;
          cand.src_column_name = rs.columns()[static_cast<size_t>(c)];
          cand.dst_param = p;
          cand.validations = 1;
          cands.push_back(std::move(cand));
        }
      }
    }
    // Advance the loop cursor: the next issue of dst corresponds to the
    // next row of src's result (§2.1).
    cursors_[PairKey{src, dst}] = row + 1;
  }
}

std::vector<ParamMapper::Mapping> ParamMapper::ConfirmedMappings(
    TemplateId dst) const {
  std::vector<Mapping> out;
  auto it = candidates_.find(dst);
  if (it == candidates_.end()) return out;
  for (const auto& cand : it->second) {
    if (cand.blacklisted || cand.validations < min_validations_) continue;
    out.push_back(Mapping{cand.src, cand.src_column_name, cand.dst_param});
  }
  return out;
}

std::vector<int> ParamMapper::CoveredParams(TemplateId dst) const {
  std::set<int> covered;
  for (const auto& m : ConfirmedMappings(dst)) covered.insert(m.dst_param);
  return std::vector<int>(covered.begin(), covered.end());
}

const sql::ResultSet* ParamMapper::LastResult(TemplateId src) const {
  auto it = last_results_.find(src);
  return it == last_results_.end() ? nullptr : &it->second;
}

int ParamMapper::BlacklistedCount(TemplateId dst) const {
  auto it = candidates_.find(dst);
  if (it == candidates_.end()) return 0;
  int n = 0;
  for (const auto& cand : it->second) {
    if (cand.blacklisted) ++n;
  }
  return n;
}

}  // namespace chrono::core
