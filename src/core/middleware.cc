#include "core/middleware.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstdio>
#include <chrono>
#include <map>

#include "common/rng.h"

namespace chrono::core {

const char* SystemModeName(SystemMode mode) {
  switch (mode) {
    case SystemMode::kLru: return "LRU";
    case SystemMode::kApollo: return "Apollo";
    case SystemMode::kScalpelE: return "Scalpel-E";
    case SystemMode::kScalpelCC: return "Scalpel-CC";
    case SystemMode::kChrono: return "ChronoCache";
  }
  return "?";
}

void MiddlewareConfig::Finalize() {
  switch (mode) {
    case SystemMode::kLru:
      enable_learning = false;
      enable_loops = false;
      enable_loop_constants = false;
      enable_combining = false;
      share_across_clients = true;
      break;
    case SystemMode::kApollo:
      enable_learning = true;
      enable_loops = false;
      enable_loop_constants = false;
      enable_combining = false;
      share_across_clients = true;
      break;
    case SystemMode::kScalpelE:
      enable_learning = true;
      enable_loops = true;
      enable_loop_constants = false;
      enable_combining = true;
      share_across_clients = false;
      break;
    case SystemMode::kScalpelCC:
      enable_learning = true;
      enable_loops = true;
      enable_loop_constants = false;
      enable_combining = true;
      share_across_clients = true;
      break;
    case SystemMode::kChrono:
      enable_learning = true;
      enable_loops = true;
      enable_loop_constants = true;
      enable_combining = true;
      share_across_clients = true;
      break;
  }
}

// ---- RemoteDbServer ----------------------------------------------------

RemoteDbServer::RemoteDbServer(EventQueue* events, db::Database* database,
                               const net::LatencyModel& latency, int workers)
    : events_(events),
      database_(database),
      latency_(latency),
      workers_(workers) {}

void RemoteDbServer::Submit(std::string sql_text, DbCallback done) {
  Submit(DbRequest{std::move(sql_text), nullptr}, std::move(done));
}

void RemoteDbServer::Submit(DbRequest request, DbCallback done) {
  ++requests_;
  double service_multiplier = 1.0;
  if (fault_ != nullptr && fault_->enabled()) {
    net::FaultDecision fd = fault_->Decide(events_->now());
    if (fd.fail) {
      // The call dies on the WAN: the caller still pays the full round
      // trip before Unavailable comes back. Blackout failures take the
      // same path — virtual time has no client deadline to cut short.
      events_->ScheduleAfter(latency_.wan_rtt,
                             [done = std::move(done)](SimTime now) {
                               done(now, Status::Unavailable(
                                             "injected backend failure"));
                             });
      return;
    }
    service_multiplier = fd.latency_multiplier;
  }
  // Outbound WAN half, then queue for a database worker.
  events_->ScheduleAfter(
      latency_.wan_rtt / 2,
      [this, req = std::move(request), done = std::move(done),
       service_multiplier](SimTime) mutable {
        waiting_.push_back(
            Job{std::move(req), std::move(done), service_multiplier});
        TryDispatch();
      });
}

void RemoteDbServer::TryDispatch() {
  while (busy_ < workers_ && !waiting_.empty()) {
    Job job = std::move(waiting_.front());
    waiting_.pop_front();
    ++busy_;
    // Execute at dispatch time so statements apply in virtual order; the
    // result is held until the service time elapses.
    static const bool debug_slow = std::getenv("CHRONO_DEBUG_SLOW") != nullptr;
    auto wall_start = debug_slow ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    // Zero-reparse path: execute a handed-off parse tree directly.
    const bool handoff = job.request.ast != nullptr && !text_roundtrip_;
    if (handoff) ++ast_handoffs_;
    auto outcome = handoff ? database_->Execute(*job.request.ast)
                           : database_->ExecuteText(job.request.sql);
    if (debug_slow) {
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
      if (ms > 2.0) {
        std::fprintf(stderr, "SLOW %.1fms rows=%llu: %.300s\n", ms,
                     static_cast<unsigned long long>(
                         outcome.ok() ? outcome->stats.rows_scanned : 0),
                     job.request.sql.c_str());
      }
    }
    uint64_t rows = outcome.ok() ? outcome->stats.rows_scanned : 0;
    if (outcome.ok()) rows_scanned_ += rows;
    SimTime service = latency_.DbServiceTime(rows);
    if (job.service_multiplier > 1.0) {
      service = static_cast<SimTime>(static_cast<double>(service) *
                                     job.service_multiplier);
    }
    busy_time_ += service;
    auto shared =
        std::make_shared<Result<db::ExecOutcome>>(std::move(outcome));
    events_->ScheduleAfter(
        service, [this, shared, done = std::move(job.done)](SimTime) {
          --busy_;
          TryDispatch();
          // Inbound WAN half back to the middleware node.
          events_->ScheduleAfter(latency_.wan_rtt / 2,
                                 [shared, done](SimTime now2) {
                                   done(now2, std::move(*shared));
                                 });
        });
  }
}

// ---- Middleware ----------------------------------------------------------

Middleware::ClientState::ClientState(const MiddlewareConfig& config)
    : transitions(std::make_unique<TransitionGraph>(config.delta_t)),
      mapper(config.min_validations),
      manager(DependencyManager::Options{config.enable_subsumption}) {}

Middleware::Middleware(EventQueue* events, RemoteDbServer* remote,
                       const net::LatencyModel& latency,
                       MiddlewareConfig config)
    : events_(events),
      remote_(remote),
      latency_(latency),
      config_(config),
      template_cache_(config.template_cache_entries),
      cache_(std::make_unique<cache::LruCache>(config.cache_bytes)),
      mw_pool_(events, config.workers),
      sessions_(config.multi_node),
      extractor_(GraphExtractor::Options{
          config.tau, config.min_occurrences, config.enable_loops,
          config.enable_loop_constants, /*max_nodes=*/8}),
      retry_(config.retry) {}

Middleware::~Middleware() {
  if (metrics_registry_ != nullptr) {
    metrics_registry_->UnregisterCallbacksOwnedBy(this);
  }
}

void Middleware::RegisterMetrics(obs::MetricsRegistry* registry) {
  metrics_registry_ = registry;
  const void* owner = this;
  // Counters mirroring MiddlewareMetrics, under the same names the
  // wall-clock ChronoServer exports so dashboards work on either.
  auto mirror = [&](const char* name, const char* help,
                    const uint64_t* field, obs::Labels labels = {}) {
    registry->RegisterCallbackCounter(
        name, help, std::move(labels),
        [field] { return static_cast<double>(*field); }, owner);
  };
  mirror("chrono_requests_total", "Client statements served",
         &metrics_.reads, {{"op", "read"}});
  mirror("chrono_requests_total", "Client statements served",
         &metrics_.writes, {{"op", "write"}});
  mirror("chrono_cache_rejects_total",
         "Cached results rejected by session/security checks",
         &metrics_.cache_rejects);
  mirror("chrono_remote_plain_total", "Plain (uncombined) remote reads",
         &metrics_.remote_plain);
  mirror("chrono_remote_combined_total",
         "Combined queries sent to the database", &metrics_.remote_combined);
  mirror("chrono_predictions_cached_total",
         "Result sets cached ahead of demand", &metrics_.predictions_cached);
  mirror("chrono_prediction_fallbacks_total",
         "Combined queries that missed the asked-for result",
         &metrics_.prediction_fallbacks);
  mirror("chrono_redundant_skips_total",
         "Combinations suppressed as redundant (sim only, paper 5.1)",
         &metrics_.redundant_skips);
  mirror("chrono_inflight_joins_total",
         "Duplicate requests coalesced onto in-flight queries (sim only)",
         &metrics_.inflight_joins);
  mirror("chrono_sequential_prefetches_total",
         "Apollo-style sequential predictions fired (sim only)",
         &metrics_.sequential_prefetches);
  mirror("chrono_cascaded_fires_total",
         "Graphs fired by text-availability cascades (sim only)",
         &metrics_.cascaded_fires);
  mirror("chrono_backend_retries_total",
         "Demand-read retries after backend transport failures",
         &metrics_.backend_retries);

  // The two query-path caches, uniform family shared with the runtime.
  auto cache_family = [&](const char* which, std::function<double()> hits,
                          std::function<double()> misses,
                          std::function<double()> evictions,
                          std::function<double()> entries) {
    obs::Labels labels = {{"cache", which}};
    registry->RegisterCallbackCounter("chrono_cache_hits_total",
                                      "Cache lookup hits by cache", labels,
                                      std::move(hits), owner);
    registry->RegisterCallbackCounter("chrono_cache_misses_total",
                                      "Cache lookup misses by cache", labels,
                                      std::move(misses), owner);
    registry->RegisterCallbackCounter("chrono_cache_evictions_total",
                                      "Cache evictions by cache", labels,
                                      std::move(evictions), owner);
    registry->RegisterCallbackGauge("chrono_cache_entries",
                                    "Entries resident by cache", labels,
                                    std::move(entries), owner);
  };
  cache_family(
      "template",
      [this] {
        return static_cast<double>(
            template_cache_.counters().hits.load(std::memory_order_relaxed));
      },
      [this] {
        return static_cast<double>(
            template_cache_.counters().misses.load(std::memory_order_relaxed));
      },
      [this] { return static_cast<double>(template_cache_.evictions()); },
      [this] { return static_cast<double>(template_cache_.size()); });
  cache_family(
      "result", [this] { return static_cast<double>(cache_->hits()); },
      [this] { return static_cast<double>(cache_->misses()); },
      [this] { return static_cast<double>(cache_->evictions()); },
      [this] { return static_cast<double>(cache_->entry_count()); });
  registry->RegisterCallbackGauge(
      "chrono_result_cache_bytes", "Bytes resident in the result cache", {},
      [this] { return static_cast<double>(cache_->used_bytes()); }, owner);
}

void Middleware::AttachJournal(obs::EventJournal* journal) {
  journal_ = journal;
  // Mirror the runtime server's eviction journaling: only
  // prefetch-attributed entries, kErased = staleness invalidation (which
  // always follows a Get that bumped use_count, hence use_count > 1).
  cache_->SetEvictionCallback([this](const std::string& key,
                                     const cache::CachedResult& value,
                                     size_t bytes,
                                     cache::EvictReason reason) {
    (void)key;
    if (journal_ == nullptr || value.prefetch_plan == 0 ||
        reason == cache::EvictReason::kCleared) {
      return;
    }
    obs::JournalEvent event;
    event.plan = value.prefetch_plan;
    event.src = value.prefetch_src;
    event.tmpl = value.tmpl;
    event.a = bytes;
    uint64_t now = static_cast<uint64_t>(events_->now());
    event.b = now > value.install_us ? now - value.install_us : 0;
    if (reason == cache::EvictReason::kErased) {
      event.type = obs::JournalEventType::kEntryInvalidated;
      event.flags = value.use_count > 1 ? obs::kJournalFlagUsed : 0;
    } else {
      event.type = obs::JournalEventType::kEntryEvicted;
      event.flags = (value.use_count > 0 ? obs::kJournalFlagUsed : 0) |
                    (reason == cache::EvictReason::kReplaced
                         ? obs::kJournalEvictReplaced
                         : obs::kJournalEvictCapacity);
    }
    Journal(event);
  });
}

void Middleware::Journal(obs::JournalEvent event) {
  if (journal_ == nullptr) return;
  if (event.ts_us == 0) {
    SimTime now = events_->now();
    event.ts_us = now == 0 ? 1 : static_cast<uint64_t>(now);
  }
  journal_->Record(event);
}

void Middleware::JournalRequest(ClientId client, TemplateId tmpl,
                                obs::TraceOutcome outcome,
                                uint64_t prefetch_plan,
                                uint64_t prefetch_src) {
  if (journal_ == nullptr) return;
  obs::JournalEvent event;
  event.type = obs::JournalEventType::kRequest;
  event.client = static_cast<uint32_t>(client);
  event.tmpl = static_cast<uint64_t>(tmpl);
  event.plan = prefetch_plan;
  event.src = prefetch_src;
  event.flags =
      static_cast<uint8_t>(outcome) | obs::kJournalFlagNoLatency;
  Journal(event);
}

Middleware::ClientState* Middleware::StateFor(ClientId client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    it = clients_.emplace(client, std::make_unique<ClientState>(config_)).first;
  }
  return it->second.get();
}

std::string Middleware::CacheKey(ClientId client,
                                 const std::string& bound_text) const {
  std::string key;
  if (!config_.share_across_clients) {
    key += "c" + std::to_string(client) + "#";
  }
  if (config_.multi_node) {
    key += "n" + std::to_string(config_.node_id) + "#";
  }
  key += bound_text;
  return key;
}

size_t Middleware::TotalGraphs() const {
  size_t n = 0;
  for (const auto& [id, state] : clients_) {
    (void)id;
    n += state->manager.graph_count();
  }
  return n;
}

std::vector<std::string> Middleware::DumpDependencyGraphs(
    ClientId client) const {
  std::vector<std::string> out;
  auto it = clients_.find(client);
  if (it == clients_.end()) return out;
  for (const DependencyGraph* graph : it->second->manager.Graphs()) {
    std::map<TemplateId, std::string> labels;
    for (TemplateId node : graph->nodes) {
      const sql::QueryTemplate* tmpl = registry_.Find(node);
      if (tmpl == nullptr) continue;
      std::string text = tmpl->canonical_text.substr(0, 48);
      // Escape for DOT string literals.
      std::string escaped;
      for (char c : text) {
        if (c == '"' || c == '\\') escaped += '\\';
        escaped += c;
      }
      labels[node] = escaped;
    }
    out.push_back(graph->ToDot(labels));
  }
  return out;
}

void Middleware::SubmitQuery(ClientId client, int security_group,
                             std::string sql_text, ResponseCallback done) {
  // Client -> middleware edge hop, then middleware service.
  events_->ScheduleAfter(
      latency_.edge_rtt / 2,
      [this, client, security_group, sql = std::move(sql_text),
       done = std::move(done)](SimTime) mutable {
        mw_pool_.Submit(latency_.mw_base_service,
                        [this, client, security_group, sql = std::move(sql),
                         done = std::move(done)](SimTime now2) mutable {
                          Process(now2, client, security_group, std::move(sql),
                                  std::move(done));
                        });
      });
}

void Middleware::Process(SimTime now, ClientId client, int security_group,
                         std::string sql_text, ResponseCallback done) {
  // Memoized AnalyzeQuery: clients resubmit the same texts constantly
  // (point lookups in loops, pattern repetitions), so the analysis —
  // lex + parse + literal extraction + canonical render — is cached
  // keyed on the raw text. Entries are immutable (template + params are
  // derived from the text alone), so no invalidation is ever needed.
  sql::ParsedQuery parsed;
  if (const sql::ParsedQuery* hit = template_cache_.Get(sql_text)) {
    parsed = *hit;
  } else {
    auto analyzed = sql::AnalyzeQuery(sql_text);
    if (!analyzed.ok()) {
      JournalRequest(client, /*tmpl=*/0, obs::TraceOutcome::kError);
      events_->ScheduleAfter(latency_.edge_rtt / 2,
                             [done, st = analyzed.status()](SimTime now2) {
                               done(now2, st);
                             });
      return;
    }
    parsed = *template_cache_.Put(std::move(sql_text), std::move(*analyzed));
  }
  registry_.Register(parsed.tmpl);
  if (!parsed.tmpl->read_only) {
    ++metrics_.writes;
    HandleWrite(client, std::move(parsed), std::move(done));
    return;
  }
  ++metrics_.reads;
  HandleRead(now, client, security_group, std::move(parsed), std::move(done));
}

void Middleware::HandleWrite(ClientId client, sql::ParsedQuery parsed,
                             ResponseCallback done) {
  // Writes bypass the cache entirely; ChronoCache never predicts updates
  // (§5, "focuses on predictively caching read queries").
  auto access = sql::CollectTableAccess(*parsed.tmpl->ast);
  remote_->Submit(
      parsed.bound_text,
      [this, client, tmpl = parsed.tmpl->id, writes = access.writes,
       done = std::move(done)](SimTime, Result<db::ExecOutcome> outcome) {
        sessions_.OnRemoteAccess();
        if (outcome.ok()) sessions_.OnClientWrite(client, writes);
        JournalRequest(client, tmpl,
                       outcome.ok() ? obs::TraceOutcome::kWrite
                                    : obs::TraceOutcome::kError);
        events_->ScheduleAfter(
            latency_.edge_rtt / 2,
            [outcome = std::move(outcome), done](SimTime now2) {
              if (!outcome.ok()) {
                done(now2, outcome.status());
              } else {
                done(now2, outcome->result);
              }
            });
      });
}

void Middleware::Learn(SimTime now, ClientId client,
                       const sql::ParsedQuery& parsed) {
  ClientState* state = StateFor(client);
  TemplateId tmpl = parsed.tmpl->id;
  state->transitions->Observe(tmpl, now);
  state->mapper.ObserveQuery(tmpl, parsed.params);
  state->latest_params[tmpl] = parsed.params;
  ++state->observations;
  if (state->observations % config_.extract_every == 0) {
    for (auto& graph :
         extractor_.Extract(*state->transitions, state->mapper, registry_)) {
      state->manager.AddGraph(std::move(graph));
    }
  }
}

void Middleware::HandleRead(SimTime now, ClientId client, int security_group,
                            sql::ParsedQuery parsed, ResponseCallback done) {
  TemplateId tmpl = parsed.tmpl->id;
  ClientState* state = StateFor(client);

  std::vector<const DependencyGraph*> ready;
  if (config_.enable_learning) {
    Learn(now, client, parsed);
    ready = state->manager.MarkTextAvail(tmpl);
  }

  // §5.1: suppress graphs whose predictions are already fully cached.
  std::vector<const DependencyGraph*> to_fire;
  for (const DependencyGraph* g : ready) {
    if (config_.enable_redundancy_check &&
        PredictionsCached(client, security_group, *g)) {
      ++metrics_.redundant_skips;
      continue;
    }
    to_fire.push_back(g);
  }

  const std::string key = CacheKey(client, parsed.bound_text);
  const cache::CachedResult* hit = CacheGet(client, security_group,
                                            parsed.bound_text);
  if (hit != nullptr) {
    ++metrics_.cache_hits;
    JournalRequest(client, tmpl, obs::TraceOutcome::kCacheHit,
                   hit->prefetch_plan, hit->prefetch_src);
    // Share the immutable payload (safe across any later cache mutation).
    // Answer from the edge cache first (Respond records the fresh result
    // into the mapper), then fire background predictions off it.
    Respond(client, tmpl, hit->result, done);
    for (const DependencyGraph* g : to_fire) {
      if (config_.enable_combining) {
        FireGraph(client, security_group, *g, /*wait_key=*/"");
      } else {
        FireSequential(client, security_group, *g);
      }
    }
    return;
  }

  // Duplicate-request coalescing (§5.1).
  auto inflight_it = inflight_.find(key);
  if (inflight_it != inflight_.end()) {
    ++metrics_.inflight_joins;
    inflight_it->second.push_back(PendingRequest{client, std::move(done)});
    for (const DependencyGraph* g : to_fire) {
      if (config_.enable_combining) {
        FireGraph(client, security_group, *g, "");
      } else {
        // Predictions bind from this query's result: run them when it lands.
        deferred_seq_[key].emplace_back(security_group, *g);
      }
    }
    return;
  }

  // Pick a primary graph whose combined query will produce our result.
  const DependencyGraph* primary = nullptr;
  if (config_.enable_combining) {
    for (const DependencyGraph* g : to_fire) {
      if (g->ContainsNode(tmpl)) {
        primary = g;
        break;
      }
    }
  }

  bool waiting = false;
  for (const DependencyGraph* g : to_fire) {
    if (config_.enable_combining) {
      bool wait_here = (g == primary);
      if (FireGraph(client, security_group, *g, wait_here ? key : "")) {
        if (wait_here) {
          inflight_[key].push_back(PendingRequest{client, done});
          inflight_tmpl_[key] = {tmpl, parsed.bound_text, security_group};
          waiting = true;
        }
      } else if (wait_here) {
        primary = nullptr;  // combination failed; fall through to plain
      }
    } else {
      // Apollo-style sequential prediction needs this query's fresh result
      // for parameter bindings; defer it to the plain execution's landing.
      deferred_seq_[key].emplace_back(security_group, *g);
    }
  }
  if (waiting) return;

  RemotePlain(client, security_group, tmpl, parsed.bound_text,
              std::move(done));
}

void Middleware::RemotePlain(ClientId client, int security_group,
                             TemplateId tmpl, std::string bound_text,
                             ResponseCallback done) {
  const std::string key = CacheKey(client, bound_text);
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    ++metrics_.inflight_joins;
    it->second.push_back(PendingRequest{client, std::move(done)});
    return;
  }
  inflight_[key].push_back(PendingRequest{client, std::move(done)});
  inflight_tmpl_[key] = {tmpl, bound_text, security_group};
  ++metrics_.remote_plain;
  IssuePlainFetch(client, security_group, tmpl, std::move(bound_text), key,
                  /*attempts=*/1);
}

void Middleware::IssuePlainFetch(ClientId client, int security_group,
                                 TemplateId tmpl, std::string bound_text,
                                 std::string key, int attempts) {
  remote_->Submit(
      bound_text,
      [this, client, security_group, tmpl, key, bound_text, attempts](
          SimTime, Result<db::ExecOutcome> outcome) {
        sessions_.OnRemoteAccess();
        if (!outcome.ok()) {
          // Idempotent demand read: reschedule after a full-jitter backoff
          // while the waiters (and any late joiners) stay parked under the
          // in-flight key. Writes and prefetch never take this path.
          if (config_.enable_retries &&
              net::RetryPolicy::IsRetryable(outcome.status()) &&
              retry_.ShouldRetry(attempts)) {
            ++metrics_.backend_retries;
            double u =
                HashToUnit(SplitMix64(config_.retry_seed ^ retry_ordinal_++));
            SimTime backoff =
                static_cast<SimTime>(retry_.BackoffUs(attempts, u));
            obs::JournalEvent event;
            event.type = obs::JournalEventType::kBackendRetry;
            event.tmpl = static_cast<uint64_t>(tmpl);
            event.client = static_cast<uint32_t>(client);
            event.a = static_cast<uint64_t>(attempts);
            event.b = static_cast<uint64_t>(backoff);
            event.c = 0;  // no per-request deadline in virtual time
            Journal(event);
            events_->ScheduleAfter(
                backoff, [this, client, security_group, tmpl, bound_text, key,
                          attempts](SimTime) {
                  IssuePlainFetch(client, security_group, tmpl, bound_text,
                                  key, attempts + 1);
                });
            return;
          }
          auto waiters = std::move(inflight_[key]);
          inflight_.erase(key);
          inflight_tmpl_.erase(key);
          deferred_seq_.erase(key);
          for (auto& w : waiters) {
            JournalRequest(w.client, tmpl, obs::TraceOutcome::kError);
            events_->ScheduleAfter(
                latency_.edge_rtt / 2,
                [done = std::move(w.done), st = outcome.status()](
                    SimTime now2) { done(now2, st); });
          }
          return;
        }
        auto waiters = std::move(inflight_[key]);
        inflight_.erase(key);
        inflight_tmpl_.erase(key);
        // Freeze the fetched rows once; the cache entry and every waiter
        // share the same immutable payload.
        auto payload = std::make_shared<const sql::ResultSet>(
            std::move(outcome->result));
        CachePut(client, security_group, tmpl, bound_text, payload);
        for (auto& w : waiters) {
          // Fresh database read: Vc = Vd (§5.2).
          sessions_.SyncClientToDb(w.client);
          JournalRequest(w.client, tmpl, obs::TraceOutcome::kRemotePlain);
          Respond(w.client, tmpl, payload, w.done);
        }
        // Fire deferred sequential predictions now that the result they
        // bind from is recorded in the mapper.
        auto deferred_it = deferred_seq_.find(key);
        if (deferred_it != deferred_seq_.end()) {
          auto deferred = std::move(deferred_it->second);
          deferred_seq_.erase(deferred_it);
          for (auto& [group, graph] : deferred) {
            FireSequential(client, group, graph);
          }
        }
      });
}

bool Middleware::FireGraph(ClientId client, int security_group,
                           const DependencyGraph& graph,
                           const std::string& wait_key, int cascade_depth) {
  ClientState* state = StateFor(client);
  CombineInput input{&graph, &registry_, &state->latest_params};
  auto combined = CombineGraph(input);
  if (!combined.ok()) return false;

  ++metrics_.remote_combined;
  // Charge the combination + split work to this node's worker pool.
  auto plan = std::make_shared<CombinedQuery>(std::move(*combined));
  mw_pool_.Submit(latency_.mw_combine_service, [](SimTime) {});

  const uint64_t plan_id = next_plan_id_++;
  const SimTime issued_at = events_->now();
  if (journal_ != nullptr) {
    std::vector<TemplateId> roots = graph.DependencyQueries();
    obs::JournalEvent mined;
    mined.type = obs::JournalEventType::kPlanMined;
    mined.plan = plan_id;
    mined.tmpl =
        roots.empty() ? 0 : static_cast<uint64_t>(roots.front());
    mined.a = plan->slots.size();
    Journal(mined);
    obs::JournalEvent issued;
    issued.type = obs::JournalEventType::kCombinedIssued;
    issued.plan = plan_id;
    issued.client = static_cast<uint32_t>(client);
    Journal(issued);
  }

  // Hand the combiner-built AST to the server alongside the text: the
  // combined query executes without ever being re-parsed.
  remote_->Submit(
      RemoteDbServer::DbRequest{plan->sql, plan->ast},
      [this, client, security_group, plan, plan_id, issued_at, wait_key,
       cascade_depth](SimTime landed, Result<db::ExecOutcome> outcome) {
        sessions_.OnRemoteAccess();
        if (!outcome.ok() && getenv("CHRONO_DEBUG")) std::fprintf(stderr, "COMBINED FAIL: %s\nSQL: %s\n", outcome.status().ToString().c_str(), plan->sql.c_str());
        if (journal_ != nullptr) {
          obs::JournalEvent fetched;
          fetched.type = obs::JournalEventType::kCombinedFetched;
          fetched.plan = plan_id;
          fetched.client = static_cast<uint32_t>(client);
          fetched.flags = outcome.ok() ? obs::kJournalFlagOk : 0;
          if (outcome.ok()) {
            fetched.a = outcome->result.row_count();
            fetched.b = outcome->result.ByteSize();
          }
          fetched.c = landed > issued_at
                          ? static_cast<uint64_t>(landed - issued_at)
                          : 0;
          Journal(fetched);
        }
        if (outcome.ok()) {
          auto split = SplitResult(*plan, outcome->result, registry_);
          if (!split.ok() && getenv("CHRONO_DEBUG")) std::fprintf(stderr, "SPLIT FAIL: %s\n", split.status().ToString().c_str());
          if (split.ok()) {
            // Edge attribution: first parent slot's template -> slot
            // template; roots keep src 0 (same rule as the runtime).
            std::map<TemplateId, TemplateId> src_of;
            for (const DecodeSlot& slot : plan->slots) {
              TemplateId src = 0;
              if (!slot.parents.empty()) {
                int parent = slot.parents.front();
                if (parent >= 0 &&
                    static_cast<size_t>(parent) < plan->slots.size()) {
                  src = plan->slots[static_cast<size_t>(parent)].tmpl;
                }
              }
              src_of.emplace(slot.tmpl, src);
            }
            for (const auto& entry : *split) {
              auto src_it = src_of.find(entry.tmpl);
              CachePut(client, security_group, entry.tmpl, entry.key,
                       entry.result, plan_id,
                       src_it == src_of.end()
                           ? 0
                           : static_cast<uint64_t>(src_it->second));
              ++metrics_.predictions_cached;
            }
            // The triggering client observed fresh database state.
            sessions_.SyncClientToDb(client);
            // Algorithm 1 line 7: the prefetched texts may make further
            // dependency graphs ready; fire them in the background.
            for (const auto& entry : *split) {
              SplitMarkTextAvail(client, security_group, entry.tmpl,
                                 entry.params, cascade_depth + 1);
            }
          }
        }
        if (!wait_key.empty()) ResolveInflight(wait_key);
      });
  return true;
}

void Middleware::SplitMarkTextAvail(ClientId client, int security_group,
                                    TemplateId tmpl,
                                    const std::vector<sql::Value>& params,
                                    int cascade_depth) {
  // Bound the cascade: a graph whose own split re-supplies its dependency
  // text would otherwise re-fire forever when the §5.1 redundancy check is
  // disabled.
  constexpr int kMaxCascadeDepth = 3;
  if (cascade_depth > kMaxCascadeDepth) return;
  ClientState* state = StateFor(client);
  if (!state->manager.IsRelevant(tmpl)) return;
  state->latest_params[tmpl] = params;
  for (const DependencyGraph* graph : state->manager.MarkTextAvail(tmpl)) {
    if (config_.enable_redundancy_check &&
        PredictionsCached(client, security_group, *graph)) {
      ++metrics_.redundant_skips;
      continue;
    }
    if (FireGraph(client, security_group, *graph, "", cascade_depth)) {
      ++metrics_.cascaded_fires;
    }
  }
}

void Middleware::ResolveInflight(const std::string& key) {
  auto it = inflight_.find(key);
  if (it == inflight_.end()) return;
  auto info_it = inflight_tmpl_.find(key);
  if (info_it == inflight_tmpl_.end()) return;
  InflightInfo info = info_it->second;
  auto waiters = std::move(it->second);
  inflight_.erase(it);
  inflight_tmpl_.erase(info_it);

  std::vector<PendingRequest> unresolved;
  for (auto& w : waiters) {
    const cache::CachedResult* hit =
        CacheGet(w.client, info.security_group, info.bound_text);
    if (hit != nullptr) {
      JournalRequest(w.client, info.tmpl, obs::TraceOutcome::kPredictionHit,
                     hit->prefetch_plan, hit->prefetch_src);
      Respond(w.client, info.tmpl, hit->result, w.done);
    } else {
      unresolved.push_back(std::move(w));
    }
  }
  if (!unresolved.empty()) {
    // Misprediction: the combined result did not cover this query. Fall
    // back to plain remote execution; RemotePlain coalesces duplicates.
    ++metrics_.prediction_fallbacks;
    for (auto& w : unresolved) {
      RemotePlain(w.client, info.security_group, info.tmpl, info.bound_text,
                  std::move(w.done));
    }
  }
}

void Middleware::FireSequential(ClientId client, int security_group,
                                const DependencyGraph& graph) {
  // Apollo-style prediction (§6 "Systems"): predicted queries are issued
  // to the database sequentially and uncombined. Without loop support only
  // the first iteration's bindings (row 0 of the source result) are used.
  ClientState* state = StateFor(client);
  std::vector<TemplateId> topo = graph.TopologicalOrder();
  if (topo.empty()) return;

  for (TemplateId node : topo) {
    if (graph.RoleOf(node) != NodeRole::kPredicted) continue;
    const sql::QueryTemplate* tmpl = registry_.Find(node);
    if (tmpl == nullptr) continue;
    // Bind parameters from the sources' last observed result sets.
    std::vector<sql::Value> params(static_cast<size_t>(tmpl->param_count),
                                   sql::Value::Null());
    bool ok = true;
    for (const auto& e : graph.edges) {
      if (e.dst != node) continue;
      const sql::ResultSet* src_rs = state->mapper.LastResult(e.src);
      if (src_rs == nullptr || src_rs->empty()) {
        ok = false;
        break;
      }
      for (const auto& b : e.bindings) {
        int col = src_rs->ColumnIndex(b.src_column);
        if (col < 0) {
          ok = false;
          break;
        }
        params[static_cast<size_t>(b.dst_param)] =
            src_rs->row(0)[static_cast<size_t>(col)];
      }
    }
    if (!ok) continue;
    std::string bound = sql::RenderBoundText(*tmpl, params);
    const std::string key = CacheKey(client, bound);
    if (cache_->Contains(key)) continue;
    if (inflight_.count(key) > 0) continue;
    ++metrics_.sequential_prefetches;
    remote_->Submit(bound, [this, client, security_group, node, bound](
                               SimTime, Result<db::ExecOutcome> outcome) {
      sessions_.OnRemoteAccess();
      if (!outcome.ok()) return;
      auto payload = std::make_shared<const sql::ResultSet>(
          std::move(outcome->result));
      CachePut(client, security_group, node, bound, payload);
      // Feed the model so deeper predictions can bind next time.
      StateFor(client)->mapper.ObserveResult(node, *payload);
    });
  }
}

bool Middleware::PredictionsCached(ClientId client, int security_group,
                                   const DependencyGraph& graph) {
  ClientState* state = StateFor(client);
  std::vector<TemplateId> roots = graph.DependencyQueries();
  if (roots.size() != 1) return false;
  TemplateId root = roots[0];
  const sql::QueryTemplate* root_tmpl = registry_.Find(root);
  if (root_tmpl == nullptr) return false;
  auto lp_it = state->latest_params.find(root);
  if (lp_it == state->latest_params.end()) return false;
  std::string root_key =
      CacheKey(client, sql::RenderBoundText(*root_tmpl, lp_it->second));
  const cache::CachedResult* root_hit = cache_->Peek(root_key);
  if (root_hit == nullptr || root_hit->security_group != security_group ||
      !sessions_.CanUse(client, root_hit->version)) {
    return false;
  }

  for (TemplateId node : graph.nodes) {
    if (node == root) continue;
    NodeRole role = graph.RoleOf(node);
    if (role == NodeRole::kDependency) return false;
    const sql::QueryTemplate* tmpl = registry_.Find(node);
    if (tmpl == nullptr) return false;
    // Only direct children of the root can be checked without executing;
    // deeper hierarchies are conservatively treated as not cached.
    std::vector<const DepEdge*> incoming;
    for (const auto& e : graph.edges) {
      if (e.dst == node) incoming.push_back(&e);
    }
    for (const auto* e : incoming) {
      if (e->src != root) return false;
    }
    // Constants for unmapped positions.
    std::vector<sql::Value> base(static_cast<size_t>(tmpl->param_count),
                                 sql::Value::Null());
    auto node_lp = state->latest_params.find(node);
    if (node_lp != state->latest_params.end()) {
      for (size_t p = 0; p < base.size() && p < node_lp->second.size(); ++p) {
        base[p] = node_lp->second[p];
      }
    }
    for (size_t r = 0; r < root_hit->result->row_count(); ++r) {
      std::vector<sql::Value> params = base;
      bool bindable = true;
      for (const auto* e : incoming) {
        for (const auto& b : e->bindings) {
          int col = root_hit->result->ColumnIndex(b.src_column);
          if (col < 0) {
            bindable = false;
            break;
          }
          params[static_cast<size_t>(b.dst_param)] =
              root_hit->result->row(r)[static_cast<size_t>(col)];
        }
      }
      if (!bindable) return false;
      for (const auto& v : params) {
        if (v.is_null()) return false;  // unknown constant: cannot verify
      }
      std::string child_key =
          CacheKey(client, sql::RenderBoundText(*tmpl, params));
      const cache::CachedResult* child_hit = cache_->Peek(child_key);
      if (child_hit == nullptr ||
          child_hit->security_group != security_group ||
          !sessions_.CanUse(client, child_hit->version)) {
        return false;
      }
    }
  }
  return true;
}

void Middleware::Respond(ClientId client, TemplateId tmpl,
                         std::shared_ptr<const sql::ResultSet> result,
                         const ResponseCallback& done) {
  if (config_.enable_learning) {
    StateFor(client)->mapper.ObserveResult(tmpl, *result);
  }
  // The scheduled delivery carries only the shared_ptr; the single copy
  // into the client's Result<ResultSet> happens at the LAN edge.
  events_->ScheduleAfter(latency_.edge_rtt / 2,
                         [done, result = std::move(result)](SimTime now2) {
                           done(now2, *result);
                         });
}

void Middleware::CachePut(ClientId client, int security_group, TemplateId tmpl,
                          const std::string& bound_text,
                          std::shared_ptr<const sql::ResultSet> result,
                          uint64_t prefetch_plan, uint64_t prefetch_src) {
  const sql::QueryTemplate* qt = registry_.Find(tmpl);
  std::vector<std::string> reads;
  if (qt != nullptr) reads = sql::CollectTableAccess(*qt->ast).reads;
  cache::CachedResult entry;
  entry.SetResult(std::move(result));
  entry.version = sessions_.SnapshotFor(reads);
  entry.security_group = security_group;
  entry.node_id = config_.node_id;
  entry.prefetch_plan = prefetch_plan;
  entry.prefetch_src = prefetch_src;
  entry.tmpl = static_cast<uint64_t>(tmpl);
  entry.install_us = static_cast<uint64_t>(events_->now());
  std::string key = CacheKey(client, bound_text);
  if (journal_ != nullptr && prefetch_plan != 0) {
    obs::JournalEvent installed;
    installed.type = obs::JournalEventType::kEntryInstalled;
    installed.plan = prefetch_plan;
    installed.src = prefetch_src;
    installed.tmpl = static_cast<uint64_t>(tmpl);
    installed.a = cache::LruCache::EntryBytes(key, entry);
    installed.client = static_cast<uint32_t>(client);
    Journal(installed);
  }
  cache_->Put(key, std::move(entry));
}

const cache::CachedResult* Middleware::CacheGet(ClientId client,
                                                int security_group,
                                                const std::string& bound_text) {
  const std::string key = CacheKey(client, bound_text);
  const cache::CachedResult* entry = cache_->Get(key);
  if (entry == nullptr) return nullptr;
  if (entry->security_group != security_group) {
    ++metrics_.cache_rejects;
    return nullptr;
  }
  if (!sessions_.CanUse(client, entry->version)) {
    ++metrics_.cache_rejects;
    // A version-rejected prefetched entry can never become usable again
    // (database versions are monotonic), so erase it now: the eviction
    // callback journals it as invalidated instead of letting it age out
    // as an ordinary capacity eviction.
    if (entry->prefetch_plan != 0) cache_->Erase(key);
    return nullptr;
  }
  sessions_.AbsorbResult(client, entry->version);
  if (journal_ != nullptr && entry->prefetch_plan != 0 &&
      entry->use_count == 1) {
    obs::JournalEvent used;
    used.type = obs::JournalEventType::kEntryUsed;
    used.plan = entry->prefetch_plan;
    used.src = entry->prefetch_src;
    used.tmpl = entry->tmpl;
    used.a = cache::LruCache::EntryBytes(key, *entry);
    const uint64_t now = static_cast<uint64_t>(events_->now());
    used.b = now > entry->install_us ? now - entry->install_us : 0;
    used.client = static_cast<uint32_t>(client);
    Journal(used);
  }
  return entry;
}

}  // namespace chrono::core
