#ifndef CHRONOCACHE_CORE_COMBINER_CTE_H_
#define CHRONOCACHE_CORE_COMBINER_CTE_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "core/dependency_graph.h"
#include "core/result_splitter.h"
#include "core/template_registry.h"

namespace chrono::core {

/// \brief Inputs shared by both combination strategies: the ready graph,
/// the template registry, and the latest client-observed parameter values
/// per template (dependency queries supply their live parameters;
/// loop-constant queries supply their first observed iteration, §2.2).
struct CombineInput {
  const DependencyGraph* graph = nullptr;
  const TemplateRegistry* registry = nullptr;
  const std::map<TemplateId, std::vector<sql::Value>>* latest_params = nullptr;
};

// ---- helpers shared by the combiners ---------------------------------

/// Output column names of a template's SELECT (PostgreSQL-like naming).
/// Fails on `*` select items: a middleware without the schema cannot
/// attribute star columns, so such queries are never combined.
Result<std::vector<std::string>> TemplateOutputNames(const sql::SelectStmt& stmt);

/// Splits an owned WHERE tree into its owned top-level conjuncts.
std::vector<sql::ExprPtr> DecomposeConjuncts(sql::ExprPtr where);

/// In-place replacement of parameter placeholders: `replace` is called for
/// each kParam node and may rewrite it (e.g. to a literal or column ref).
void RewriteParams(sql::SelectStmt* stmt,
                   const std::function<void(sql::Expr*)>& replace);

/// \brief §4.1: combines a ready dependency graph of select-project-join
/// queries into one query using left joins over common table expressions
/// (Algorithm 2). Each query becomes a CTE with base-table rowids added as
/// a candidate key; filter conditions fed by parameter mappings are
/// stripped and reattached as LEFT JOIN conditions.
class CteJoinCombiner {
 public:
  /// Structural applicability check: plain SPJ queries (no aggregates,
  /// DISTINCT, GROUP BY, ORDER BY or LIMIT), base tables only, explicit
  /// select lists, and a single dependency root.
  static bool CanHandle(const CombineInput& in);

  /// Builds the combined query + decode plan. Returns Unsupported when a
  /// mapped parameter is not strippable as a top-level `col = ?` conjunct
  /// (the caller falls back to the lateral-union strategy).
  static Result<CombinedQuery> Combine(const CombineInput& in);
};

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_COMBINER_CTE_H_
