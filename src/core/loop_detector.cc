#include "core/loop_detector.h"

#include <algorithm>
#include <map>
#include <set>

namespace chrono::core {

namespace {

/// Iterative Tarjan SCC.
class TarjanState {
 public:
  TarjanState(const std::vector<TemplateId>& nodes,
              const std::vector<std::pair<TemplateId, TemplateId>>& edges) {
    for (TemplateId n : nodes) adj_[n];  // ensure every node exists
    for (const auto& [from, to] : edges) {
      adj_[from].push_back(to);
      adj_[to];
    }
  }

  std::vector<std::vector<TemplateId>> Run() {
    for (const auto& [node, targets] : adj_) {
      (void)targets;
      if (index_.count(node) == 0) Strongconnect(node);
    }
    return components_;
  }

 private:
  void Strongconnect(TemplateId v) {
    // Explicit stack frames: (node, next-child cursor).
    struct Frame {
      TemplateId node;
      size_t child = 0;
    };
    std::vector<Frame> frames{{v, 0}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      TemplateId node = f.node;
      if (f.child == 0) {
        index_[node] = next_index_;
        lowlink_[node] = next_index_;
        ++next_index_;
        stack_.push_back(node);
        on_stack_.insert(node);
      }
      const auto& children = adj_[node];
      bool descended = false;
      while (f.child < children.size()) {
        TemplateId w = children[f.child];
        ++f.child;
        if (index_.count(w) == 0) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_.count(w) > 0) {
          lowlink_[node] = std::min(lowlink_[node], index_[w]);
        }
      }
      if (descended) continue;
      // Finished node.
      if (lowlink_[node] == index_[node]) {
        std::vector<TemplateId> component;
        while (true) {
          TemplateId w = stack_.back();
          stack_.pop_back();
          on_stack_.erase(w);
          component.push_back(w);
          if (w == node) break;
        }
        std::sort(component.begin(), component.end());
        components_.push_back(std::move(component));
      }
      frames.pop_back();
      if (!frames.empty()) {
        TemplateId parent = frames.back().node;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[node]);
      }
    }
  }

  std::map<TemplateId, std::vector<TemplateId>> adj_;
  std::map<TemplateId, uint64_t> index_;
  std::map<TemplateId, uint64_t> lowlink_;
  std::vector<TemplateId> stack_;
  std::set<TemplateId> on_stack_;
  uint64_t next_index_ = 0;
  std::vector<std::vector<TemplateId>> components_;
};

}  // namespace

std::vector<std::vector<TemplateId>> StronglyConnectedComponents(
    const std::vector<TemplateId>& nodes,
    const std::vector<std::pair<TemplateId, TemplateId>>& edges) {
  TarjanState state(nodes, edges);
  return state.Run();
}

std::vector<DependencyGraph> GraphExtractor::Extract(
    const TransitionGraph& transitions, const ParamMapper& mapper,
    const TemplateRegistry& registry) const {
  std::vector<DependencyGraph> out;
  ExtractSimple(transitions, mapper, registry, &out);
  if (options_.enable_loops) {
    ExtractLoops(transitions, mapper, registry, &out);
  }
  for (auto& g : out) g.Normalize();
  return out;
}

void GraphExtractor::ExtractSimple(const TransitionGraph& transitions,
                                   const ParamMapper& mapper,
                                   const TemplateRegistry& registry,
                                   std::vector<DependencyGraph>* out) const {
  // Phase 1: find every "predictable" template — all parameters covered by
  // confirmed mappings from temporally correlated predecessors — and the
  // covering edges (§2.1).
  std::map<TemplateId, std::map<TemplateId, std::vector<ParamBinding>>>
      covering;  // dst -> (src -> bindings)
  for (TemplateId dst : transitions.Nodes()) {
    if (transitions.Occurrences(dst) < options_.min_occurrences) continue;
    const sql::QueryTemplate* dst_tmpl = registry.Find(dst);
    if (dst_tmpl == nullptr || !dst_tmpl->read_only) continue;
    if (dst_tmpl->param_count == 0) continue;  // nothing to predict from

    std::set<TemplateId> correlated;
    for (TemplateId p : transitions.CorrelatedPredecessors(dst, options_.tau)) {
      correlated.insert(p);
    }
    std::map<TemplateId, std::vector<ParamBinding>> by_src;
    std::set<int> covered;
    for (const auto& m : mapper.ConfirmedMappings(dst)) {
      if (correlated.count(m.src) == 0 || m.src == dst) continue;
      const sql::QueryTemplate* src_tmpl = registry.Find(m.src);
      if (src_tmpl == nullptr || !src_tmpl->read_only) continue;
      // First confirmed mapping wins per parameter position.
      if (covered.count(m.dst_param) > 0) continue;
      covered.insert(m.dst_param);
      by_src[m.src].push_back(ParamBinding{m.src_column, m.dst_param});
    }
    if (static_cast<int>(covered.size()) < dst_tmpl->param_count) continue;
    covering.emplace(dst, std::move(by_src));
  }
  if (covering.empty()) return;

  // Phase 2: group predictable templates and their sources into weakly
  // connected components. Sibling queries sharing a source land in one
  // graph — the superset graphs of Fig. 6 — instead of one fragment per
  // destination; the manager's subsumption then discards the fragments.
  std::map<TemplateId, TemplateId> parent;  // union-find
  std::function<TemplateId(TemplateId)> find = [&](TemplateId x) {
    auto it = parent.find(x);
    if (it == parent.end()) {
      parent[x] = x;
      return x;
    }
    if (it->second == x) return x;
    TemplateId root = find(it->second);
    parent[x] = root;
    return root;
  };
  for (const auto& [dst, srcs] : covering) {
    for (const auto& [src, bindings] : srcs) {
      (void)bindings;
      parent[find(dst)] = find(src);
    }
  }

  std::map<TemplateId, DependencyGraph> components;
  for (const auto& [dst, srcs] : covering) {
    DependencyGraph& graph = components[find(dst)];
    for (const auto& [src, bindings] : srcs) {
      DepEdge edge;
      edge.src = src;
      edge.dst = dst;
      edge.bindings = bindings;
      graph.edges.push_back(std::move(edge));
      graph.nodes.push_back(src);
    }
    graph.nodes.push_back(dst);
  }

  for (auto& [root, graph] : components) {
    (void)root;
    graph.Normalize();
    if (graph.nodes.size() > options_.max_nodes) continue;
    bool complete = true;
    for (TemplateId node : graph.nodes) {
      const sql::QueryTemplate* tmpl = registry.Find(node);
      if (tmpl == nullptr) {
        complete = false;
        break;
      }
      graph.param_counts[node] = tmpl->param_count;
    }
    if (!complete || graph.edges.empty()) continue;
    if (graph.TopologicalOrder().empty()) continue;  // cyclic: not a chain
    out->push_back(std::move(graph));
  }
}

void GraphExtractor::ExtractLoops(const TransitionGraph& transitions,
                                  const ParamMapper& mapper,
                                  const TemplateRegistry& registry,
                                  std::vector<DependencyGraph>* out) const {
  std::vector<TemplateId> nodes = transitions.Nodes();
  std::vector<std::pair<TemplateId, TemplateId>> tau_edges =
      transitions.TauEdges(options_.tau);
  std::set<std::pair<TemplateId, TemplateId>> edge_set(tau_edges.begin(),
                                                       tau_edges.end());

  for (const auto& component : StronglyConnectedComponents(nodes, tau_edges)) {
    // A component is a loop if it has >= 2 members, or one member with a
    // τ-strength self edge (Fig. 3's Q2).
    bool is_loop =
        component.size() >= 2 ||
        (component.size() == 1 &&
         edge_set.count({component[0], component[0]}) > 0);
    if (!is_loop) continue;
    if (component.size() > options_.max_nodes) continue;

    std::set<TemplateId> members(component.begin(), component.end());
    DependencyGraph graph;
    bool valid = true;
    std::set<TemplateId> sources;

    for (TemplateId node : component) {
      const sql::QueryTemplate* tmpl = registry.Find(node);
      if (tmpl == nullptr || !tmpl->read_only ||
          transitions.Occurrences(node) < options_.min_occurrences) {
        valid = false;
        break;
      }
      graph.nodes.push_back(node);
      graph.param_counts[node] = tmpl->param_count;

      std::map<TemplateId, std::vector<ParamBinding>> by_src;
      std::set<int> covered;
      for (const auto& m : mapper.ConfirmedMappings(node)) {
        if (members.count(m.src) > 0) continue;  // sources live outside (§2.2)
        if (covered.count(m.dst_param) > 0) continue;
        covered.insert(m.dst_param);
        by_src[m.src].push_back(ParamBinding{m.src_column, m.dst_param});
      }
      // Every member must rely on a mapping from a source query outside the
      // component — that's the relation the loop iterates over (§2.2).
      if (tmpl->param_count > 0 && by_src.empty()) {
        valid = false;
        break;
      }
      for (auto& [src, bindings] : by_src) {
        const sql::QueryTemplate* src_tmpl = registry.Find(src);
        if (src_tmpl == nullptr || !src_tmpl->read_only) continue;
        DepEdge edge;
        edge.src = src;
        edge.dst = node;
        edge.bindings = std::move(bindings);
        graph.edges.push_back(std::move(edge));
        sources.insert(src);
      }
      if (static_cast<int>(covered.size()) < tmpl->param_count) {
        // Per-loop constants: wait for one observed iteration (§2.2) —
        // unless this system variant cannot handle them.
        if (!options_.enable_loop_constants) {
          valid = false;
          break;
        }
        graph.loop_marked.insert(node);
      }
    }
    if (!valid || sources.empty()) continue;
    for (TemplateId src : sources) {
      const sql::QueryTemplate* tmpl = registry.Find(src);
      if (tmpl == nullptr) {
        valid = false;
        break;
      }
      graph.nodes.push_back(src);
      graph.param_counts[src] = tmpl->param_count;
    }
    if (!valid) continue;
    if (graph.nodes.size() > options_.max_nodes) continue;
    graph.Normalize();
    if (graph.TopologicalOrder().empty()) continue;
    out->push_back(std::move(graph));
  }
}

}  // namespace chrono::core
