#include "core/dependency_graph.h"

#include <algorithm>
#include <queue>

namespace chrono::core {

std::set<int> DependencyGraph::CoveredParams(TemplateId node) const {
  std::set<int> covered;
  for (const auto& edge : edges) {
    if (edge.dst != node) continue;
    for (const auto& b : edge.bindings) covered.insert(b.dst_param);
  }
  return covered;
}

NodeRole DependencyGraph::RoleOf(TemplateId node) const {
  auto pc_it = param_counts.find(node);
  int params = pc_it == param_counts.end() ? 0 : pc_it->second;
  std::set<int> covered = CoveredParams(node);
  bool fully_covered = static_cast<int>(covered.size()) >= params;
  if (loop_marked.count(node) > 0) return NodeRole::kLoopConstant;
  if (fully_covered && params >= 0) {
    // A node with no incoming edges and no parameters is still a root.
    bool has_incoming = false;
    for (const auto& edge : edges) {
      if (edge.dst == node) {
        has_incoming = true;
        break;
      }
    }
    if (!has_incoming) return NodeRole::kDependency;
    return NodeRole::kPredicted;
  }
  return NodeRole::kDependency;
}

std::vector<TemplateId> DependencyGraph::TextDependencies() const {
  std::vector<TemplateId> out;
  for (TemplateId node : nodes) {
    NodeRole role = RoleOf(node);
    if (role == NodeRole::kDependency || role == NodeRole::kLoopConstant) {
      out.push_back(node);
    }
  }
  return out;
}

std::vector<TemplateId> DependencyGraph::DependencyQueries() const {
  std::vector<TemplateId> out;
  for (TemplateId node : nodes) {
    if (RoleOf(node) == NodeRole::kDependency) out.push_back(node);
  }
  return out;
}

std::vector<TemplateId> DependencyGraph::TopologicalOrder() const {
  std::map<TemplateId, int> indegree;
  for (TemplateId node : nodes) indegree[node] = 0;
  for (const auto& edge : edges) indegree[edge.dst]++;
  // Min-heap on template id keeps the order deterministic.
  std::priority_queue<TemplateId, std::vector<TemplateId>,
                      std::greater<TemplateId>>
      ready;
  for (const auto& [node, deg] : indegree) {
    if (deg == 0) ready.push(node);
  }
  std::vector<TemplateId> order;
  while (!ready.empty()) {
    TemplateId node = ready.top();
    ready.pop();
    order.push_back(node);
    for (const auto& edge : edges) {
      if (edge.src != node) continue;
      if (--indegree[edge.dst] == 0) ready.push(edge.dst);
    }
  }
  if (order.size() != nodes.size()) return {};  // cycle
  return order;
}

bool DependencyGraph::Subsumes(const DependencyGraph& other) const {
  // Loop-constant graphs are incomparable with non-loop-constant graphs (§3).
  if (loop_marked.empty() != other.loop_marked.empty()) return false;
  if (!std::includes(nodes.begin(), nodes.end(), other.nodes.begin(),
                     other.nodes.end())) {
    return false;
  }
  for (TemplateId m : other.loop_marked) {
    if (loop_marked.count(m) == 0) return false;
  }
  for (const auto& oe : other.edges) {
    bool found = false;
    for (const auto& e : edges) {
      if (e.src != oe.src || e.dst != oe.dst) continue;
      bool all = true;
      for (const auto& ob : oe.bindings) {
        if (std::find(e.bindings.begin(), e.bindings.end(), ob) ==
            e.bindings.end()) {
          all = false;
          break;
        }
      }
      if (all) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string DependencyGraph::CanonicalKey() const {
  std::string key;
  for (TemplateId node : nodes) {
    key += std::to_string(node);
    key += loop_marked.count(node) > 0 ? "*" : "";
    key += ";";
  }
  key += "|";
  for (const auto& edge : edges) {
    key += std::to_string(edge.src);
    key += ">";
    key += std::to_string(edge.dst);
    key += "[";
    for (const auto& b : edge.bindings) {
      key += b.src_column;
      key += ":";
      key += std::to_string(b.dst_param);
      key += ",";
    }
    key += "]";
  }
  return key;
}

void DependencyGraph::Normalize() {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (auto& edge : edges) {
    std::sort(edge.bindings.begin(), edge.bindings.end());
    edge.bindings.erase(std::unique(edge.bindings.begin(), edge.bindings.end()),
                        edge.bindings.end());
  }
  std::sort(edges.begin(), edges.end(), [](const DepEdge& a, const DepEdge& b) {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
}

bool DependencyGraph::ContainsNode(TemplateId node) const {
  return std::binary_search(nodes.begin(), nodes.end(), node);
}

std::string DependencyGraph::ToDot(
    const std::map<TemplateId, std::string>& labels) const {
  auto label_of = [&labels](TemplateId id) {
    auto it = labels.find(id);
    if (it != labels.end()) return it->second;
    return "Q" + std::to_string(id % 10000);
  };
  std::string out = "digraph dependency_graph {\n  rankdir=LR;\n";
  for (TemplateId node : nodes) {
    out += "  n" + std::to_string(node) + " [label=\"" + label_of(node);
    switch (RoleOf(node)) {
      case NodeRole::kDependency:
        out += "\\n(dependency)\" shape=box";
        break;
      case NodeRole::kPredicted:
        out += "\\n(predicted)\"";
        break;
      case NodeRole::kLoopConstant:
        out += "\\n(loop constant)\" style=dashed";
        break;
    }
    out += "];\n";
  }
  for (const auto& edge : edges) {
    out += "  n" + std::to_string(edge.src) + " -> n" +
           std::to_string(edge.dst) + " [label=\"";
    for (size_t i = 0; i < edge.bindings.size(); ++i) {
      if (i > 0) out += ", ";
      out += edge.bindings[i].src_column + "->$" +
             std::to_string(edge.bindings[i].dst_param);
    }
    out += "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace chrono::core
