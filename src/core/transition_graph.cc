#include "core/transition_graph.h"

#include <algorithm>

namespace chrono::core {

TransitionGraph::TransitionGraph(SimTime delta_t, size_t window_cap)
    : delta_t_(delta_t), window_cap_(window_cap) {}

void TransitionGraph::Observe(TemplateId tmpl, SimTime now) {
  // Expire occurrences that fell out of the Δt window.
  while (!recent_.empty() && (recent_.front().time < now - delta_t_ ||
                              recent_.size() >= window_cap_)) {
    recent_.pop_front();
  }
  // Credit this submission as a successor of each live prior occurrence,
  // at most once per (occurrence, template) pair.
  for (auto& occ : recent_) {
    if (std::find(occ.counted.begin(), occ.counted.end(), tmpl) !=
        occ.counted.end()) {
      continue;
    }
    occ.counted.push_back(tmpl);
    auto& count = edges_[occ.tmpl][tmpl];
    if (count == 0) {
      auto& preds = preds_[tmpl];
      if (std::find(preds.begin(), preds.end(), occ.tmpl) == preds.end()) {
        preds.push_back(occ.tmpl);
      }
    }
    ++count;
  }
  ++occurrences_[tmpl];
  recent_.push_back(Occurrence{tmpl, now, {}});
}

double TransitionGraph::Probability(TemplateId from, TemplateId to) const {
  auto occ_it = occurrences_.find(from);
  if (occ_it == occurrences_.end() || occ_it->second == 0) return 0;
  auto from_it = edges_.find(from);
  if (from_it == edges_.end()) return 0;
  auto to_it = from_it->second.find(to);
  if (to_it == from_it->second.end()) return 0;
  return static_cast<double>(to_it->second) /
         static_cast<double>(occ_it->second);
}

uint64_t TransitionGraph::Occurrences(TemplateId tmpl) const {
  auto it = occurrences_.find(tmpl);
  return it == occurrences_.end() ? 0 : it->second;
}

std::vector<TemplateId> TransitionGraph::CorrelatedSuccessors(
    TemplateId from, double tau) const {
  std::vector<TemplateId> out;
  auto it = edges_.find(from);
  if (it == edges_.end()) return out;
  for (const auto& [to, count] : it->second) {
    (void)count;
    if (Probability(from, to) >= tau) out.push_back(to);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TemplateId> TransitionGraph::CorrelatedPredecessors(
    TemplateId tmpl, double tau) const {
  std::vector<TemplateId> out;
  auto it = preds_.find(tmpl);
  if (it == preds_.end()) return out;
  for (TemplateId p : it->second) {
    if (Probability(p, tmpl) >= tau) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TemplateId> TransitionGraph::Nodes() const {
  std::vector<TemplateId> out;
  out.reserve(occurrences_.size());
  for (const auto& [tmpl, count] : occurrences_) {
    (void)count;
    out.push_back(tmpl);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<TemplateId, TemplateId>> TransitionGraph::TauEdges(
    double tau) const {
  std::vector<std::pair<TemplateId, TemplateId>> out;
  for (const auto& [from, targets] : edges_) {
    for (const auto& [to, count] : targets) {
      (void)count;
      if (Probability(from, to) >= tau) out.emplace_back(from, to);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace chrono::core
