#ifndef CHRONOCACHE_CORE_DEPENDENCY_GRAPH_H_
#define CHRONOCACHE_CORE_DEPENDENCY_GRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/transition_graph.h"

namespace chrono::core {

/// \brief One column-to-parameter mapping carried by a dependency edge:
/// the value of `src_column` in the source query's result set supplies the
/// destination query's parameter at position `dst_param` (§2.1.1).
struct ParamBinding {
  std::string src_column;
  int dst_param = 0;

  bool operator==(const ParamBinding& o) const {
    return src_column == o.src_column && dst_param == o.dst_param;
  }
  bool operator<(const ParamBinding& o) const {
    if (src_column != o.src_column) return src_column < o.src_column;
    return dst_param < o.dst_param;
  }
};

/// \brief A directed dependency edge: src's result set provides input
/// parameter(s) of dst.
struct DepEdge {
  TemplateId src = 0;
  TemplateId dst = 0;
  std::vector<ParamBinding> bindings;  // kept sorted
};

/// \brief Role of a node within a dependency graph.
enum class NodeRole {
  /// Text must arrive from the client before the graph can fire (§3):
  /// some parameters are not determined by other queries in the graph.
  kDependency,
  /// All parameters are covered by in-graph mappings; predicted and
  /// prefetched by the combiner.
  kPredicted,
  /// In-loop query with per-loop constants (§2.2): parameters not covered
  /// by mappings become known from the loop's first observed iteration.
  kLoopConstant,
};

/// \brief A dependency graph (§2.1.1): templates plus parameter-sharing
/// edges, with loop-constant markings from the loop detector (§2.2).
struct DependencyGraph {
  std::vector<TemplateId> nodes;            // sorted, unique
  std::vector<DepEdge> edges;               // sorted by (src, dst)
  std::map<TemplateId, int> param_counts;   // per node
  std::set<TemplateId> loop_marked;         // per-loop-constant queries

  /// Parameter positions of `node` covered by incoming edges.
  std::set<int> CoveredParams(TemplateId node) const;

  NodeRole RoleOf(TemplateId node) const;

  /// Nodes whose text must be supplied by the client before firing:
  /// kDependency nodes plus kLoopConstant nodes (the latter must observe
  /// one loop iteration, §2.2).
  std::vector<TemplateId> TextDependencies() const;

  /// kDependency nodes only (the roots the table is keyed by).
  std::vector<TemplateId> DependencyQueries() const;

  /// Topological order over edges (dependencies first). Returns empty if
  /// the graph is cyclic (invalid).
  std::vector<TemplateId> TopologicalOrder() const;

  /// Containment-based subsumption (§3): this graph subsumes `other` iff it
  /// contains all of other's nodes, edges and bindings — except that a graph
  /// with loop-constant dependencies never subsumes (nor is subsumed by) one
  /// without, because loop-constant graphs must wait for a loop iteration.
  bool Subsumes(const DependencyGraph& other) const;

  /// Stable identity used for exact-duplicate detection in the manager.
  std::string CanonicalKey() const;

  /// Sorts nodes/edges/bindings into canonical order. Call after building.
  void Normalize();

  bool ContainsNode(TemplateId node) const;

  /// Graphviz rendering for debugging/inspection: nodes labelled with their
  /// role (loop-constant nodes dashed), edges with their column->parameter
  /// bindings. `labels` optionally maps template ids to display names.
  std::string ToDot(
      const std::map<TemplateId, std::string>& labels = {}) const;
};

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_DEPENDENCY_GRAPH_H_
