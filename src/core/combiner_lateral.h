#ifndef CHRONOCACHE_CORE_COMBINER_LATERAL_H_
#define CHRONOCACHE_CORE_COMBINER_LATERAL_H_

#include "common/result.h"
#include "core/combiner_cte.h"

namespace chrono::core {

/// \brief §4.2: combines a ready dependency graph using lateral derived
/// tables. Handles the broader query class (aggregates, ORDER BY, LIMIT,
/// DISTINCT) that the CTE-join strategy cannot: each query becomes a
/// LATERAL subquery over its dependency queries with mapped parameters
/// substituted by outer column references, and ChronoCache induces its own
/// candidate keys by adding ROW_NUMBER() OVER () to every derived table.
/// Queries at the same topological height are aligned by joining on their
/// row numbers.
class LateralUnionCombiner {
 public:
  /// Applicability: SELECT-only nodes with explicit select lists and a
  /// single dependency root.
  static bool CanHandle(const CombineInput& in);

  static Result<CombinedQuery> Combine(const CombineInput& in);
};

/// Strategy selection (§4): CTE-join wherever possible, lateral union as
/// the fallback for the broader query class.
Result<CombinedQuery> CombineGraph(const CombineInput& in);

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_COMBINER_LATERAL_H_
