#ifndef CHRONOCACHE_CORE_DEPENDENCY_MANAGER_H_
#define CHRONOCACHE_CORE_DEPENDENCY_MANAGER_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dependency_graph.h"

namespace chrono::core {

/// \brief A client's dependency table (§3): stores extracted dependency
/// graphs, discards exact duplicates, retains only superset graphs under
/// subsumption, and tracks per-graph text availability so Algorithm 1's
/// `mark_text_avail` can report which graphs are ready to fire.
///
/// Readiness: all kDependency node texts have arrived, and (for loop
/// graphs with per-loop constants) all kLoopConstant node texts have
/// arrived *after* the most recent dependency arrival — i.e. the first
/// iteration of the current loop invocation has been observed (§2.2).
class DependencyManager {
 public:
  struct Options {
    bool enable_subsumption = true;
  };

  DependencyManager() : options_(Options{}) {}
  explicit DependencyManager(Options options) : options_(options) {}

  /// Merge procedure from §3. Returns true if the graph was added (not a
  /// duplicate and not subsumed by an existing graph).
  bool AddGraph(DependencyGraph graph);

  /// Records that `tmpl`'s text just arrived from the client; returns the
  /// graphs that became ready to be predictively combined. Ready graphs'
  /// availability state is consumed (reset) so they re-arm for the next
  /// pattern instance.
  std::vector<const DependencyGraph*> MarkTextAvail(TemplateId tmpl);

  /// True if `tmpl` participates in any stored graph (its text/params are
  /// worth retaining for combination).
  bool IsRelevant(TemplateId tmpl) const;

  size_t graph_count() const;
  uint64_t graphs_discarded_duplicate() const { return dup_discards_; }
  uint64_t graphs_discarded_subsumed() const { return subsume_discards_; }

  /// All active graphs (tests/introspection).
  std::vector<const DependencyGraph*> Graphs() const;

 private:
  struct Entry {
    DependencyGraph graph;
    std::vector<TemplateId> deps;    // kDependency nodes
    std::vector<TemplateId> marked;  // kLoopConstant nodes
    std::set<TemplateId> avail_deps;
    std::set<TemplateId> avail_marked;
  };

  void Index(size_t entry_index);

  Options options_;
  std::vector<Entry> entries_;
  std::vector<bool> active_;
  std::set<std::string> known_keys_;
  std::unordered_map<TemplateId, std::vector<size_t>> by_text_dep_;
  std::unordered_map<TemplateId, std::vector<size_t>> by_node_;
  uint64_t dup_discards_ = 0;
  uint64_t subsume_discards_ = 0;
};

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_DEPENDENCY_MANAGER_H_
