#ifndef CHRONOCACHE_CORE_SESSION_H_
#define CHRONOCACHE_CORE_SESSION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/lru_cache.h"

namespace chrono::core {

using ClientId = int;

/// \brief Session-semantics bookkeeping (§5.2): a middleware node's local
/// view of the database's per-relation versions (Vd) plus each client's
/// session vector (Vc). Cached results carry sparse version vectors (Vr);
/// a client may consume a cached result only if Vr[i] >= Vc[i] for every
/// relation i the result's query accessed, after which Vc absorbs Vr.
///
/// In multi-node deployments (§5.2, last paragraph) every remote database
/// access increments *all* entries of Vd, because other nodes may have
/// advanced the database state invisibly; results are then additionally
/// keyed by node id so version vectors are never compared across nodes.
class SessionManager {
 public:
  /// `multi_node` selects the conservative multi-node advancement rule.
  explicit SessionManager(bool multi_node) : multi_node_(multi_node) {}

  /// Dense id for a relation name (lazily assigned).
  int RelationId(const std::string& name);

  /// A client wrote the given relations: bump Vd and sync the writer's Vc
  /// so it observes its own writes.
  void OnClientWrite(ClientId client, const std::vector<std::string>& writes);

  /// Any remote database access in multi-node mode advances every relation.
  void OnRemoteAccess();

  /// Vd snapshot restricted to the given relations (tag for a new result).
  cache::VersionVector SnapshotFor(const std::vector<std::string>& reads);

  /// A client received a fresh result from the remote database: Vc = Vd
  /// (§5.2).
  void SyncClientToDb(ClientId client);

  /// May `client` consume a cached result with versions `vr`?
  bool CanUse(ClientId client, const cache::VersionVector& vr) const;

  /// Vc[i] = max(Vc[i], Vr[i]) after a cache read.
  void AbsorbResult(ClientId client, const cache::VersionVector& vr);

  uint64_t VersionOf(const std::string& relation) const;
  size_t relation_count() const { return vd_.size(); }

 private:
  std::vector<uint64_t>& ClientVector(ClientId client);

  bool multi_node_;
  std::unordered_map<std::string, int> relation_ids_;
  std::vector<uint64_t> vd_;  // database versions, indexed by relation id
  std::unordered_map<ClientId, std::vector<uint64_t>> vc_;
};

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_SESSION_H_
