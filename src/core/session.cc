#include "core/session.h"

#include <algorithm>

namespace chrono::core {

int SessionManager::RelationId(const std::string& name) {
  auto it = relation_ids_.find(name);
  if (it != relation_ids_.end()) return it->second;
  int id = static_cast<int>(vd_.size());
  relation_ids_.emplace(name, id);
  vd_.push_back(1);  // §5.2: versions start at 1
  return id;
}

std::vector<uint64_t>& SessionManager::ClientVector(ClientId client) {
  auto& vc = vc_[client];
  if (vc.size() < vd_.size()) vc.resize(vd_.size(), 0);
  return vc;
}

void SessionManager::OnClientWrite(ClientId client,
                                   const std::vector<std::string>& writes) {
  auto& vc = ClientVector(client);
  for (const auto& rel : writes) {
    int id = RelationId(rel);
    ++vd_[static_cast<size_t>(id)];
    if (vc.size() < vd_.size()) vc.resize(vd_.size(), 0);
    vc[static_cast<size_t>(id)] = vd_[static_cast<size_t>(id)];
  }
}

void SessionManager::OnRemoteAccess() {
  if (!multi_node_) return;
  for (auto& v : vd_) ++v;
}

cache::VersionVector SessionManager::SnapshotFor(
    const std::vector<std::string>& reads) {
  cache::VersionVector out;
  out.reserve(reads.size());
  for (const auto& rel : reads) {
    int id = RelationId(rel);
    out.emplace_back(id, vd_[static_cast<size_t>(id)]);
  }
  return out;
}

void SessionManager::SyncClientToDb(ClientId client) {
  auto& vc = ClientVector(client);
  vc = vd_;
}

bool SessionManager::CanUse(ClientId client,
                            const cache::VersionVector& vr) const {
  auto it = vc_.find(client);
  if (it == vc_.end()) return true;  // fresh client: any snapshot works
  const auto& vc = it->second;
  for (const auto& [rel, version] : vr) {
    uint64_t client_v =
        static_cast<size_t>(rel) < vc.size() ? vc[static_cast<size_t>(rel)] : 0;
    if (version < client_v) return false;
  }
  return true;
}

void SessionManager::AbsorbResult(ClientId client,
                                  const cache::VersionVector& vr) {
  auto& vc = ClientVector(client);
  for (const auto& [rel, version] : vr) {
    if (static_cast<size_t>(rel) >= vc.size()) vc.resize(vd_.size(), 0);
    vc[static_cast<size_t>(rel)] =
        std::max(vc[static_cast<size_t>(rel)], version);
  }
}

uint64_t SessionManager::VersionOf(const std::string& relation) const {
  auto it = relation_ids_.find(relation);
  if (it == relation_ids_.end()) return 0;
  return vd_[static_cast<size_t>(it->second)];
}

}  // namespace chrono::core
