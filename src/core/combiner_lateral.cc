#include "core/combiner_lateral.h"

#include <algorithm>
#include <map>
#include <set>

#include "sql/writer.h"

namespace chrono::core {

using sql::Expr;
using sql::SelectStmt;
using sql::Value;

namespace {

bool HasAggregateItem(const SelectStmt& sel) {
  for (const auto& item : sel.items) {
    std::vector<const sql::Expr*> work{item.expr.get()};
    while (!work.empty()) {
      const sql::Expr* e = work.back();
      work.pop_back();
      if (e == nullptr) continue;
      if (e->kind == sql::Expr::Kind::kFuncCall &&
          (e->func_name == "count" || e->func_name == "sum" ||
           e->func_name == "avg" || e->func_name == "min" ||
           e->func_name == "max")) {
        return true;
      }
      for (const auto& c : e->children) work.push_back(c.get());
    }
  }
  return false;
}

/// True when the query returns at most one row per invocation: an
/// ungrouped aggregate (always exactly one row) or LIMIT 1. Such queries
/// can sit at a shared topological height behind a ROW_NUMBER() join
/// without losing rows (§4.2).
bool SingleRowPerIteration(const SelectStmt& sel) {
  if (sel.group_by.empty() && HasAggregateItem(sel)) return true;
  return sel.limit.has_value() && *sel.limit <= 1;
}

/// Longest-path-from-root heights over the graph's edges.
std::map<TemplateId, int> TopoHeights(const DependencyGraph& g,
                                      const std::vector<TemplateId>& topo) {
  std::map<TemplateId, int> height;
  for (TemplateId node : topo) {
    int h = 0;
    for (const auto& e : g.edges) {
      if (e.dst != node) continue;
      h = std::max(h, height[e.src] + 1);
    }
    height[node] = h;
  }
  return height;
}

/// Emission order: topological, but within each height the (at most one)
/// multi-row query first so the row-number alignment is lossless.
Result<std::vector<TemplateId>> EmissionOrder(const CombineInput& in,
                                              const DependencyGraph& g) {
  std::vector<TemplateId> topo = g.TopologicalOrder();
  if (topo.empty()) return Status::InvalidArgument("cyclic dependency graph");
  std::map<TemplateId, int> height = TopoHeights(g, topo);
  std::map<int, int> multi_row_at_height;
  std::vector<std::pair<int, TemplateId>> keyed;  // (sort key, node)
  for (size_t k = 0; k < topo.size(); ++k) {
    TemplateId node = topo[k];
    const sql::QueryTemplate* tmpl = in.registry->Find(node);
    if (tmpl == nullptr || tmpl->ast->kind != sql::Statement::Kind::kSelect) {
      return Status::Unsupported("non-select node in lateral combination");
    }
    bool single = SingleRowPerIteration(*tmpl->ast->select);
    if (!single) ++multi_row_at_height[height[node]];
    keyed.emplace_back(height[node] * 2 + (single ? 1 : 0), node);
  }
  for (const auto& [h, n] : multi_row_at_height) {
    (void)h;
    if (n > 1) {
      return Status::Unsupported(
          "multiple multi-row queries at one topological height: the "
          "row-number alignment would drop rows");
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<TemplateId> order;
  order.reserve(keyed.size());
  for (const auto& [key, node] : keyed) {
    (void)key;
    order.push_back(node);
  }
  return order;
}

}  // namespace

bool LateralUnionCombiner::CanHandle(const CombineInput& in) {
  const DependencyGraph& g = *in.graph;
  if (g.DependencyQueries().size() != 1) return false;
  for (TemplateId node : g.nodes) {
    const sql::QueryTemplate* tmpl = in.registry->Find(node);
    if (tmpl == nullptr || tmpl->ast->kind != sql::Statement::Kind::kSelect) {
      return false;
    }
    const SelectStmt& sel = *tmpl->ast->select;
    if (!sel.ctes.empty()) return false;
    for (const auto& item : sel.items) {
      if (item.is_star) return false;
    }
  }
  return EmissionOrder(in, g).ok();
}

Result<CombinedQuery> LateralUnionCombiner::Combine(const CombineInput& in) {
  const DependencyGraph& g = *in.graph;
  const TemplateRegistry& registry = *in.registry;

  CHRONO_ASSIGN_OR_RETURN(std::vector<TemplateId> topo, EmissionOrder(in, g));

  std::map<TemplateId, size_t> slot_of;
  for (size_t k = 0; k < topo.size(); ++k) slot_of[topo[k]] = k;

  // Topological height: longest path from a root. Same-height queries are
  // aligned by a join on their induced row numbers (§4.2); EmissionOrder
  // guarantees at most one multi-row query per height, emitted first.
  std::map<TemplateId, int> height = TopoHeights(g, topo);

  CombinedQuery out;
  // Assembled as an AST and rendered to text once at the end; the
  // middleware executes the AST so the combined query is never re-parsed.
  auto outer = std::make_unique<SelectStmt>();
  int next_out_col = 0;

  std::vector<std::vector<std::string>> out_aliases(topo.size());
  std::vector<std::vector<std::string>> out_names(topo.size());
  std::vector<std::string> rn_aliases(topo.size());
  // First emitted slot per height: same-height row-number joins attach to
  /// it (it is the only possibly-multi-row query at that height).
  std::map<int, size_t> first_at_height;

  for (size_t k = 0; k < topo.size(); ++k) {
    TemplateId node = topo[k];
    const sql::QueryTemplate* qt = registry.Find(node);
    if (qt == nullptr) return Status::Internal("template missing from registry");
    auto sel = qt->ast->select->Clone();
    const std::string dt_name = "d" + std::to_string(k + 1);

    CHRONO_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            TemplateOutputNames(*sel));
    out_names[k] = names;

    // Incoming mappings.
    std::map<int, std::pair<TemplateId, std::string>> mapped;
    std::vector<int> parent_slots;
    for (const auto& e : g.edges) {
      if (e.dst != node) continue;
      for (const auto& b : e.bindings) {
        mapped.emplace(b.dst_param, std::make_pair(e.src, b.src_column));
      }
      parent_slots.push_back(static_cast<int>(slot_of[e.src]));
    }
    std::sort(parent_slots.begin(), parent_slots.end());
    parent_slots.erase(std::unique(parent_slots.begin(), parent_slots.end()),
                       parent_slots.end());

    // Locate each mapped source column's alias for substitution.
    auto source_ref = [&](TemplateId src_tmpl, const std::string& src_col)
        -> Result<std::pair<std::string, int>> {
      size_t src_slot = slot_of.at(src_tmpl);
      for (size_t i = 0; i < out_names[src_slot].size(); ++i) {
        if (out_names[src_slot][i] == src_col) {
          return std::make_pair(
              "d" + std::to_string(src_slot + 1),
              static_cast<int>(i));
        }
      }
      return Status::Unsupported("mapping column " + src_col +
                                 " not in source select list");
    };

    // Substitute parameters: mapped -> outer column reference (lateral
    // correlation); unmapped -> latest observed constant.
    const std::vector<Value>* latest = nullptr;
    auto lp_it = in.latest_params->find(node);
    if (lp_it != in.latest_params->end()) latest = &lp_it->second;
    Status bind_status = Status::OK();
    RewriteParams(sel.get(), [&](Expr* e) {
      auto m_it = mapped.find(e->param_index);
      if (m_it != mapped.end()) {
        auto ref = source_ref(m_it->second.first, m_it->second.second);
        if (!ref.ok()) {
          bind_status = ref.status();
          return;
        }
        size_t src_slot = slot_of.at(m_it->second.first);
        e->kind = Expr::Kind::kColumnRef;
        e->table = ref->first;
        e->column = out_aliases[src_slot][static_cast<size_t>(ref->second)];
        e->param_index = -1;
        return;
      }
      if (latest == nullptr ||
          static_cast<size_t>(e->param_index) >= latest->size()) {
        bind_status = Status::InvalidArgument(
            "no observed constant for parameter " +
            std::to_string(e->param_index));
        return;
      }
      e->literal = (*latest)[static_cast<size_t>(e->param_index)];
      e->kind = Expr::Kind::kLiteral;
      e->param_index = -1;
    });
    CHRONO_RETURN_NOT_OK(bind_status);

    // Alias the select list and induce the row-number candidate key.
    for (size_t i = 0; i < sel->items.size(); ++i) {
      std::string alias = dt_name + "c" + std::to_string(i);
      sel->items[i].alias = alias;
      out_aliases[k].push_back(alias);
    }
    {
      sql::SelectItem rn;
      rn.expr = Expr::MakeRowNumber();
      rn.alias = dt_name + "rn";
      rn_aliases[k] = rn.alias;
      sel->items.push_back(std::move(rn));
    }

    if (k == 0) {
      outer->from.kind = sql::TableRef::Kind::kSubquery;
      outer->from.alias = dt_name;
      outer->from.subquery = std::move(sel);
    } else {
      sql::JoinClause join;
      join.type = sql::JoinClause::Type::kLeft;
      join.ref.kind = sql::TableRef::Kind::kLateralSubquery;
      join.ref.alias = dt_name;
      join.ref.subquery = std::move(sel);
      auto same_h = first_at_height.find(height[node]);
      if (same_h != first_at_height.end()) {
        // Align on the sibling's row number; when the sibling produced no
        // rows for this iteration (its rn is NULL from the left join) this
        // query's single row must still survive.
        size_t sib = same_h->second;
        const std::string sib_dt = "d" + std::to_string(sib + 1);
        join.on = Expr::MakeBinary(
            sql::BinOp::kOr,
            Expr::MakeBinary(sql::BinOp::kEq,
                             Expr::MakeColumnRef(dt_name, rn_aliases[k]),
                             Expr::MakeColumnRef(sib_dt, rn_aliases[sib])),
            Expr::MakeIsNull(Expr::MakeColumnRef(sib_dt, rn_aliases[sib]),
                             /*is_not=*/false));
      } else {
        // ON TRUE (parsed as the literal 1, which is what TRUE lexes to).
        join.on = Expr::MakeLiteral(Value::Int(1));
      }
      outer->joins.push_back(std::move(join));
    }
    first_at_height.emplace(height[node], k);

    // Outer select list + decode slot.
    DecodeSlot slot;
    slot.tmpl = node;
    slot.result_names = out_names[k];
    slot.parents = parent_slots;
    for (const auto& alias : out_aliases[k]) {
      sql::SelectItem item;
      item.expr = Expr::MakeColumnRef(dt_name, alias);
      item.alias = alias;
      outer->items.push_back(std::move(item));
      slot.result_cols.push_back(next_out_col++);
    }
    {
      sql::SelectItem item;
      item.expr = Expr::MakeColumnRef(dt_name, rn_aliases[k]);
      item.alias = rn_aliases[k];
      outer->items.push_back(std::move(item));
    }
    slot.ck_cols.push_back(next_out_col++);

    slot.bound_params.assign(static_cast<size_t>(qt->param_count),
                             Value::Null());
    if (latest != nullptr) {
      for (size_t p = 0; p < slot.bound_params.size() && p < latest->size();
           ++p) {
        slot.bound_params[p] = (*latest)[p];
      }
    }
    for (const auto& [pos, src] : mapped) {
      CHRONO_ASSIGN_OR_RETURN(auto ref, source_ref(src.first, src.second));
      size_t src_slot = slot_of.at(src.first);
      slot.mapped_params.emplace_back(
          pos, out.slots[src_slot].result_cols[static_cast<size_t>(ref.second)]);
    }
    out.slots.push_back(std::move(slot));
  }

  auto stmt = std::make_unique<sql::Statement>();
  stmt->kind = sql::Statement::Kind::kSelect;
  stmt->select = std::move(outer);
  out.sql = sql::WriteStatement(*stmt);
  out.ast = std::move(stmt);
  return out;
}

Result<CombinedQuery> CombineGraph(const CombineInput& in) {
  if (CteJoinCombiner::CanHandle(in)) {
    auto combined = CteJoinCombiner::Combine(in);
    if (combined.ok()) return combined;
    // Non-strippable shapes fall through to the lateral strategy.
  }
  if (LateralUnionCombiner::CanHandle(in)) {
    return LateralUnionCombiner::Combine(in);
  }
  return Status::Unsupported("dependency graph is not combinable");
}

}  // namespace chrono::core
