#include "core/result_splitter.h"

#include <optional>

namespace chrono::core {

namespace {

using sql::Row;
using sql::Value;

/// Candidate-key tuple extracted from one combined-result row.
std::vector<Value> ExtractCk(const Row& row, const std::vector<int>& cols) {
  std::vector<Value> out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(row[static_cast<size_t>(c)]);
  return out;
}

bool CkEquals(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

bool CkAllNull(const std::vector<Value>& ck) {
  for (const auto& v : ck) {
    if (!v.is_null()) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<SplitEntry>> SplitResult(const CombinedQuery& combined,
                                            const sql::ResultSet& result,
                                            const TemplateRegistry& registry) {
  const size_t n_slots = combined.slots.size();

  struct SlotState {
    sql::ResultSet current;
    std::optional<std::string> current_key;  // unset = iteration not started
    std::vector<Value> current_params;
    std::optional<std::vector<Value>> last_own_ck;
    std::vector<Value> prev_row_ck;  // this slot's ck in the previous row
    bool has_prev_row = false;
  };
  std::vector<SlotState> states(n_slots);
  std::vector<SplitEntry> out;

  // Renders the cache key for a slot's iteration given the combined row the
  // iteration started on. Returns nullopt when a mapped parameter value is
  // NULL (the original query would never have been issued).
  auto render_key = [&](const DecodeSlot& slot, const Row& row,
                        std::vector<Value>* params_out)
      -> std::optional<std::string> {
    const sql::QueryTemplate* tmpl = registry.Find(slot.tmpl);
    if (tmpl == nullptr) return std::nullopt;
    std::vector<Value> params = slot.bound_params;
    for (const auto& [pos, col] : slot.mapped_params) {
      const Value& v = row[static_cast<size_t>(col)];
      if (v.is_null()) return std::nullopt;
      if (static_cast<size_t>(pos) >= params.size()) return std::nullopt;
      params[static_cast<size_t>(pos)] = v;
    }
    std::string key = sql::RenderBoundText(*tmpl, params);
    *params_out = std::move(params);
    return key;
  };

  auto close_iteration = [&](size_t k) {
    SlotState& st = states[k];
    if (!st.current_key.has_value()) return;
    SplitEntry entry;
    entry.tmpl = combined.slots[k].tmpl;
    entry.key = *st.current_key;
    entry.params = std::move(st.current_params);
    entry.result =
        std::make_shared<const sql::ResultSet>(std::move(st.current));
    out.push_back(std::move(entry));
    st.current = sql::ResultSet(combined.slots[k].result_names);
    st.current_key.reset();
    st.last_own_ck.reset();
  };

  // Initialise running result sets.
  for (size_t k = 0; k < n_slots; ++k) {
    states[k].current = sql::ResultSet(combined.slots[k].result_names);
  }

  for (size_t r = 0; r < result.row_count(); ++r) {
    const Row& row = result.row(r);

    // Pass 1: detect candidate-key changes per slot for this row.
    std::vector<std::vector<Value>> row_cks(n_slots);
    std::vector<bool> ck_changed(n_slots, false);
    for (size_t k = 0; k < n_slots; ++k) {
      row_cks[k] = ExtractCk(row, combined.slots[k].ck_cols);
      ck_changed[k] = !states[k].has_prev_row ||
                      !CkEquals(row_cks[k], states[k].prev_row_ck);
    }

    // Pass 2: process slots in topological order.
    for (size_t k = 0; k < n_slots; ++k) {
      const DecodeSlot& slot = combined.slots[k];
      SlotState& st = states[k];

      bool parent_changed = false;
      for (int p : slot.parents) {
        if (ck_changed[static_cast<size_t>(p)]) parent_changed = true;
      }

      if (parent_changed) {
        // A dependency moved to its next row: the running result set
        // belongs to the previous iteration — close it (§4.1.1).
        close_iteration(k);
      }

      const std::vector<Value>& own_ck = row_cks[k];
      bool own_null = CkAllNull(own_ck) && !own_ck.empty();

      // Start a new iteration lazily (needs the row's parent values for
      // the key) — even when this row carries no data for the slot (left
      // join produced NULLs), the iteration exists and is empty.
      if (!st.current_key.has_value()) {
        bool parents_present = true;
        for (int p : slot.parents) {
          if (CkAllNull(row_cks[static_cast<size_t>(p)]) &&
              !row_cks[static_cast<size_t>(p)].empty()) {
            parents_present = false;
          }
        }
        if (parents_present) {
          st.current_key = render_key(slot, row, &st.current_params);
        }
      }
      if (!st.current_key.has_value()) {
        st.prev_row_ck = own_ck;
        st.has_prev_row = true;
        continue;
      }

      if (own_null) {
        st.prev_row_ck = own_ck;
        st.has_prev_row = true;
        continue;  // empty iteration: key recorded, no rows
      }

      // Deduplicate fan-out: add the row only when this slot's candidate
      // key differs from the last appended one in this iteration.
      bool duplicate =
          st.last_own_ck.has_value() && CkEquals(*st.last_own_ck, own_ck);
      if (!duplicate) {
        Row values;
        values.reserve(slot.result_cols.size());
        for (int c : slot.result_cols) {
          values.push_back(row[static_cast<size_t>(c)]);
        }
        st.current.AddRow(std::move(values));
        st.last_own_ck = own_ck;
      }
      st.prev_row_ck = own_ck;
      st.has_prev_row = true;
    }
  }

  // Flush all open iterations.
  for (size_t k = 0; k < n_slots; ++k) close_iteration(k);

  // An empty combined result still defines an empty result for the root
  // query (its key is computable without row values).
  if (result.row_count() == 0 && !combined.slots.empty() &&
      combined.slots[0].parents.empty()) {
    const DecodeSlot& root = combined.slots[0];
    if (root.mapped_params.empty()) {
      const sql::QueryTemplate* tmpl = registry.Find(root.tmpl);
      if (tmpl != nullptr) {
        SplitEntry entry;
        entry.tmpl = root.tmpl;
        entry.key = sql::RenderBoundText(*tmpl, root.bound_params);
        entry.params = root.bound_params;
        entry.result =
            std::make_shared<const sql::ResultSet>(root.result_names);
        out.push_back(std::move(entry));
      }
    }
  }

  return out;
}

}  // namespace chrono::core
