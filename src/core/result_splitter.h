#ifndef CHRONOCACHE_CORE_RESULT_SPLITTER_H_
#define CHRONOCACHE_CORE_RESULT_SPLITTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/template_registry.h"
#include "sql/ast.h"
#include "sql/result_set.h"

namespace chrono::core {

/// \brief Decode instructions for one original query inside a combined
/// query's result set. Built by the combiners, consumed by SplitResult().
struct DecodeSlot {
  TemplateId tmpl = 0;

  /// Combined-result column indexes holding this query's output values,
  /// in the original select-list order.
  std::vector<int> result_cols;
  /// Output column names of the original query (the split result sets get
  /// these, so they are indistinguishable from direct execution).
  std::vector<std::string> result_names;

  /// Combined-result column indexes forming this query's candidate key
  /// (§4.1: concatenated base-table rowids for the CTE strategy; the
  /// induced ROW_NUMBER() for the lateral strategy).
  std::vector<int> ck_cols;

  /// Indexes (into CombinedQuery::slots) of the queries this one depends
  /// on. A change in any parent's candidate key starts a new result set.
  std::vector<int> parents;

  /// Full parameter vector for this query; mapped positions hold
  /// placeholders overwritten per iteration via `mapped_params`.
  std::vector<sql::Value> bound_params;
  /// (parameter position, combined-result column index of the providing
  /// source value). Used to reconstruct each iteration's cache key.
  std::vector<std::pair<int, int>> mapped_params;
};

/// \brief A predictively combined query: the SQL text submitted to the
/// remote database plus the decode plan for splitting its result.
struct CombinedQuery {
  std::string sql;
  /// The parse tree `sql` was rendered from. The middleware hands this
  /// straight to the database (zero re-parse); the text form exists for
  /// wire-protocol fidelity and for cross-validating the AST path.
  std::shared_ptr<const sql::Statement> ast;
  std::vector<DecodeSlot> slots;  // topological order
};

/// \brief One decoded result set: the cache key (the exact text of the
/// original query that would have produced it, §4.1.1), the parameter
/// values of that query instance (Algorithm 1's split_mark_text_avail
/// needs them to cascade readiness), and the rows — already frozen into
/// the shared immutable form the caches store, so installing a split
/// entry never re-materializes the rows.
struct SplitEntry {
  TemplateId tmpl = 0;
  std::string key;
  std::vector<sql::Value> params;
  std::shared_ptr<const sql::ResultSet> result;
};

/// Splits a combined query's result set into the result sets of the
/// original queries (§4.1.1): iterates the combined rows, uses candidate
/// keys to deduplicate join fan-out, and closes a query's running result
/// set whenever a dependency's candidate key changes (one result set per
/// loop iteration).
Result<std::vector<SplitEntry>> SplitResult(const CombinedQuery& combined,
                                            const sql::ResultSet& result,
                                            const TemplateRegistry& registry);

}  // namespace chrono::core

#endif  // CHRONOCACHE_CORE_RESULT_SPLITTER_H_
