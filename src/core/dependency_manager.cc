#include "core/dependency_manager.h"

#include <algorithm>

namespace chrono::core {

bool DependencyManager::AddGraph(DependencyGraph graph) {
  graph.Normalize();
  std::string key = graph.CanonicalKey();
  if (known_keys_.count(key) > 0) {
    ++dup_discards_;
    return false;
  }

  if (options_.enable_subsumption) {
    // Check against graphs sharing any node (§3 merge procedure).
    std::set<size_t> candidates;
    for (TemplateId node : graph.nodes) {
      auto it = by_node_.find(node);
      if (it == by_node_.end()) continue;
      for (size_t idx : it->second) {
        if (active_[idx]) candidates.insert(idx);
      }
    }
    for (size_t idx : candidates) {
      if (entries_[idx].graph.Subsumes(graph)) {
        ++subsume_discards_;
        return false;  // an existing superset graph already covers this one
      }
    }
    // The new graph may subsume (and thus replace) existing graphs.
    for (size_t idx : candidates) {
      if (graph.Subsumes(entries_[idx].graph)) {
        active_[idx] = false;
        ++subsume_discards_;
      }
    }
  }

  known_keys_.insert(std::move(key));
  Entry entry;
  entry.deps = graph.DependencyQueries();
  for (TemplateId m : graph.loop_marked) entry.marked.push_back(m);
  entry.graph = std::move(graph);
  entries_.push_back(std::move(entry));
  active_.push_back(true);
  Index(entries_.size() - 1);
  return true;
}

void DependencyManager::Index(size_t entry_index) {
  const Entry& entry = entries_[entry_index];
  for (TemplateId d : entry.deps) by_text_dep_[d].push_back(entry_index);
  for (TemplateId m : entry.marked) by_text_dep_[m].push_back(entry_index);
  for (TemplateId n : entry.graph.nodes) by_node_[n].push_back(entry_index);
}

std::vector<const DependencyGraph*> DependencyManager::MarkTextAvail(
    TemplateId tmpl) {
  std::vector<const DependencyGraph*> ready;
  auto it = by_text_dep_.find(tmpl);
  if (it == by_text_dep_.end()) return ready;
  for (size_t idx : it->second) {
    if (!active_[idx]) continue;
    Entry& entry = entries_[idx];
    bool is_dep = std::find(entry.deps.begin(), entry.deps.end(), tmpl) !=
                  entry.deps.end();
    if (is_dep) {
      entry.avail_deps.insert(tmpl);
      // A fresh dependency arrival starts a new pattern instance: earlier
      // loop-constant observations belong to the previous invocation.
      entry.avail_marked.clear();
    }
    bool is_marked = std::find(entry.marked.begin(), entry.marked.end(),
                               tmpl) != entry.marked.end();
    if (is_marked && entry.avail_deps.size() == entry.deps.size()) {
      entry.avail_marked.insert(tmpl);
    }
    if (entry.avail_deps.size() == entry.deps.size() &&
        entry.avail_marked.size() == entry.marked.size()) {
      ready.push_back(&entry.graph);
      entry.avail_deps.clear();
      entry.avail_marked.clear();
    }
  }
  return ready;
}

bool DependencyManager::IsRelevant(TemplateId tmpl) const {
  auto it = by_node_.find(tmpl);
  if (it == by_node_.end()) return false;
  for (size_t idx : it->second) {
    if (active_[idx]) return true;
  }
  return false;
}

size_t DependencyManager::graph_count() const {
  size_t n = 0;
  for (bool a : active_) {
    if (a) ++n;
  }
  return n;
}

std::vector<const DependencyGraph*> DependencyManager::Graphs() const {
  std::vector<const DependencyGraph*> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (active_[i]) out.push_back(&entries_[i].graph);
  }
  return out;
}

}  // namespace chrono::core
