# Empty dependencies file for transition_graph_test.
# This may be replaced when dependencies are built.
