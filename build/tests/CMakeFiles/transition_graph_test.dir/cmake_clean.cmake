file(REMOVE_RECURSE
  "CMakeFiles/transition_graph_test.dir/transition_graph_test.cc.o"
  "CMakeFiles/transition_graph_test.dir/transition_graph_test.cc.o.d"
  "transition_graph_test"
  "transition_graph_test.pdb"
  "transition_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
