file(REMOVE_RECURSE
  "CMakeFiles/combiner_lateral_test.dir/combiner_lateral_test.cc.o"
  "CMakeFiles/combiner_lateral_test.dir/combiner_lateral_test.cc.o.d"
  "combiner_lateral_test"
  "combiner_lateral_test.pdb"
  "combiner_lateral_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combiner_lateral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
