# Empty dependencies file for combiner_lateral_test.
# This may be replaced when dependencies are built.
