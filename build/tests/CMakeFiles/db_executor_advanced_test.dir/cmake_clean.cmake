file(REMOVE_RECURSE
  "CMakeFiles/db_executor_advanced_test.dir/db_executor_advanced_test.cc.o"
  "CMakeFiles/db_executor_advanced_test.dir/db_executor_advanced_test.cc.o.d"
  "db_executor_advanced_test"
  "db_executor_advanced_test.pdb"
  "db_executor_advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_executor_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
