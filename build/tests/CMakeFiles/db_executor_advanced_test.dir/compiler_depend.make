# Empty compiler generated dependencies file for db_executor_advanced_test.
# This may be replaced when dependencies are built.
