# Empty compiler generated dependencies file for dependency_manager_test.
# This may be replaced when dependencies are built.
