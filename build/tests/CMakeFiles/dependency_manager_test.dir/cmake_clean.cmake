file(REMOVE_RECURSE
  "CMakeFiles/dependency_manager_test.dir/dependency_manager_test.cc.o"
  "CMakeFiles/dependency_manager_test.dir/dependency_manager_test.cc.o.d"
  "dependency_manager_test"
  "dependency_manager_test.pdb"
  "dependency_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
