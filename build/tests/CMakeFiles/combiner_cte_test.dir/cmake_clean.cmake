file(REMOVE_RECURSE
  "CMakeFiles/combiner_cte_test.dir/combiner_cte_test.cc.o"
  "CMakeFiles/combiner_cte_test.dir/combiner_cte_test.cc.o.d"
  "combiner_cte_test"
  "combiner_cte_test.pdb"
  "combiner_cte_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combiner_cte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
