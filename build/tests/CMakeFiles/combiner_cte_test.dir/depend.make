# Empty dependencies file for combiner_cte_test.
# This may be replaced when dependencies are built.
