# Empty dependencies file for db_executor_test.
# This may be replaced when dependencies are built.
