# Empty dependencies file for result_splitter_test.
# This may be replaced when dependencies are built.
