file(REMOVE_RECURSE
  "CMakeFiles/result_splitter_test.dir/result_splitter_test.cc.o"
  "CMakeFiles/result_splitter_test.dir/result_splitter_test.cc.o.d"
  "result_splitter_test"
  "result_splitter_test.pdb"
  "result_splitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_splitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
