# Empty dependencies file for sql_robustness_test.
# This may be replaced when dependencies are built.
