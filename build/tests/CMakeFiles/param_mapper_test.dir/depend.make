# Empty dependencies file for param_mapper_test.
# This may be replaced when dependencies are built.
