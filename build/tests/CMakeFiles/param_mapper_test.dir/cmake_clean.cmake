file(REMOVE_RECURSE
  "CMakeFiles/param_mapper_test.dir/param_mapper_test.cc.o"
  "CMakeFiles/param_mapper_test.dir/param_mapper_test.cc.o.d"
  "param_mapper_test"
  "param_mapper_test.pdb"
  "param_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
