file(REMOVE_RECURSE
  "CMakeFiles/combiner_property_test.dir/combiner_property_test.cc.o"
  "CMakeFiles/combiner_property_test.dir/combiner_property_test.cc.o.d"
  "combiner_property_test"
  "combiner_property_test.pdb"
  "combiner_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combiner_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
