file(REMOVE_RECURSE
  "CMakeFiles/loop_detector_test.dir/loop_detector_test.cc.o"
  "CMakeFiles/loop_detector_test.dir/loop_detector_test.cc.o.d"
  "loop_detector_test"
  "loop_detector_test.pdb"
  "loop_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
