# Empty dependencies file for loop_detector_test.
# This may be replaced when dependencies are built.
