# Empty dependencies file for remote_db_test.
# This may be replaced when dependencies are built.
