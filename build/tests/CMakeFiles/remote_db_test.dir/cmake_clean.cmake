file(REMOVE_RECURSE
  "CMakeFiles/remote_db_test.dir/remote_db_test.cc.o"
  "CMakeFiles/remote_db_test.dir/remote_db_test.cc.o.d"
  "remote_db_test"
  "remote_db_test.pdb"
  "remote_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
