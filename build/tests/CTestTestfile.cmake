# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sql_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/sql_value_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sql_template_test[1]_include.cmake")
include("/root/repo/build/tests/db_table_test[1]_include.cmake")
include("/root/repo/build/tests/db_executor_test[1]_include.cmake")
include("/root/repo/build/tests/db_executor_advanced_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/transition_graph_test[1]_include.cmake")
include("/root/repo/build/tests/param_mapper_test[1]_include.cmake")
include("/root/repo/build/tests/loop_detector_test[1]_include.cmake")
include("/root/repo/build/tests/dependency_graph_test[1]_include.cmake")
include("/root/repo/build/tests/dependency_manager_test[1]_include.cmake")
include("/root/repo/build/tests/combiner_cte_test[1]_include.cmake")
include("/root/repo/build/tests/combiner_lateral_test[1]_include.cmake")
include("/root/repo/build/tests/combiner_property_test[1]_include.cmake")
include("/root/repo/build/tests/result_splitter_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/middleware_test[1]_include.cmake")
include("/root/repo/build/tests/remote_db_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/trace_replay_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_property_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
