# Empty compiler generated dependencies file for chronocache.
# This may be replaced when dependencies are built.
