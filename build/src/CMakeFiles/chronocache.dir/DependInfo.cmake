
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/lru_cache.cc" "src/CMakeFiles/chronocache.dir/cache/lru_cache.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/cache/lru_cache.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/chronocache.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/chronocache.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/chronocache.dir/common/status.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/chronocache.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/combiner_cte.cc" "src/CMakeFiles/chronocache.dir/core/combiner_cte.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/combiner_cte.cc.o.d"
  "/root/repo/src/core/combiner_lateral.cc" "src/CMakeFiles/chronocache.dir/core/combiner_lateral.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/combiner_lateral.cc.o.d"
  "/root/repo/src/core/dependency_graph.cc" "src/CMakeFiles/chronocache.dir/core/dependency_graph.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/dependency_graph.cc.o.d"
  "/root/repo/src/core/dependency_manager.cc" "src/CMakeFiles/chronocache.dir/core/dependency_manager.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/dependency_manager.cc.o.d"
  "/root/repo/src/core/loop_detector.cc" "src/CMakeFiles/chronocache.dir/core/loop_detector.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/loop_detector.cc.o.d"
  "/root/repo/src/core/middleware.cc" "src/CMakeFiles/chronocache.dir/core/middleware.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/middleware.cc.o.d"
  "/root/repo/src/core/param_mapper.cc" "src/CMakeFiles/chronocache.dir/core/param_mapper.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/param_mapper.cc.o.d"
  "/root/repo/src/core/result_splitter.cc" "src/CMakeFiles/chronocache.dir/core/result_splitter.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/result_splitter.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/chronocache.dir/core/session.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/session.cc.o.d"
  "/root/repo/src/core/transition_graph.cc" "src/CMakeFiles/chronocache.dir/core/transition_graph.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/core/transition_graph.cc.o.d"
  "/root/repo/src/db/catalog.cc" "src/CMakeFiles/chronocache.dir/db/catalog.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/db/catalog.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/chronocache.dir/db/database.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/db/database.cc.o.d"
  "/root/repo/src/db/executor.cc" "src/CMakeFiles/chronocache.dir/db/executor.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/db/executor.cc.o.d"
  "/root/repo/src/db/table.cc" "src/CMakeFiles/chronocache.dir/db/table.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/db/table.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/chronocache.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/harness/experiment.cc.o.d"
  "/root/repo/src/net/latency_model.cc" "src/CMakeFiles/chronocache.dir/net/latency_model.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/net/latency_model.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/chronocache.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/resource.cc" "src/CMakeFiles/chronocache.dir/sim/resource.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/sim/resource.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/chronocache.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/chronocache.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/chronocache.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/result_set.cc" "src/CMakeFiles/chronocache.dir/sql/result_set.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/sql/result_set.cc.o.d"
  "/root/repo/src/sql/template.cc" "src/CMakeFiles/chronocache.dir/sql/template.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/sql/template.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/CMakeFiles/chronocache.dir/sql/value.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/sql/value.cc.o.d"
  "/root/repo/src/sql/writer.cc" "src/CMakeFiles/chronocache.dir/sql/writer.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/sql/writer.cc.o.d"
  "/root/repo/src/workloads/auctionmark.cc" "src/CMakeFiles/chronocache.dir/workloads/auctionmark.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/workloads/auctionmark.cc.o.d"
  "/root/repo/src/workloads/seats.cc" "src/CMakeFiles/chronocache.dir/workloads/seats.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/workloads/seats.cc.o.d"
  "/root/repo/src/workloads/tpce.cc" "src/CMakeFiles/chronocache.dir/workloads/tpce.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/workloads/tpce.cc.o.d"
  "/root/repo/src/workloads/trace_replay.cc" "src/CMakeFiles/chronocache.dir/workloads/trace_replay.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/workloads/trace_replay.cc.o.d"
  "/root/repo/src/workloads/wikipedia.cc" "src/CMakeFiles/chronocache.dir/workloads/wikipedia.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/workloads/wikipedia.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/chronocache.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/chronocache.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
