file(REMOVE_RECURSE
  "libchronocache.a"
)
