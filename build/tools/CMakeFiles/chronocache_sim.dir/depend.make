# Empty dependencies file for chronocache_sim.
# This may be replaced when dependencies are built.
