file(REMOVE_RECURSE
  "CMakeFiles/chronocache_sim.dir/chronocache_sim.cc.o"
  "CMakeFiles/chronocache_sim.dir/chronocache_sim.cc.o.d"
  "chronocache_sim"
  "chronocache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronocache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
