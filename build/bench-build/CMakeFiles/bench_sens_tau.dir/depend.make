# Empty dependencies file for bench_sens_tau.
# This may be replaced when dependencies are built.
