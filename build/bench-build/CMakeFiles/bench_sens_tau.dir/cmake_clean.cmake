file(REMOVE_RECURSE
  "../bench/bench_sens_tau"
  "../bench/bench_sens_tau.pdb"
  "CMakeFiles/bench_sens_tau.dir/bench_sens_tau.cc.o"
  "CMakeFiles/bench_sens_tau.dir/bench_sens_tau.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sens_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
