file(REMOVE_RECURSE
  "../bench/bench_fig9a_tpce"
  "../bench/bench_fig9a_tpce.pdb"
  "CMakeFiles/bench_fig9a_tpce.dir/bench_fig9a_tpce.cc.o"
  "CMakeFiles/bench_fig9a_tpce.dir/bench_fig9a_tpce.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_tpce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
