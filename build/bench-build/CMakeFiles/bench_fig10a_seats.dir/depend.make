# Empty dependencies file for bench_fig10a_seats.
# This may be replaced when dependencies are built.
