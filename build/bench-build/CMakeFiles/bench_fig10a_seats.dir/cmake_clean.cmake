file(REMOVE_RECURSE
  "../bench/bench_fig10a_seats"
  "../bench/bench_fig10a_seats.pdb"
  "CMakeFiles/bench_fig10a_seats.dir/bench_fig10a_seats.cc.o"
  "CMakeFiles/bench_fig10a_seats.dir/bench_fig10a_seats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_seats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
