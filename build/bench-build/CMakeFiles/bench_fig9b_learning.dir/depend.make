# Empty dependencies file for bench_fig9b_learning.
# This may be replaced when dependencies are built.
