file(REMOVE_RECURSE
  "../bench/bench_fig9b_learning"
  "../bench/bench_fig9b_learning.pdb"
  "CMakeFiles/bench_fig9b_learning.dir/bench_fig9b_learning.cc.o"
  "CMakeFiles/bench_fig9b_learning.dir/bench_fig9b_learning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
