# Empty dependencies file for bench_fig10c_scalability.
# This may be replaced when dependencies are built.
