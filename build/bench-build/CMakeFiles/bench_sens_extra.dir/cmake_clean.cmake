file(REMOVE_RECURSE
  "../bench/bench_sens_extra"
  "../bench/bench_sens_extra.pdb"
  "CMakeFiles/bench_sens_extra.dir/bench_sens_extra.cc.o"
  "CMakeFiles/bench_sens_extra.dir/bench_sens_extra.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sens_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
