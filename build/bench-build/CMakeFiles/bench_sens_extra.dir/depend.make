# Empty dependencies file for bench_sens_extra.
# This may be replaced when dependencies are built.
