# Empty compiler generated dependencies file for bench_sens_cache.
# This may be replaced when dependencies are built.
