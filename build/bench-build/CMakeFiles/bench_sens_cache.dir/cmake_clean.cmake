file(REMOVE_RECURSE
  "../bench/bench_sens_cache"
  "../bench/bench_sens_cache.pdb"
  "CMakeFiles/bench_sens_cache.dir/bench_sens_cache.cc.o"
  "CMakeFiles/bench_sens_cache.dir/bench_sens_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sens_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
