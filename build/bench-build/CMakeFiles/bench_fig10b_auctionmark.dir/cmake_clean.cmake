file(REMOVE_RECURSE
  "../bench/bench_fig10b_auctionmark"
  "../bench/bench_fig10b_auctionmark.pdb"
  "CMakeFiles/bench_fig10b_auctionmark.dir/bench_fig10b_auctionmark.cc.o"
  "CMakeFiles/bench_fig10b_auctionmark.dir/bench_fig10b_auctionmark.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_auctionmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
