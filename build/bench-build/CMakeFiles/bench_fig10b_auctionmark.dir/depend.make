# Empty dependencies file for bench_fig10b_auctionmark.
# This may be replaced when dependencies are built.
