file(REMOVE_RECURSE
  "../bench/bench_fig9c_wikipedia"
  "../bench/bench_fig9c_wikipedia.pdb"
  "CMakeFiles/bench_fig9c_wikipedia.dir/bench_fig9c_wikipedia.cc.o"
  "CMakeFiles/bench_fig9c_wikipedia.dir/bench_fig9c_wikipedia.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9c_wikipedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
