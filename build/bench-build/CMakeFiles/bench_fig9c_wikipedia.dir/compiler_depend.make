# Empty compiler generated dependencies file for bench_fig9c_wikipedia.
# This may be replaced when dependencies are built.
