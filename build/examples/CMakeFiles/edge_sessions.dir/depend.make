# Empty dependencies file for edge_sessions.
# This may be replaced when dependencies are built.
