file(REMOVE_RECURSE
  "CMakeFiles/edge_sessions.dir/edge_sessions.cpp.o"
  "CMakeFiles/edge_sessions.dir/edge_sessions.cpp.o.d"
  "edge_sessions"
  "edge_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
