# Empty compiler generated dependencies file for market_watch.
# This may be replaced when dependencies are built.
