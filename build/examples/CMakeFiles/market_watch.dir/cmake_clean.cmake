file(REMOVE_RECURSE
  "CMakeFiles/market_watch.dir/market_watch.cpp.o"
  "CMakeFiles/market_watch.dir/market_watch.cpp.o.d"
  "market_watch"
  "market_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
