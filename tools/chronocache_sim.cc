// chronocache_sim — command-line driver for the simulated deployment.
//
// Examples:
//   chronocache_sim --workload tpce --mode chrono --clients 20
//   chronocache_sim --workload wikipedia --mode lru --duration 120 --timeline
//   chronocache_sim --workload seats --mode chrono --nodes 3 --clients 60
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/tpce.h"
#include "workloads/trace_replay.h"
#include "workloads/wikipedia.h"

using namespace chrono;

namespace {

void Usage() {
  std::printf(
      "chronocache_sim — ChronoCache deployment simulator\n\n"
      "  --workload NAME   tpce | wikipedia | seats | auctionmark "
      "(default tpce)\n"
      "  --trace FILE      replay a SQL trace file instead (see "
      "src/workloads/trace_replay.h)\n"
      "  --mode NAME       chrono | scalpel-cc | scalpel-e | apollo | lru "
      "(default chrono)\n"
      "  --clients N       concurrent clients (default 10)\n"
      "  --nodes N         middleware nodes (default 1)\n"
      "  --warmup SECS     virtual warm-up before measuring (default 20)\n"
      "  --duration SECS   virtual measurement window (default 60)\n"
      "  --tau X           temporal correlation threshold (default 0.8)\n"
      "  --cache-kb N      edge cache size in KiB (default 65536)\n"
      "  --wan-ms N        WAN round-trip in ms (default 70)\n"
      "  --runs N          seeded repetitions (default 1)\n"
      "  --seed N          base RNG seed (default 1)\n"
      "  --groups N        security groups, clients round-robin (default 1)\n"
      "  --journal-out F   persist the prefetch-efficacy event journal to F\n"
      "                    (virtual timestamps; analyze with chrono_audit;\n"
      "                    with --runs N the file holds the last run)\n"
      "  --timeline        print the per-bucket learning curve\n"
      "  --no-loops / --no-loop-constants / --no-combining /\n"
      "  --no-subsumption / --no-redundancy-check\n"
      "                    ablation switches (chrono mode)\n"
      "\nfault injection (deterministic; all off by default):\n"
      "  --fault-error-pct X      fail X%% of backend calls with Unavailable\n"
      "  --fault-spike M          latency-spike multiplier (default 1 = off)\n"
      "  --fault-spike-pct X      %% of calls spiked when --fault-spike > 1\n"
      "                           (default 10)\n"
      "  --fault-blackout-ms N    every backend call fails for N virtual ms\n"
      "  --fault-blackout-at-ms N blackout start offset (default 3000)\n"
      "  --fault-blackout-period-ms N  repeat the blackout every N ms\n"
      "  --fault-seed N           fault schedule seed (default 42)\n"
      "  --retries N              max demand-read attempts (default 3)\n"
      "  --no-retries             disable demand-read retries\n"
      "With faults enabled the exit code stays 0 even when some requests\n"
      "error — surviving the schedule is the experiment.\n");
}

core::SystemMode ParseMode(const std::string& name) {
  if (name == "chrono") return core::SystemMode::kChrono;
  if (name == "scalpel-cc") return core::SystemMode::kScalpelCC;
  if (name == "scalpel-e") return core::SystemMode::kScalpelE;
  if (name == "apollo") return core::SystemMode::kApollo;
  if (name == "lru") return core::SystemMode::kLru;
  std::fprintf(stderr, "unknown mode: %s\n", name.c_str());
  std::exit(2);
}

// Strict flag-value parsers: reject malformed numbers with a clear message
// and exit 2 instead of silently reading atoi's 0.
int64_t IntFlag(const std::string& flag, const std::string& value) {
  int64_t out = 0;
  if (!ParseInt64(value, &out)) {
    std::fprintf(stderr, "invalid value for %s: '%s' (expected an integer)\n",
                 flag.c_str(), value.c_str());
    std::exit(2);
  }
  return out;
}

uint64_t UintFlag(const std::string& flag, const std::string& value) {
  uint64_t out = 0;
  if (!ParseUint64(value, &out)) {
    std::fprintf(stderr,
                 "invalid value for %s: '%s' (expected a non-negative "
                 "integer)\n",
                 flag.c_str(), value.c_str());
    std::exit(2);
  }
  return out;
}

double DoubleFlag(const std::string& flag, const std::string& value) {
  double out = 0;
  if (!ParseDouble(value, &out)) {
    std::fprintf(stderr, "invalid value for %s: '%s' (expected a number)\n",
                 flag.c_str(), value.c_str());
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "tpce";
  std::string trace_path;
  harness::ExperimentConfig config;
  int runs = 1;
  bool timeline = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--trace") {
      trace_path = next();
      workload_name = "trace:" + trace_path;
    } else if (arg == "--mode") {
      config.middleware.mode = ParseMode(next());
    } else if (arg == "--clients") {
      config.clients = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--nodes") {
      config.nodes = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--warmup") {
      config.warmup = IntFlag(arg, next()) * kMicrosPerSecond;
    } else if (arg == "--duration") {
      config.duration = IntFlag(arg, next()) * kMicrosPerSecond;
    } else if (arg == "--tau") {
      config.middleware.tau = DoubleFlag(arg, next());
    } else if (arg == "--cache-kb") {
      config.middleware.cache_bytes =
          static_cast<size_t>(UintFlag(arg, next())) * 1024;
    } else if (arg == "--wan-ms") {
      config.latency.wan_rtt = IntFlag(arg, next()) * kMicrosPerMilli;
    } else if (arg == "--runs") {
      runs = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--seed") {
      config.seed = UintFlag(arg, next());
    } else if (arg == "--groups") {
      config.security_groups = static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--fault-error-pct") {
      config.fault.error_pct = DoubleFlag(arg, next());
    } else if (arg == "--fault-spike") {
      config.fault.spike_multiplier = DoubleFlag(arg, next());
    } else if (arg == "--fault-spike-pct") {
      config.fault.spike_pct = DoubleFlag(arg, next());
    } else if (arg == "--fault-blackout-ms") {
      config.fault.blackout_us = UintFlag(arg, next()) * kMicrosPerMilli;
    } else if (arg == "--fault-blackout-at-ms") {
      config.fault.blackout_start_us = UintFlag(arg, next()) * kMicrosPerMilli;
    } else if (arg == "--fault-blackout-period-ms") {
      config.fault.blackout_period_us =
          UintFlag(arg, next()) * kMicrosPerMilli;
    } else if (arg == "--fault-seed") {
      config.fault.seed = UintFlag(arg, next());
    } else if (arg == "--retries") {
      config.middleware.retry.max_attempts =
          static_cast<int>(IntFlag(arg, next()));
    } else if (arg == "--no-retries") {
      config.middleware.enable_retries = false;
    } else if (arg == "--journal-out") {
      config.journal_out = next();
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--no-loops") {
      config.middleware.enable_loops = false;
    } else if (arg == "--no-loop-constants") {
      config.middleware.enable_loop_constants = false;
    } else if (arg == "--no-combining") {
      config.middleware.enable_combining = false;
    } else if (arg == "--no-subsumption") {
      config.middleware.enable_subsumption = false;
    } else if (arg == "--no-redundancy-check") {
      config.middleware.enable_redundancy_check = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  // Range checks: well-formed but nonsensical values also exit 2.
  auto reject = [](const char* flag, const char* why) {
    std::fprintf(stderr, "invalid value for %s: %s\n", flag, why);
    std::exit(2);
  };
  if (config.clients < 1) reject("--clients", "must be >= 1");
  if (config.nodes < 1) reject("--nodes", "must be >= 1");
  if (config.duration <= 0) reject("--duration", "must be > 0");
  if (config.warmup < 0) reject("--warmup", "must be >= 0");
  if (runs < 1) reject("--runs", "must be >= 1");
  if (config.fault.error_pct < 0 || config.fault.error_pct > 100 ||
      config.fault.spike_pct < 0 || config.fault.spike_pct > 100) {
    reject("--fault-error-pct/--fault-spike-pct", "must be in [0, 100]");
  }
  if (config.fault.spike_multiplier < 1.0) {
    reject("--fault-spike", "multiplier must be >= 1");
  }
  if (config.middleware.retry.max_attempts < 1) {
    reject("--retries", "must be >= 1");
  }

  // One seed drives both the fault schedule and the retry-backoff jitter
  // so a run replays byte-identical.
  config.middleware.retry_seed = config.fault.seed;

  std::function<std::unique_ptr<workloads::Workload>()> make_workload;
  if (!trace_path.empty()) {
    // Validate the trace once up front for a friendly error message.
    auto probe = workloads::TraceReplayWorkload::FromFile(trace_path);
    if (!probe.ok()) {
      std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
      return 2;
    }
    make_workload = [trace_path] {
      auto workload = workloads::TraceReplayWorkload::FromFile(trace_path);
      return std::move(*workload);
    };
  } else if (workload_name == "tpce") {
    make_workload = [] { return std::make_unique<workloads::TpceWorkload>(); };
  } else if (workload_name == "wikipedia") {
    make_workload = [] {
      return std::make_unique<workloads::WikipediaWorkload>();
    };
  } else if (workload_name == "seats") {
    make_workload = [] { return std::make_unique<workloads::SeatsWorkload>(); };
  } else if (workload_name == "auctionmark") {
    make_workload = [] {
      return std::make_unique<workloads::AuctionMarkWorkload>();
    };
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workload_name.c_str());
    return 2;
  }

  std::printf("workload=%s system=%s clients=%d nodes=%d wan=%lldms "
              "warmup=%llds duration=%llds runs=%d\n\n",
              workload_name.c_str(),
              core::SystemModeName(config.middleware.mode), config.clients,
              config.nodes,
              static_cast<long long>(config.latency.wan_rtt / kMicrosPerMilli),
              static_cast<long long>(config.warmup / kMicrosPerSecond),
              static_cast<long long>(config.duration / kMicrosPerSecond),
              runs);

  harness::RepeatedResult result =
      harness::RunRepeated(make_workload, config, runs);
  const harness::ExperimentResult& last = result.last;

  std::printf("avg response     : %.2f ms (±%.2f, %d runs)\n",
              result.response_ms.Mean(),
              result.response_ms.ConfidenceInterval95(), runs);
  std::printf("p50 / p95        : %.2f / %.2f ms\n", last.p50_ms, last.p95_ms);
  std::printf("cache hit rate   : %.1f%%\n", result.hit_rate.Mean() * 100.0);
  std::printf("queries measured : %llu (%llu transactions)\n",
              static_cast<unsigned long long>(last.queries_measured),
              static_cast<unsigned long long>(last.transactions));
  std::printf("db requests      : %.0f\n", result.db_requests.Mean());
  std::printf("combined queries : %llu\n",
              static_cast<unsigned long long>(last.metrics.remote_combined));
  std::printf("prefetched sets  : %llu\n",
              static_cast<unsigned long long>(last.metrics.predictions_cached));
  std::printf("seq prefetches   : %llu\n",
              static_cast<unsigned long long>(
                  last.metrics.sequential_prefetches));
  std::printf("cascaded fires   : %llu\n",
              static_cast<unsigned long long>(last.metrics.cascaded_fires));
  std::printf("redundant skips  : %llu\n",
              static_cast<unsigned long long>(last.metrics.redundant_skips));
  std::printf("session rejects  : %llu\n",
              static_cast<unsigned long long>(last.metrics.cache_rejects));
  std::printf("errors           : %llu%s%s\n",
              static_cast<unsigned long long>(last.errors),
              last.errors > 0 ? " first: " : "",
              last.errors > 0 ? last.first_error.c_str() : "");
  const bool faults_on = net::FaultInjector(config.fault).enabled();
  if (faults_on) {
    std::printf("faults injected  : %llu\n",
                static_cast<unsigned long long>(last.faults_injected));
    std::printf("backend retries  : %llu\n",
                static_cast<unsigned long long>(last.metrics.backend_retries));
  }
  if (!config.journal_out.empty()) {
    std::printf("journal          : %llu events -> %s\n",
                static_cast<unsigned long long>(last.journal_events),
                config.journal_out.c_str());
  }

  if (!last.by_transaction.empty()) {
    std::printf("\nper transaction type (avg query latency):\n");
    for (const auto& [name, ms, n] : last.by_transaction) {
      std::printf("  %-22s %8.2f ms  (%llu queries)\n", name.c_str(), ms,
                  static_cast<unsigned long long>(n));
    }
  }

  if (timeline) {
    std::printf("\nlearning curve (bucket start -> avg ms):\n");
    for (const auto& [sec, ms] : last.timeline) {
      int bar = static_cast<int>(ms / 2);
      std::printf("  %5.0fs %8.2f ms  %.*s\n", sec, ms, bar > 60 ? 60 : bar,
                  "############################################################");
    }
  }
  // Under an injected fault schedule, residual errors are the experiment's
  // point, not a tool failure.
  if (faults_on) return 0;
  return last.errors == 0 ? 0 : 1;
}
