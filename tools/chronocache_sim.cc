// chronocache_sim — command-line driver for the simulated deployment.
//
// Examples:
//   chronocache_sim --workload tpce --mode chrono --clients 20
//   chronocache_sim --workload wikipedia --mode lru --duration 120 --timeline
//   chronocache_sim --workload seats --mode chrono --nodes 3 --clients 60
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/tpce.h"
#include "workloads/trace_replay.h"
#include "workloads/wikipedia.h"

using namespace chrono;

namespace {

void Usage() {
  std::printf(
      "chronocache_sim — ChronoCache deployment simulator\n\n"
      "  --workload NAME   tpce | wikipedia | seats | auctionmark "
      "(default tpce)\n"
      "  --trace FILE      replay a SQL trace file instead (see "
      "src/workloads/trace_replay.h)\n"
      "  --mode NAME       chrono | scalpel-cc | scalpel-e | apollo | lru "
      "(default chrono)\n"
      "  --clients N       concurrent clients (default 10)\n"
      "  --nodes N         middleware nodes (default 1)\n"
      "  --warmup SECS     virtual warm-up before measuring (default 20)\n"
      "  --duration SECS   virtual measurement window (default 60)\n"
      "  --tau X           temporal correlation threshold (default 0.8)\n"
      "  --cache-kb N      edge cache size in KiB (default 65536)\n"
      "  --wan-ms N        WAN round-trip in ms (default 70)\n"
      "  --runs N          seeded repetitions (default 1)\n"
      "  --seed N          base RNG seed (default 1)\n"
      "  --groups N        security groups, clients round-robin (default 1)\n"
      "  --journal-out F   persist the prefetch-efficacy event journal to F\n"
      "                    (virtual timestamps; analyze with chrono_audit;\n"
      "                    with --runs N the file holds the last run)\n"
      "  --timeline        print the per-bucket learning curve\n"
      "  --no-loops / --no-loop-constants / --no-combining /\n"
      "  --no-subsumption / --no-redundancy-check\n"
      "                    ablation switches (chrono mode)\n");
}

core::SystemMode ParseMode(const std::string& name) {
  if (name == "chrono") return core::SystemMode::kChrono;
  if (name == "scalpel-cc") return core::SystemMode::kScalpelCC;
  if (name == "scalpel-e") return core::SystemMode::kScalpelE;
  if (name == "apollo") return core::SystemMode::kApollo;
  if (name == "lru") return core::SystemMode::kLru;
  std::fprintf(stderr, "unknown mode: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "tpce";
  std::string trace_path;
  harness::ExperimentConfig config;
  int runs = 1;
  bool timeline = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--trace") {
      trace_path = next();
      workload_name = "trace:" + trace_path;
    } else if (arg == "--mode") {
      config.middleware.mode = ParseMode(next());
    } else if (arg == "--clients") {
      config.clients = std::atoi(next().c_str());
    } else if (arg == "--nodes") {
      config.nodes = std::atoi(next().c_str());
    } else if (arg == "--warmup") {
      config.warmup = std::atoll(next().c_str()) * kMicrosPerSecond;
    } else if (arg == "--duration") {
      config.duration = std::atoll(next().c_str()) * kMicrosPerSecond;
    } else if (arg == "--tau") {
      config.middleware.tau = std::atof(next().c_str());
    } else if (arg == "--cache-kb") {
      config.middleware.cache_bytes =
          static_cast<size_t>(std::atoll(next().c_str())) * 1024;
    } else if (arg == "--wan-ms") {
      config.latency.wan_rtt = std::atoll(next().c_str()) * kMicrosPerMilli;
    } else if (arg == "--runs") {
      runs = std::atoi(next().c_str());
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--groups") {
      config.security_groups = std::atoi(next().c_str());
    } else if (arg == "--journal-out") {
      config.journal_out = next();
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--no-loops") {
      config.middleware.enable_loops = false;
    } else if (arg == "--no-loop-constants") {
      config.middleware.enable_loop_constants = false;
    } else if (arg == "--no-combining") {
      config.middleware.enable_combining = false;
    } else if (arg == "--no-subsumption") {
      config.middleware.enable_subsumption = false;
    } else if (arg == "--no-redundancy-check") {
      config.middleware.enable_redundancy_check = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  std::function<std::unique_ptr<workloads::Workload>()> make_workload;
  if (!trace_path.empty()) {
    // Validate the trace once up front for a friendly error message.
    auto probe = workloads::TraceReplayWorkload::FromFile(trace_path);
    if (!probe.ok()) {
      std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
      return 2;
    }
    make_workload = [trace_path] {
      auto workload = workloads::TraceReplayWorkload::FromFile(trace_path);
      return std::move(*workload);
    };
  } else if (workload_name == "tpce") {
    make_workload = [] { return std::make_unique<workloads::TpceWorkload>(); };
  } else if (workload_name == "wikipedia") {
    make_workload = [] {
      return std::make_unique<workloads::WikipediaWorkload>();
    };
  } else if (workload_name == "seats") {
    make_workload = [] { return std::make_unique<workloads::SeatsWorkload>(); };
  } else if (workload_name == "auctionmark") {
    make_workload = [] {
      return std::make_unique<workloads::AuctionMarkWorkload>();
    };
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workload_name.c_str());
    return 2;
  }

  std::printf("workload=%s system=%s clients=%d nodes=%d wan=%lldms "
              "warmup=%llds duration=%llds runs=%d\n\n",
              workload_name.c_str(),
              core::SystemModeName(config.middleware.mode), config.clients,
              config.nodes,
              static_cast<long long>(config.latency.wan_rtt / kMicrosPerMilli),
              static_cast<long long>(config.warmup / kMicrosPerSecond),
              static_cast<long long>(config.duration / kMicrosPerSecond),
              runs);

  harness::RepeatedResult result =
      harness::RunRepeated(make_workload, config, runs);
  const harness::ExperimentResult& last = result.last;

  std::printf("avg response     : %.2f ms (±%.2f, %d runs)\n",
              result.response_ms.Mean(),
              result.response_ms.ConfidenceInterval95(), runs);
  std::printf("p50 / p95        : %.2f / %.2f ms\n", last.p50_ms, last.p95_ms);
  std::printf("cache hit rate   : %.1f%%\n", result.hit_rate.Mean() * 100.0);
  std::printf("queries measured : %llu (%llu transactions)\n",
              static_cast<unsigned long long>(last.queries_measured),
              static_cast<unsigned long long>(last.transactions));
  std::printf("db requests      : %.0f\n", result.db_requests.Mean());
  std::printf("combined queries : %llu\n",
              static_cast<unsigned long long>(last.metrics.remote_combined));
  std::printf("prefetched sets  : %llu\n",
              static_cast<unsigned long long>(last.metrics.predictions_cached));
  std::printf("seq prefetches   : %llu\n",
              static_cast<unsigned long long>(
                  last.metrics.sequential_prefetches));
  std::printf("cascaded fires   : %llu\n",
              static_cast<unsigned long long>(last.metrics.cascaded_fires));
  std::printf("redundant skips  : %llu\n",
              static_cast<unsigned long long>(last.metrics.redundant_skips));
  std::printf("session rejects  : %llu\n",
              static_cast<unsigned long long>(last.metrics.cache_rejects));
  std::printf("errors           : %llu%s%s\n",
              static_cast<unsigned long long>(last.errors),
              last.errors > 0 ? " first: " : "",
              last.errors > 0 ? last.first_error.c_str() : "");
  if (!config.journal_out.empty()) {
    std::printf("journal          : %llu events -> %s\n",
                static_cast<unsigned long long>(last.journal_events),
                config.journal_out.c_str());
  }

  if (!last.by_transaction.empty()) {
    std::printf("\nper transaction type (avg query latency):\n");
    for (const auto& [name, ms, n] : last.by_transaction) {
      std::printf("  %-22s %8.2f ms  (%llu queries)\n", name.c_str(), ms,
                  static_cast<unsigned long long>(n));
    }
  }

  if (timeline) {
    std::printf("\nlearning curve (bucket start -> avg ms):\n");
    for (const auto& [sec, ms] : last.timeline) {
      int bar = static_cast<int>(ms / 2);
      std::printf("  %5.0fs %8.2f ms  %.*s\n", sec, ms, bar > 60 ? 60 : bar,
                  "############################################################");
    }
  }
  return last.errors == 0 ? 0 : 1;
}
