// chrono_prof — inspects CPU profiles captured by the in-process sampler
// (DESIGN.md §16): the collapsed-stack text from serve_bench
// --profile-out or GET /profile, and the JSON document from
// GET /profile?format=json.
//
//   chrono_prof report profile.collapsed     # per-role totals + hot leaves
//   chrono_prof --validate profile.json      # strict check, exit 0/1
//
// A collapsed line is "role;thread;frame;...;frame COUNT" — root-first,
// one line per unique stack, directly consumable by flamegraph.pl. The
// report folds those lines into the two questions a first look needs
// answered: which thread roles burn the CPU, and which leaf frames they
// burn it in.
//
// --validate checks the JSON profile document the way CI consumes it:
// well-formed per RFC 8259 and carrying the "samples" and "stacks" keys
// the smoke job asserts on. Exit 0 when valid, 1 when not.
//
// Usage errors (unknown flags, missing files) exit 2.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

using namespace chrono;

namespace {

void Usage() {
  std::printf(
      "chrono_prof — CPU-profile inspector\n\n"
      "  chrono_prof report FILE      collapsed-stack summary: samples per\n"
      "                               thread role, hottest leaf frames\n"
      "  chrono_prof --validate FILE  strict JSON + schema check of a\n"
      "                               /profile?format=json document\n"
      "                               (exit 0 valid, 1 invalid)\n");
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Validate(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  Status valid = ValidateJson(text);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 valid.message().c_str());
    return 1;
  }
  for (const char* key : {"\"samples\"", "\"stacks\"", "\"threads\""}) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "%s: missing %s — not a /profile document\n",
                   path.c_str(), key);
      return 1;
    }
  }
  std::printf("%s: valid profile document (%zu bytes)\n", path.c_str(),
              text.size());
  return 0;
}

int Report(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  uint64_t total = 0;
  uint64_t malformed = 0;
  std::map<std::string, uint64_t> by_role;
  std::map<std::string, uint64_t> by_leaf;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    // "path;to;frame COUNT": the count follows the last space.
    size_t space = line.rfind(' ');
    uint64_t count = 0;
    if (space == std::string::npos || space + 1 >= line.size()) {
      ++malformed;
      continue;
    }
    char* end = nullptr;
    count = std::strtoull(line.c_str() + space + 1, &end, 10);
    if (end == line.c_str() + space + 1 || *end != '\0') {
      ++malformed;
      continue;
    }
    std::string stack = line.substr(0, space);
    size_t first_semi = stack.find(';');
    std::string role =
        first_semi == std::string::npos ? stack : stack.substr(0, first_semi);
    size_t last_semi = stack.rfind(';');
    std::string leaf =
        last_semi == std::string::npos ? stack : stack.substr(last_semi + 1);
    total += count;
    by_role[role] += count;
    by_leaf[leaf] += count;
  }
  if (malformed > 0) {
    std::fprintf(stderr,
                 "warning: %llu malformed lines skipped (not collapsed-"
                 "stack text?)\n",
                 static_cast<unsigned long long>(malformed));
  }
  std::printf("samples: %llu\n", static_cast<unsigned long long>(total));
  std::printf("\nby role:\n");
  std::vector<std::pair<std::string, uint64_t>> roles(by_role.begin(),
                                                      by_role.end());
  std::sort(roles.begin(), roles.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [role, count] : roles) {
    std::printf("  %-10s %8llu  %5.1f%%\n", role.c_str(),
                static_cast<unsigned long long>(count),
                total > 0 ? 100.0 * static_cast<double>(count) /
                                static_cast<double>(total)
                          : 0.0);
  }
  std::printf("\nhottest leaf frames:\n");
  std::vector<std::pair<std::string, uint64_t>> leaves(by_leaf.begin(),
                                                       by_leaf.end());
  std::sort(leaves.begin(), leaves.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  size_t shown = 0;
  for (const auto& [leaf, count] : leaves) {
    if (++shown > 20) break;
    std::printf("  %8llu  %5.1f%%  %s\n",
                static_cast<unsigned long long>(count),
                total > 0 ? 100.0 * static_cast<double>(count) /
                                static_cast<double>(total)
                          : 0.0,
                leaf.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 &&
      (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0)) {
    Usage();
    return 0;
  }
  if (argc != 3) {
    Usage();
    return 2;
  }
  if (std::strcmp(argv[1], "--validate") == 0) return Validate(argv[2]);
  if (std::strcmp(argv[1], "report") == 0) return Report(argv[2]);
  std::fprintf(stderr, "unknown command: %s\n", argv[1]);
  Usage();
  return 2;
}
